//! **DeepT-rs** — a Rust reproduction of *Fast and Precise Certification of
//! Transformers* (Bonaert et al., PLDI 2021).
//!
//! This umbrella crate re-exports the workspace members under one roof:
//!
//! * [`tensor`] — dense `f64` matrix algebra;
//! * [`nn`] — Transformer/ViT/MLP networks, autodiff and training;
//! * [`data`] — synthetic sentiment corpora, synonym sets and images;
//! * [`zonotope`] — the Multi-norm Zonotope abstract domain (the paper's
//!   core contribution);
//! * [`verifier`] — the DeepT verifier plus CROWN-style, interval and
//!   enumeration baselines;
//! * [`lp`] — a dense simplex solver;
//! * [`geocert`] — complete ReLU-MLP verification (GeoCert role);
//! * [`refine`] — the CEGAR escalation ladder: Fast → Precise →
//!   deadline-aware branch-and-bound over noise-symbol splits, with
//!   concrete-attack pruning (`deept certify --refine`, serve variant
//!   `refine`);
//! * [`telemetry`] — verification spans, precision metrics and structured
//!   traces (the [`telemetry::Probe`] trait accepted by every `*_probed`
//!   verifier entry point);
//! * [`metrics`] — the live-telemetry layer: a process-wide registry of
//!   counters, gauges and log-linear histograms, Prometheus text
//!   exposition, and a span-stream self-profiler with collapsed-stack
//!   output (`DEEPT_METRICS=off` disables every hot-path publish);
//! * [`serve`] — the batched certification service: JSON-lines protocol,
//!   bounded job queue, LRU result cache, deadline-aware workers and a
//!   `GET /metrics` scrape listener (`deept serve` / `deept request` /
//!   `deept loadgen`);
//! * [`soundness`] — differential soundness fuzzing: the containment
//!   harness, attack/certificate consistency and the relaxation
//!   micro-checker (`deept fuzz-soundness`).
//!
//! See the `examples/` directory for runnable entry points and
//! `crates/bench` for the binaries that regenerate every table of the
//! paper.
//!
//! # Quickstart
//!
//! ```
//! use deept::verifier::deept::{certify, DeepTConfig};
//! use deept::verifier::network::{t1_region, VerifiableTransformer};
//! use deept::zonotope::PNorm;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let model = deept::nn::TransformerClassifier::new(
//!     deept::nn::TransformerConfig {
//!         vocab_size: 12, max_len: 6, embed_dim: 8, num_heads: 2,
//!         hidden_dim: 16, num_layers: 1, num_classes: 2,
//!         layer_norm: deept::nn::LayerNormKind::NoStd,
//!     },
//!     &mut rng,
//! );
//! let tokens = [1, 2, 3];
//! let label = model.predict(&tokens);
//! let region = t1_region(&model.embed(&tokens), 1, 1e-4, PNorm::L2);
//! let net = VerifiableTransformer::from(&model);
//! assert!(certify(&net, &region, label, &DeepTConfig::fast(2000)).certified);
//! ```

pub use deept_core as zonotope;
pub use deept_data as data;
pub use deept_geocert as geocert;
pub use deept_lp as lp;
pub use deept_metrics as metrics;
pub use deept_nn as nn;
pub use deept_refine as refine;
pub use deept_serve as serve;
pub use deept_soundness as soundness;
pub use deept_telemetry as telemetry;
pub use deept_tensor as tensor;
pub use deept_verifier as verifier;
