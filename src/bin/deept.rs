//! `deept` — command-line certification of Transformer sentiment
//! classifiers.
//!
//! ```text
//! deept train   --out model.json [--layers 2] [--yelp] [--std-ln] [--epochs 6]
//! deept certify --model model.json --sentence "pos0_1 neu3 not0 neg2_0" \
//!               [--position 1] [--norm l2] [--radius 0.05] [--refine] \
//!               [--trace trace.json] [--timeout-ms 5000]
//! deept synonyms --model model.json --sentence "..." [--k 4] [--dist 0.8] \
//!               [--syn-dir artifacts/synonyms]
//! deept export-model [--out artifacts/models/toy.json] [--layers 1] [--epochs 2]
//! deept serve   [--addr 127.0.0.1:7878 | --stdio] [--workers 2] [--queue 16] \
//!               [--cache 256] [--deadline-ms N] [--metrics-addr 127.0.0.1:9090] \
//!               [--fuse-max 8 | --no-fuse] [--shards N] \
//!               [--state-cache-mb 32] [--syn-dir DIR] \
//!               [--model id=ckpt.json]...
//! deept request --addr 127.0.0.1:7878 (--status | --metrics | --shutdown |
//!               --load-model id=path |
//!               --certify --model-id id --tokens "1 2 3" [--eps 1e-4 | --radius-search]
//!               [--start 0.01] [--iters 16] [--position 0] [--norm l2]
//!               [--variant fast|precise|combined|refine|synonyms]
//!               [--syn-k 4] [--syn-dist 0.8]
//!               [--deadline-ms N] [--trace-response])
//! deept loadgen --addr 127.0.0.1:7878 --model-id id [--tokens "1 2 3"] \
//!               [--concurrency 2] [--duration-s 5 | --requests N] [--rate R] \
//!               [--eps 1e-3] [--cached] [--wave K] [--edit-stream] \
//!               [--out BENCH_6.json]
//! deept bench-metrics [--repeats 7] [--max-ratio 1.02] [--out bench_metrics.json]
//! deept fuzz-soundness [--seed N | --seed A..B] [--cases M]
//! deept bench-refine [--out BENCH_8.json] [--deadline-ms 2000] [--queries N]
//! deept --trace trace.json
//! ```
//!
//! `train` produces a JSON bundle (model + vocabulary); `certify` reports
//! the classification, then either checks one radius or binary-searches the
//! maximum certified radius (`--timeout-ms` bounds the search with a
//! cooperative deadline). With `--refine` (requires `--radius`) the query
//! runs the [`deept::refine`] escalation ladder instead: Fast, then
//! Precise, then deadline-aware branch-and-bound refinement, returning
//! certified / falsified / a sound partial bound. `bench-refine` measures
//! the certified-rate gain of that ladder over the flat passes on a set of
//! frontier queries and writes `BENCH_8.json`; `synonyms` certifies threat
//! model T2 against
//! embedding-space nearest-neighbour substitutions and cross-checks with
//! bounded enumeration.
//!
//! `export-model` trains a toy classifier and writes it as a fingerprinted
//! `deept-checkpoint-v1` file; `serve` runs the long-lived certification
//! server over TCP (or stdio for CI) against such checkpoints; `request`
//! is the matching one-shot client, printing the raw JSON response.
//!
//! `--trace <path>` records the verification under a
//! [`deept::telemetry::TraceCollector`]: per-layer spans with wall-clock
//! timing, noise-symbol counts, interval-width stats and the radius-search
//! query sequence, written as structured JSON. The bare `deept --trace`
//! form runs a self-contained demo on a small random transformer, so the
//! trace format can be inspected without training a model first.

use std::process::ExitCode;

use deept::data::sentiment;
use deept::data::{SynonymArtifact, SynonymSets, Vocab};
use deept::nn::train::{accuracy, train, TrainConfig};
use deept::nn::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept::serve::client::request_once;
use deept::serve::protocol::{CertifyRequest, RadiusSearchSpec, Request, Response, SynonymSpec};
use deept::serve::server::{ServeConfig, Server};
use deept::telemetry::{NoopProbe, Probe, TraceCollector, VerificationTrace};
use deept::verifier::deadline::{Deadline, DeadlineExceeded};
use deept::verifier::deept::{certify_deadline_probed, DeepTConfig};
use deept::verifier::network::{t1_region, VerifiableTransformer};
use deept::verifier::radius::{max_certified_radius_deadline, RadiusOutcome};
use deept::verifier::synonym;
use deept::zonotope::PNorm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Everything needed to certify sentences later: the weights and the
/// vocabulary that token names resolve against.
#[derive(Serialize, Deserialize)]
struct Bundle {
    model: TransformerClassifier,
    vocab: Vocab,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("certify") => cmd_certify(&args[1..]),
        Some("synonyms") => cmd_synonyms(&args[1..]),
        Some("export-model") => cmd_export_model(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("request") => cmd_request(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("bench-metrics") => cmd_bench_metrics(&args[1..]),
        Some("fuzz-soundness") => cmd_fuzz_soundness(&args[1..]),
        Some("bench-eps") => cmd_bench_eps(&args[1..]),
        Some("bench-kernels") => cmd_bench_kernels(&args[1..]),
        Some("bench-refine") => cmd_bench_refine(&args[1..]),
        Some("--trace") => cmd_demo_trace(&args),
        _ => {
            eprintln!(
                "usage: deept <train|certify|synonyms|export-model|serve|request|loadgen\
                 |bench-metrics|fuzz-soundness|bench-eps|bench-kernels|bench-refine> \
                 [options] | \
                 deept --trace <path>  (see --help in source)"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One-line description of the compute backend in effect: kernel-mode
/// rung, the SIMD ISA runtime dispatch selected, and the generator
/// precision. Printed in `certify` output and stamped into trace metadata
/// so a saved trace records which code path produced it.
fn backend_labels() -> (&'static str, &'static str, &'static str) {
    let kernel = deept::tensor::parallel::kernel_mode().label();
    let isa = match deept::tensor::parallel::kernel_mode() {
        deept::tensor::parallel::KernelMode::Simd => deept::tensor::simd::active_isa().label(),
        _ => "scalar",
    };
    let prec = if deept::zonotope::eps::prec_f32() {
        "f32"
    } else {
        "f64"
    };
    (kernel, isa, prec)
}

/// Stamps the backend triple into a trace's metadata.
fn set_backend_meta(trace: &mut VerificationTrace) {
    let (kernel, isa, prec) = backend_labels();
    trace.set_meta("kernel", kernel);
    trace.set_meta("isa", isa);
    trace.set_meta("prec", prec);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// All values of a repeatable flag, e.g. `--model a=x.json --model b=y.json`.
fn flag_all(args: &[String], name: &str) -> Vec<String> {
    args.windows(2)
        .filter(|w| w[0] == name)
        .map(|w| w[1].clone())
        .collect()
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("--out <path> is required")?;
    let layers: usize = flag(args, "--layers")
        .map(|s| s.parse().map_err(|_| "--layers must be a number"))
        .transpose()?
        .unwrap_or(2);
    let epochs: usize = flag(args, "--epochs")
        .map(|s| s.parse().map_err(|_| "--epochs must be a number"))
        .transpose()?
        .unwrap_or(6);
    let mut spec = if has(args, "--yelp") {
        sentiment::yelp_spec()
    } else {
        sentiment::sst_spec()
    };
    spec.train = spec.train.min(900);
    spec.test = spec.test.min(200);
    spec.max_len = spec.max_len.min(10);

    let mut rng = ChaCha8Rng::seed_from_u64(
        flag(args, "--seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1),
    );
    let ds = sentiment::generate(spec, &mut rng);
    let layer_norm = if has(args, "--std-ln") {
        LayerNormKind::Std { epsilon: 1e-5 }
    } else {
        LayerNormKind::NoStd
    };
    let mut model = TransformerClassifier::new(
        TransformerConfig {
            vocab_size: ds.vocab.len(),
            max_len: spec.max_len,
            embed_dim: 16,
            num_heads: 4,
            hidden_dim: 32,
            num_layers: layers,
            num_classes: 2,
            layer_norm,
        },
        &mut rng,
    );
    eprintln!("training {layers}-layer transformer ({epochs} epochs)…");
    train(
        &mut model,
        &ds.train,
        TrainConfig {
            epochs,
            batch_size: 16,
            lr: 2e-3,
        },
        &mut rng,
    );
    println!("test accuracy: {:.3}", accuracy(&model, &ds.test));
    let bundle = Bundle {
        model,
        vocab: ds.vocab,
    };
    deept::nn::io::save_json(&bundle, &out).map_err(|e| e.to_string())?;
    println!("saved bundle to {out}");
    // Print a few example sentences so the user has valid token names.
    print!("example sentence: ");
    let (toks, _) = &ds.test[0];
    let names: Vec<&str> = toks
        .iter()
        .map(|&t| bundle_token_name(&bundle, t))
        .collect();
    println!("{}", names.join(" "));
    Ok(())
}

fn bundle_token_name(b: &Bundle, id: usize) -> &str {
    b.vocab.token(id).name.as_str()
}

fn load_bundle(args: &[String]) -> Result<Bundle, String> {
    let path = flag(args, "--model").ok_or("--model <path> is required")?;
    deept::nn::io::load_json(&path).map_err(|e| e.to_string())
}

fn parse_sentence(bundle: &Bundle, args: &[String]) -> Result<Vec<usize>, String> {
    let raw = flag(args, "--sentence").ok_or("--sentence \"tok tok …\" is required")?;
    raw.split_whitespace()
        .map(|w| {
            (0..bundle.vocab.len())
                .find(|&i| bundle.vocab.token(i).name == w)
                .ok_or_else(|| format!("unknown token {w:?}"))
        })
        .collect()
}

fn cmd_certify(args: &[String]) -> Result<(), String> {
    let bundle = load_bundle(args)?;
    let tokens = parse_sentence(&bundle, args)?;
    let position: usize = flag(args, "--position")
        .map(|s| s.parse().map_err(|_| "--position must be a number"))
        .transpose()?
        .unwrap_or(0);
    if position >= tokens.len() {
        return Err("--position out of range".into());
    }
    let p = PNorm::parse(&flag(args, "--norm").unwrap_or_else(|| "l2".into()))
        .ok_or("--norm must be 1, 2 or inf")?;
    let timeout_ms: Option<u64> = flag(args, "--timeout-ms")
        .map(|s| s.parse().map_err(|_| "--timeout-ms must be a number"))
        .transpose()?;
    // The deadline is fixed before any verification starts; with no
    // --timeout-ms it never expires and the query sequence is unchanged.
    let deadline = Deadline::after_ms(timeout_ms);
    let label = bundle.model.predict(&tokens);
    println!(
        "prediction: {} ({})",
        label,
        if label == 1 { "positive" } else { "negative" }
    );
    let (kernel, isa, prec) = backend_labels();
    println!("backend: kernel={kernel} isa={isa} prec={prec}");
    let net = VerifiableTransformer::from(&bundle.model);
    let emb = bundle.model.embed(&tokens);
    let cfg = DeepTConfig::fast(2000);
    let trace_path = flag(args, "--trace");
    let collector = trace_path.as_ref().map(|_| TraceCollector::new());
    let probe: &dyn Probe = match &collector {
        Some(c) => c,
        None => &NoopProbe,
    };
    let mut timed_out = false;
    let refine = has(args, "--refine");
    if refine {
        let radius: f64 = flag(args, "--radius")
            .ok_or("--refine requires --radius (the ladder answers eps queries only)")?
            .parse()
            .map_err(|_| "--radius must be a number")?;
        let report = deept::refine::refine_certify_probed(
            &bundle.model,
            &tokens,
            position,
            radius,
            p,
            label,
            &deept::refine::RefineConfig::default(),
            deadline,
            probe,
        );
        println!(
            "radius {radius} ({p}) at position {position}: {} at the {} level \
             ({} nodes, {} branches, {} pruned, {} escalations)",
            report.outcome.verdict(),
            report.level.as_str(),
            report.nodes_explored,
            report.branches,
            report.pruned,
            report.escalations,
        );
        match &report.outcome {
            deept::refine::RefineOutcome::Certified { margin } => {
                println!("  certified margin lower bound: {margin:.6}");
            }
            deept::refine::RefineOutcome::Falsified { .. } => {
                println!("  concrete adversarial embedding found inside the ball");
            }
            deept::refine::RefineOutcome::Unknown { lower_bound } => {
                println!("  sound partial margin lower bound: {lower_bound:.6}");
            }
        }
        timed_out = report.timed_out;
    } else if let Some(radius) = flag(args, "--radius") {
        let radius: f64 = radius.parse().map_err(|_| "--radius must be a number")?;
        let region = t1_region(&emb, position, radius, p);
        match certify_deadline_probed(&net, &region, label, &cfg, deadline, probe) {
            Ok(res) => println!(
                "radius {radius} ({p}) at position {position}: certified = {} (margin {:.5})",
                res.certified,
                res.margins[1 - label]
            ),
            Err(DeadlineExceeded) => {
                println!("radius {radius} ({p}) at position {position}: timed out");
                timed_out = true;
            }
        }
    } else {
        let check = |radius: f64| -> Result<bool, DeadlineExceeded> {
            let region = t1_region(&emb, position, radius, p);
            Ok(certify_deadline_probed(&net, &region, label, &cfg, deadline, probe)?.certified)
        };
        match max_certified_radius_deadline(check, 0.01, 16, deadline, probe) {
            RadiusOutcome::Completed(r) => {
                println!("maximum certified {p} radius at position {position}: {r:.6}");
            }
            RadiusOutcome::TimedOut {
                lower_bound,
                queries,
            } => {
                println!(
                    "timed out after {queries} queries; largest certified {p} radius \
                     so far at position {position}: {lower_bound:.6}"
                );
                timed_out = true;
            }
        }
    }
    if let (Some(path), Some(collector)) = (trace_path, collector) {
        let mut trace = collector.finish();
        trace.set_meta(
            "verifier",
            if refine { "DeepT-Refine" } else { "DeepT-Fast" },
        );
        trace.set_meta("norm", &p.to_string());
        trace.set_meta("position", &position.to_string());
        trace.set_meta("tokens", &tokens.len().to_string());
        set_backend_meta(&mut trace);
        write_trace(&path, &trace)?;
    }
    if timed_out {
        return Err(format!(
            "verification deadline of {} ms exceeded",
            timeout_ms.unwrap_or(0)
        ));
    }
    Ok(())
}

/// `deept --trace <path>` with no subcommand: certify a small random
/// transformer end to end and dump the resulting trace, so the telemetry
/// format can be exercised without a trained model.
fn cmd_demo_trace(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--trace").ok_or("--trace <path> is required")?;
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 12,
            max_len: 6,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 16,
            num_layers: 2,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    );
    let tokens = [1, 2, 3, 4];
    let label = model.predict(&tokens);
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(2000);
    let collector = TraceCollector::new();
    let outcome = max_certified_radius_deadline(
        |radius| {
            Ok(certify_deadline_probed(
                &net,
                &t1_region(&emb, 0, radius, PNorm::L2),
                label,
                &cfg,
                Deadline::none(),
                &collector,
            )?
            .certified)
        },
        0.01,
        12,
        Deadline::none(),
        &collector,
    );
    let r = match outcome {
        RadiusOutcome::Completed(r) => r,
        RadiusOutcome::TimedOut { .. } => unreachable!("demo runs with no deadline"),
    };
    let mut trace = collector.finish();
    trace.set_meta("mode", "demo");
    trace.set_meta("verifier", "DeepT-Fast");
    trace.set_meta("norm", "l2");
    trace.set_meta("tokens", &tokens.len().to_string());
    set_backend_meta(&mut trace);
    println!("demo: 2-layer random transformer, maximum certified l2 radius {r:.6}");
    write_trace(&path, &trace)
}

/// Saves a trace as JSON and prints its hotspot summary.
fn write_trace(path: &str, trace: &VerificationTrace) -> Result<(), String> {
    trace
        .save_json(std::path::Path::new(path))
        .map_err(|e| format!("could not write {path}: {e}"))?;
    println!("{}", trace.render_summary(5));
    println!("trace written to {path}");
    Ok(())
}

fn cmd_synonyms(args: &[String]) -> Result<(), String> {
    let bundle = load_bundle(args)?;
    let tokens = parse_sentence(&bundle, args)?;
    let k: usize = flag(args, "--k")
        .map(|s| s.parse().map_err(|_| "--k must be a number"))
        .transpose()?
        .unwrap_or(4);
    let dist: f64 = flag(args, "--dist")
        .map(|s| s.parse().map_err(|_| "--dist must be a number"))
        .transpose()?
        .unwrap_or(0.8);
    // The O(V²) embedding scan runs once per (model fingerprint, k, dist)
    // and is persisted as an artifact; later invocations — and the serve
    // synonym catalog — load it instead of rescanning.
    let syn_dir = flag(args, "--syn-dir").unwrap_or_else(|| "artifacts/synonyms".into());
    let dir = std::path::Path::new(&syn_dir);
    let fingerprint =
        deept::nn::checkpoint::fingerprint(&bundle.model).map_err(|e| e.to_string())?;
    let synonyms = match SynonymArtifact::load(dir, &fingerprint, k, dist) {
        Some(artifact) => {
            eprintln!(
                "synonym sets loaded from {}",
                SynonymArtifact::path_in(dir, &fingerprint, k, dist).display()
            );
            artifact.sets
        }
        None => {
            let sets = SynonymSets::from_embeddings(&bundle.model.token_embed, k, dist);
            let artifact = SynonymArtifact {
                fingerprint: fingerprint.clone(),
                k,
                dist,
                sets,
            };
            match artifact.save(dir) {
                Ok(path) => eprintln!("synonym sets persisted to {}", path.display()),
                Err(e) => eprintln!("warning: could not persist synonym sets: {e}"),
            }
            artifact.sets
        }
    };
    let label = bundle.model.predict(&tokens);
    println!(
        "prediction: {label}, {} synonym combinations",
        synonyms.combinations(&tokens)
    );
    for &t in &tokens {
        let names: Vec<&str> = synonyms
            .of(t)
            .iter()
            .map(|&s| bundle_token_name(&bundle, s))
            .collect();
        println!(
            "  {:<10} → {}",
            bundle_token_name(&bundle, t),
            if names.is_empty() {
                "∅".into()
            } else {
                names.join(", ")
            }
        );
    }
    let cfg = DeepTConfig::fast(2000);
    let res = synonym::certify_deept(&bundle.model, &tokens, &synonyms, label, &cfg);
    println!("T2 certified: {}", res.certified);
    let enu = synonym::enumerate(&bundle.model, &tokens, &synonyms, label, 50_000);
    println!(
        "enumeration cross-check: robust = {} ({} combinations checked{})",
        enu.robust,
        enu.checked,
        if enu.exhausted {
            ", exhausted"
        } else {
            ", budget hit"
        }
    );
    if res.certified && enu.exhausted {
        assert!(enu.robust, "certificate contradicted by enumeration");
    }
    Ok(())
}

/// Trains a small sentiment classifier and writes it as a fingerprinted
/// `deept-checkpoint-v1` file, then reloads it to prove the round trip.
fn cmd_export_model(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").unwrap_or_else(|| "artifacts/models/toy.json".into());
    let layers: usize = flag(args, "--layers")
        .map(|s| s.parse().map_err(|_| "--layers must be a number"))
        .transpose()?
        .unwrap_or(1);
    let epochs: usize = flag(args, "--epochs")
        .map(|s| s.parse().map_err(|_| "--epochs must be a number"))
        .transpose()?
        .unwrap_or(2);
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse().map_err(|_| "--seed must be a number"))
        .transpose()?
        .unwrap_or(1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut spec = sentiment::sst_spec();
    spec.train = spec.train.min(300);
    spec.test = spec.test.min(100);
    spec.max_len = spec.max_len.min(8);
    let ds = sentiment::generate(spec, &mut rng);
    let mut model = TransformerClassifier::new(
        TransformerConfig {
            vocab_size: ds.vocab.len(),
            max_len: spec.max_len,
            embed_dim: 16,
            num_heads: 4,
            hidden_dim: 32,
            num_layers: layers,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    );
    eprintln!("training {layers}-layer transformer ({epochs} epochs)…");
    train(
        &mut model,
        &ds.train,
        TrainConfig {
            epochs,
            batch_size: 16,
            lr: 2e-3,
        },
        &mut rng,
    );
    println!("test accuracy: {:.3}", accuracy(&model, &ds.test));
    let fingerprint = deept::nn::checkpoint::save(&model, &out).map_err(|e| e.to_string())?;
    // Reload to prove the round trip: the fingerprint check inside `load`
    // fails unless serialize → deserialize → serialize is byte-identical.
    let reloaded =
        deept::nn::checkpoint::load::<TransformerClassifier>(&out).map_err(|e| e.to_string())?;
    assert_eq!(reloaded.fingerprint, fingerprint);
    assert_eq!(
        reloaded.model, model,
        "checkpoint round trip changed weights"
    );
    println!("checkpoint written to {out} (fingerprint {fingerprint})");
    Ok(())
}

/// Parses the worker tuning flags shared by single-server and shard mode.
fn serve_config(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::default();
    if let Some(v) = flag(args, "--workers") {
        cfg.workers = v.parse().map_err(|_| "--workers must be a number")?;
    }
    if let Some(v) = flag(args, "--queue") {
        cfg.queue_capacity = v.parse().map_err(|_| "--queue must be a number")?;
    }
    if let Some(v) = flag(args, "--cache") {
        cfg.cache_capacity = v.parse().map_err(|_| "--cache must be a number")?;
    }
    if let Some(v) = flag(args, "--budget") {
        cfg.reduction_budget = v.parse().map_err(|_| "--budget must be a number")?;
    }
    if let Some(v) = flag(args, "--deadline-ms") {
        cfg.default_deadline_ms = Some(v.parse().map_err(|_| "--deadline-ms must be a number")?);
    }
    if let Some(v) = flag(args, "--fuse-max") {
        cfg.fuse_max = v.parse().map_err(|_| "--fuse-max must be a number")?;
    }
    if has(args, "--no-fuse") {
        cfg.fuse_max = 1;
    }
    if let Some(v) = flag(args, "--state-cache-mb") {
        let mb: usize = v.parse().map_err(|_| "--state-cache-mb must be a number")?;
        cfg.state_cache_bytes = mb << 20;
    }
    if let Some(v) = flag(args, "--syn-dir") {
        cfg.synonym_dir = Some(std::path::PathBuf::from(v));
    }
    Ok(cfg)
}

fn parse_preloads(args: &[String]) -> Result<Vec<(String, String)>, String> {
    flag_all(args, "--model")
        .into_iter()
        .map(|spec| {
            spec.split_once('=')
                .map(|(id, path)| (id.to_string(), path.to_string()))
                .ok_or_else(|| {
                    "--model takes id=path, e.g. --model toy=artifacts/models/toy.json".to_string()
                })
        })
        .collect()
}

/// Runs the certification server over TCP or stdio; with `--shards N`,
/// forks `N` single-shard worker processes and fronts them with the
/// fingerprint-hash router.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let shards: usize = flag(args, "--shards")
        .map(|v| v.parse().map_err(|_| "--shards must be a number"))
        .transpose()?
        .unwrap_or(0);
    if shards > 1 {
        return cmd_serve_sharded(args, shards);
    }
    let cfg = serve_config(args)?;
    let preloads = parse_preloads(args)?;
    let server = Server::new(cfg);
    for (id, path) in preloads {
        let fingerprint = server
            .registry()
            .load_from_path(&id, &path)
            .map_err(|e| format!("could not preload {id} from {path}: {e}"))?;
        eprintln!("preloaded model {id} from {path} (fingerprint {fingerprint})");
    }
    if let Some(metrics_addr) = flag(args, "--metrics-addr") {
        let bound = server
            .spawn_metrics_listener(&metrics_addr)
            .map_err(|e| format!("could not bind metrics listener on {metrics_addr}: {e}"))?;
        eprintln!("metrics on http://{bound}/metrics (self-profile on /profile)");
    }
    if has(args, "--stdio") {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        server
            .serve_stdio(stdin.lock(), stdout.lock())
            .map_err(|e| e.to_string())?;
    } else {
        let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
        let listener = std::net::TcpListener::bind(&addr)
            .map_err(|e| format!("could not bind {addr}: {e}"))?;
        let bound = listener.local_addr().map_err(|e| e.to_string())?;
        if has(args, "--announce") {
            // Shard workers bind an ephemeral port and hand it to the
            // parent router over stdout; one line, then silence.
            println!("DEEPT_SHARD_ADDR {bound}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        eprintln!("serving on {bound} (send {{\"type\":\"shutdown\"}} to stop)");
        server.serve_listener(listener).map_err(|e| e.to_string())?;
    }
    eprintln!("{}", server.stats().render_summary());
    Ok(())
}

/// Forks `shards` single-shard `deept serve --announce` worker processes
/// on ephemeral ports and serves the shard router in front of them.
/// Models route to shards by checkpoint-fingerprint hash; `status`,
/// `metrics` and `shutdown` aggregate or broadcast across the fleet.
fn cmd_serve_sharded(args: &[String], shards: usize) -> Result<(), String> {
    use deept::serve::router::{Router, RouterConfig};
    use std::io::BufRead as _;
    use std::process::{Child, Command, Stdio};

    if has(args, "--stdio") {
        return Err("--stdio and --shards are mutually exclusive".into());
    }
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    // Tuning flags every shard inherits verbatim.
    let passthrough = [
        "--workers",
        "--queue",
        "--cache",
        "--budget",
        "--deadline-ms",
        "--fuse-max",
        "--state-cache-mb",
        "--syn-dir",
    ];
    let mut shard_args: Vec<String> = vec![
        "serve".into(),
        "--announce".into(),
        "--addr".into(),
        "127.0.0.1:0".into(),
    ];
    for name in passthrough {
        if let Some(v) = flag(args, name) {
            shard_args.push(name.into());
            shard_args.push(v);
        }
    }
    if has(args, "--no-fuse") {
        shard_args.push("--no-fuse".into());
    }
    let mut children: Vec<Child> = Vec::with_capacity(shards);
    let mut addrs: Vec<String> = Vec::with_capacity(shards);
    let spawn_result = (|| -> Result<(), String> {
        for i in 0..shards {
            let mut child = Command::new(&exe)
                .args(&shard_args)
                .stdin(Stdio::null())
                .stdout(Stdio::piped())
                .spawn()
                .map_err(|e| format!("could not fork shard {i}: {e}"))?;
            let stdout = child
                .stdout
                .take()
                .ok_or_else(|| format!("shard {i} stdout not captured"))?;
            children.push(child);
            let mut line = String::new();
            std::io::BufReader::new(stdout)
                .read_line(&mut line)
                .map_err(|e| format!("shard {i} died before announcing its address: {e}"))?;
            let addr = line
                .trim()
                .strip_prefix("DEEPT_SHARD_ADDR ")
                .ok_or_else(|| format!("shard {i} announced {line:?}, expected DEEPT_SHARD_ADDR"))?
                .to_string();
            eprintln!("shard {i} on {addr}");
            addrs.push(addr);
        }
        Ok(())
    })();
    if let Err(e) = spawn_result {
        // Don't leave half a fleet running behind a failed startup.
        for mut child in children {
            let _ = child.kill();
            let _ = child.wait();
        }
        return Err(e);
    }
    let router = Router::new(RouterConfig {
        shards: addrs,
        ..RouterConfig::default()
    });
    for (id, path) in parse_preloads(args)? {
        match router.handle(deept::serve::protocol::Request::LoadModel {
            model_id: id.clone(),
            path: path.clone(),
        }) {
            Response::ModelLoaded { fingerprint, .. } => {
                let shard = router.assignment(&id).unwrap_or(0);
                eprintln!(
                    "preloaded model {id} from {path} onto shard {shard} \
                     (fingerprint {fingerprint})"
                );
            }
            other => return Err(format!("could not preload {id} from {path}: {other:?}")),
        }
    }
    if let Some(metrics_addr) = flag(args, "--metrics-addr") {
        let bound = router
            .spawn_metrics_listener(&metrics_addr)
            .map_err(|e| format!("could not bind metrics listener on {metrics_addr}: {e}"))?;
        eprintln!("aggregated metrics on http://{bound}/metrics");
    }
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    eprintln!("routing {shards} shards on {addr} (send {{\"type\":\"shutdown\"}} to stop)");
    let served = router.serve_tcp(&addr).map_err(|e| e.to_string());
    // The shutdown broadcast told every shard to drain; reap the worker
    // processes so none are left behind.
    for (i, mut child) in children.into_iter().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => eprintln!("shard {i} exited with {status}"),
            Err(e) => eprintln!("could not reap shard {i}: {e}"),
        }
    }
    served
}

/// One-shot client: sends a single request and prints the JSON response.
fn cmd_request(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr").ok_or("--addr <host:port> is required")?;
    let request = if has(args, "--status") {
        Request::Status
    } else if has(args, "--metrics") {
        Request::Metrics
    } else if has(args, "--shutdown") {
        Request::Shutdown
    } else if let Some(spec) = flag(args, "--load-model") {
        let (id, path) = spec
            .split_once('=')
            .ok_or("--load-model takes id=path, e.g. --load-model toy=ckpt.json")?;
        Request::LoadModel {
            model_id: id.to_string(),
            path: path.to_string(),
        }
    } else if has(args, "--certify") {
        let tokens: Vec<usize> = flag(args, "--tokens")
            .ok_or("--tokens \"1 2 3\" is required with --certify")?
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| format!("bad token id {t:?}")))
            .collect::<Result<_, _>>()?;
        let eps: Option<f64> = flag(args, "--eps")
            .map(|s| s.parse().map_err(|_| "--eps must be a number"))
            .transpose()?;
        let radius_search = if has(args, "--radius-search") {
            let mut spec = RadiusSearchSpec::default();
            if let Some(v) = flag(args, "--start") {
                spec.start = v.parse().map_err(|_| "--start must be a number")?;
            }
            if let Some(v) = flag(args, "--iters") {
                spec.iters = v.parse().map_err(|_| "--iters must be a number")?;
            }
            Some(spec)
        } else {
            None
        };
        let synonyms = match (flag(args, "--syn-k"), flag(args, "--syn-dist")) {
            (None, None) => None,
            (k, dist) => {
                let mut spec = SynonymSpec::default();
                if let Some(v) = k {
                    spec.k = v.parse().map_err(|_| "--syn-k must be a number")?;
                }
                if let Some(v) = dist {
                    spec.dist = v.parse().map_err(|_| "--syn-dist must be a number")?;
                }
                Some(spec)
            }
        };
        Request::Certify(CertifyRequest {
            model_id: flag(args, "--model-id").ok_or("--model-id is required with --certify")?,
            tokens,
            position: flag(args, "--position")
                .map(|s| s.parse().map_err(|_| "--position must be a number"))
                .transpose()?
                .unwrap_or(0),
            norm: flag(args, "--norm").unwrap_or_else(|| "l2".into()),
            variant: flag(args, "--variant").unwrap_or_else(|| "fast".into()),
            eps,
            radius_search,
            synonyms,
            deadline_ms: flag(args, "--deadline-ms")
                .map(|s| s.parse().map_err(|_| "--deadline-ms must be a number"))
                .transpose()?,
            trace: has(args, "--trace-response"),
        })
    } else {
        return Err(
            "specify one of --status, --metrics, --shutdown, --load-model id=path or --certify"
                .into(),
        );
    };
    let response = request_once(&addr, &request).map_err(|e| e.to_string())?;
    println!(
        "{}",
        serde_json::to_string(&response).map_err(|e| e.to_string())?
    );
    if let Response::Error { code, message, .. } = &response {
        return Err(format!("server returned {code:?}: {message}"));
    }
    Ok(())
}

/// `deept loadgen` — drives a live server with certification load and
/// writes a latency/throughput report (see [`deept::serve::loadgen`]).
fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    use deept::serve::loadgen::{self, LoadgenConfig};
    use std::time::Duration;

    let mut cfg = LoadgenConfig {
        addr: flag(args, "--addr").ok_or("--addr <host:port> is required")?,
        model_id: flag(args, "--model-id").ok_or("--model-id is required")?,
        ..LoadgenConfig::default()
    };
    if let Some(v) = flag(args, "--tokens") {
        cfg.tokens = v
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| format!("bad token id {t:?}")))
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = flag(args, "--position") {
        cfg.position = v.parse().map_err(|_| "--position must be a number")?;
    }
    if let Some(v) = flag(args, "--eps") {
        cfg.eps = v.parse().map_err(|_| "--eps must be a number")?;
    }
    if let Some(v) = flag(args, "--norm") {
        cfg.norm = v;
    }
    if let Some(v) = flag(args, "--variant") {
        cfg.variant = v;
    }
    if let Some(v) = flag(args, "--concurrency") {
        cfg.concurrency = v.parse().map_err(|_| "--concurrency must be a number")?;
        if cfg.concurrency == 0 {
            return Err("--concurrency must be at least 1".into());
        }
    }
    if let Some(v) = flag(args, "--duration-s") {
        let secs: f64 = v.parse().map_err(|_| "--duration-s must be a number")?;
        cfg.duration = Some(Duration::from_secs_f64(secs));
    }
    if let Some(v) = flag(args, "--requests") {
        cfg.requests = Some(v.parse().map_err(|_| "--requests must be a number")?);
        if flag(args, "--duration-s").is_none() {
            cfg.duration = None; // request-bounded runs end when the count drains
        }
    }
    if let Some(v) = flag(args, "--rate") {
        cfg.rate = Some(v.parse().map_err(|_| "--rate must be a number")?);
    }
    if has(args, "--cached") {
        cfg.unique_eps = false;
    }
    if let Some(v) = flag(args, "--wave") {
        cfg.wave = v.parse().map_err(|_| "--wave must be a number")?;
    }
    if has(args, "--edit-stream") {
        cfg.edit_stream = true;
    }
    let report = loadgen::run(&cfg).map_err(|e| format!("loadgen failed: {e}"))?;
    let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
    if let Some(out) = flag(args, "--out") {
        std::fs::write(&out, format!("{json}\n"))
            .map_err(|e| format!("could not write {out}: {e}"))?;
        eprintln!("report written to {out}");
    }
    println!("{json}");
    if let Some(lat) = &report.latency {
        eprintln!(
            "loadgen: {} mode, {} sent, {} ok ({:.1} certified q/s), \
             p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
            report.mode,
            report.sent,
            report.ok,
            report.certified_queries_per_sec,
            lat.p50_s * 1e3,
            lat.p95_s * 1e3,
            lat.p99_s * 1e3,
        );
    }
    if report.ok == 0 {
        return Err(format!(
            "no successful certifications ({} overloaded, {} timeouts, {} errors)",
            report.overloaded, report.timeouts, report.errors
        ));
    }
    Ok(())
}

/// `deept bench-metrics` — measures the overhead of the metrics gate on the
/// core propagation path and proves the bitwise-identity guarantee: logit
/// bounds with metrics enabled must equal bounds with `DEEPT_METRICS=off`
/// exactly, and the median slowdown must stay under `--max-ratio`.
fn cmd_bench_metrics(args: &[String]) -> Result<(), String> {
    use std::time::Instant;

    let repeats: usize = flag(args, "--repeats")
        .map(|s| s.parse().map_err(|_| "--repeats must be a number"))
        .transpose()?
        .unwrap_or(7);
    let max_ratio: f64 = flag(args, "--max-ratio")
        .map(|s| s.parse().map_err(|_| "--max-ratio must be a number"))
        .transpose()?
        .unwrap_or(1.02);
    let out_path = flag(args, "--out");

    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 12,
            max_len: 6,
            embed_dim: 16,
            num_heads: 4,
            hidden_dim: 32,
            num_layers: 2,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    );
    let tokens = [1, 2, 3, 4, 5, 6];
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(2000);
    let region = t1_region(&emb, 0, 0.01, PNorm::L2);

    let run_once = || {
        let t0 = Instant::now();
        let logits = deept::verifier::deept::propagate(&net, &region, &cfg);
        (t0.elapsed().as_secs_f64(), logits.bounds())
    };
    // Warm-up (thread pool, scratch arena) before any timing.
    let _ = run_once();

    fn median(xs: &mut [f64]) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        xs[xs.len() / 2]
    }

    // Interleave the two gate states so drift (thermal, scheduler) hits
    // both distributions equally.
    let mut on_times = Vec::with_capacity(repeats);
    let mut off_times = Vec::with_capacity(repeats);
    let mut on_bounds = None;
    let mut off_bounds = None;
    for _ in 0..repeats {
        deept::metrics::set_enabled(Some(true));
        let (t, b) = run_once();
        on_times.push(t);
        on_bounds = Some(b);
        deept::metrics::set_enabled(Some(false));
        let (t, b) = run_once();
        off_times.push(t);
        off_bounds = Some(b);
    }
    deept::metrics::set_enabled(None);

    if on_bounds != off_bounds {
        return Err(
            "metrics gate changed certification bounds: results must be bitwise identical".into(),
        );
    }
    let on_ms = median(&mut on_times) * 1e3;
    let off_ms = median(&mut off_times) * 1e3;
    let ratio = on_ms / off_ms;
    let json = format!(
        "{{\"median_ms_metrics_on\": {on_ms:.4}, \"median_ms_metrics_off\": {off_ms:.4}, \
         \"overhead_ratio\": {ratio:.4}, \"max_ratio\": {max_ratio}, \
         \"bounds_bitwise_identical\": true}}\n"
    );
    if let Some(out) = &out_path {
        std::fs::write(out, &json).map_err(|e| format!("could not write {out}: {e}"))?;
    }
    println!("{json}");
    eprintln!(
        "bench-metrics: on {on_ms:.3} ms, off {off_ms:.3} ms, ratio {ratio:.4} \
         (gate {max_ratio})"
    );
    if ratio > max_ratio {
        return Err(format!(
            "metrics overhead ratio {ratio:.4} exceeds the {max_ratio} gate"
        ));
    }
    Ok(())
}

/// `deept fuzz-soundness [--seed N | --seed A..B] [--cases M]`
///
/// Runs the differential soundness fuzzer of `deept::soundness` — the
/// relaxation/transformer micro-checker, the concrete-vs-abstract
/// containment harness and the attack-below-certified-radius consistency
/// gate — under one or more deterministic seeds. Exits nonzero if any
/// violation is found, printing each one.
fn cmd_fuzz_soundness(args: &[String]) -> Result<(), String> {
    let spec = flag(args, "--seed").unwrap_or_else(|| "0".into());
    let seeds: Vec<u64> = if let Some((a, b)) = spec.split_once("..") {
        let a: u64 = a
            .trim()
            .parse()
            .map_err(|_| "--seed range start must be a number")?;
        let b: u64 = b
            .trim()
            .parse()
            .map_err(|_| "--seed range end must be a number")?;
        if b < a {
            return Err("--seed range must be ascending (A..B, inclusive)".into());
        }
        (a..=b).collect()
    } else {
        vec![spec.parse().map_err(|_| "--seed must be N or A..B")?]
    };
    let cases: usize = flag(args, "--cases")
        .map(|s| s.parse().map_err(|_| "--cases must be a number"))
        .transpose()?
        .unwrap_or(200);

    let mut total = 0usize;
    for seed in seeds {
        let report = deept::soundness::run(&deept::soundness::FuzzConfig { seed, cases });
        println!("{}", report.summary());
        for v in &report.relaxation_violations {
            println!("  relaxation violation: {v:?}");
        }
        for v in &report.transformer_violations {
            println!("  transformer violation: {v:?}");
        }
        for v in &report.containment_violations {
            println!("  containment violation: {v:?}");
        }
        for v in &report.attack_violations {
            println!("  attack-below-certified-radius: {v:?}");
        }
        for v in &report.precision_violations {
            println!("  f32-nesting violation: {v:?}");
        }
        for v in &report.refine_violations {
            println!("  refined-verdict violation: {v:?}");
        }
        total += report.total_violations();
    }
    if total > 0 {
        return Err(format!("soundness fuzzing found {total} violation(s)"));
    }
    println!("soundness fuzzing clean: 0 violations");
    Ok(())
}

/// `deept bench-eps [--out BENCH_5.json] [--repeats N] [--layers L] [--len T]
/// [--embed E] [--hidden H] [--budget B] [--radius R] [--trace-dir DIR]`
///
/// Times full abstract propagation of a random transformer under both
/// ε-generator layouts — `dense` (the historical monolithic matrix) and
/// `blocked` (diagonal fresh-symbol blocks with lazy densification) — and
/// writes a JSON summary: per-mode median propagation seconds, per-layer
/// median seconds, peak ε columns, peak resident generator bytes,
/// densification count and scratch-arena hit rate, plus the headline
/// `speedup_vs_dense`. Both modes produce bitwise-identical bounds (pinned
/// by the `eps_mode_equivalence` tests), so this measures representation
/// cost only.
fn cmd_bench_eps(args: &[String]) -> Result<(), String> {
    use deept::verifier::deept::propagate_with_snapshots;
    use deept::zonotope::eps;
    use deept::zonotope::Zonotope;
    use std::time::Instant;

    let out_path = flag(args, "--out").unwrap_or_else(|| "BENCH_5.json".into());
    let repeats: usize = flag(args, "--repeats")
        .map(|s| s.parse().map_err(|_| "--repeats must be a number"))
        .transpose()?
        .unwrap_or(5);
    let layers: usize = flag(args, "--layers")
        .map(|s| s.parse().map_err(|_| "--layers must be a number"))
        .transpose()?
        .unwrap_or(2);
    let len: usize = flag(args, "--len")
        .map(|s| s.parse().map_err(|_| "--len must be a number"))
        .transpose()?
        .unwrap_or(6);
    let budget: usize = flag(args, "--budget")
        .map(|s| s.parse().map_err(|_| "--budget must be a number"))
        .transpose()?
        .unwrap_or(100);
    let hidden: usize = flag(args, "--hidden")
        .map(|s| s.parse().map_err(|_| "--hidden must be a number"))
        .transpose()?
        .unwrap_or(32);
    let embed: usize = flag(args, "--embed")
        .map(|s| s.parse().map_err(|_| "--embed must be a number"))
        .transpose()?
        .unwrap_or(8);
    let radius: f64 = flag(args, "--radius")
        .map(|s| s.parse().map_err(|_| "--radius must be a number"))
        .transpose()?
        .unwrap_or(0.05);

    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 12,
            max_len: len,
            embed_dim: embed,
            num_heads: 2,
            hidden_dim: hidden,
            num_layers: layers,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    );
    let tokens: Vec<usize> = (0..len).map(|i| 1 + (i % 10)).collect();
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(budget);
    let region = t1_region(&emb, 0, radius, PNorm::L2);

    /// Peak layer-output symbol count plus per-layer timing marks for one
    /// propagation. (Peak resident *bytes* come from the store-level
    /// high-water mark instead: layer outputs are densified in both modes,
    /// so boundary samples cannot see the blocked layout's savings.)
    #[derive(Default)]
    struct PeakProbe {
        peak_eps_cols: usize,
        layer_marks: Vec<std::time::Instant>,
        started: Option<std::time::Instant>,
    }
    impl deept::verifier::SoundnessProbe for PeakProbe {
        fn input(&mut self, _z: &Zonotope) {
            self.started = Some(std::time::Instant::now());
        }
        fn layer_output(&mut self, _i: usize, z: &Zonotope) {
            self.peak_eps_cols = self.peak_eps_cols.max(z.num_eps());
            self.layer_marks.push(std::time::Instant::now());
        }
        fn logits(&mut self, _z: &Zonotope) {}
    }

    fn median(xs: &mut [f64]) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        xs[xs.len() / 2]
    }

    struct ModeResult {
        median_s: f64,
        layer_median_s: Vec<f64>,
        peak_eps_cols: usize,
        peak_resident_bytes: usize,
        densifications: u64,
        arena_hits: u64,
        arena_misses: u64,
        bounds: (Vec<f64>, Vec<f64>),
    }

    let run_mode = |dense: bool| -> ModeResult {
        eps::set_force_dense(Some(dense));
        // Warm-up: populates the scratch arena and the thread pool.
        let _ = deept::verifier::deept::propagate(&net, &region, &cfg);
        let before = eps::snapshot();
        eps::reset_peak_resident_bytes();
        let mut totals = Vec::with_capacity(repeats);
        let mut per_layer: Vec<Vec<f64>> = vec![Vec::with_capacity(repeats); layers];
        let mut peak_eps_cols = 0usize;
        let mut bounds = (Vec::new(), Vec::new());
        for _ in 0..repeats {
            let mut probe = PeakProbe::default();
            let t0 = Instant::now();
            let logits = propagate_with_snapshots(&net, &region, &cfg, &mut probe);
            totals.push(t0.elapsed().as_secs_f64());
            let mut prev = probe.started.unwrap_or(t0);
            for (i, &mark) in probe.layer_marks.iter().enumerate() {
                per_layer[i].push((mark - prev).as_secs_f64());
                prev = mark;
            }
            peak_eps_cols = peak_eps_cols.max(probe.peak_eps_cols);
            bounds = logits.bounds();
        }
        let after = eps::snapshot();
        let arena = after.arena.since(&before.arena);
        ModeResult {
            median_s: median(&mut totals),
            layer_median_s: per_layer.iter_mut().map(|xs| median(xs)).collect(),
            peak_eps_cols,
            peak_resident_bytes: eps::peak_resident_bytes(),
            densifications: after.densifications - before.densifications,
            arena_hits: arena.hits,
            arena_misses: arena.misses,
            bounds,
        }
    };

    let dense = run_mode(true);
    let blocked = run_mode(false);
    if let Some(dir) = flag(args, "--trace-dir") {
        for (mode, force) in [("dense", true), ("blocked", false)] {
            eps::set_force_dense(Some(force));
            let collector = TraceCollector::new();
            let _ = deept::verifier::deept::propagate_probed(&net, &region, &cfg, &collector);
            let trace = collector.finish();
            trace
                .save_json(std::path::Path::new(&format!(
                    "{dir}/bench_eps_{mode}.json"
                )))
                .map_err(|e| format!("could not write trace: {e}"))?;
        }
    }
    eps::set_force_dense(None);

    if dense.bounds != blocked.bounds {
        return Err("ε-mode bounds diverged: dense and blocked must be bitwise identical".into());
    }
    let speedup = dense.median_s / blocked.median_s;
    let arena_total = blocked.arena_hits + blocked.arena_misses;
    let arena_hit_rate = if arena_total > 0 {
        blocked.arena_hits as f64 / arena_total as f64
    } else {
        0.0
    };

    let mode_json = |m: &ModeResult| {
        let layer_list = m
            .layer_median_s
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{{\"layer\": {i}, \"median_ms\": {:.4}}}", s * 1e3))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n      \"median_ms\": {:.4},\n      \"per_layer\": [{layer_list}],\n      \
             \"peak_eps_cols\": {},\n      \"peak_resident_generator_bytes\": {},\n      \
             \"densifications\": {}\n    }}",
            m.median_s * 1e3,
            m.peak_eps_cols,
            m.peak_resident_bytes,
            m.densifications,
        )
    };
    let (lo, hi) = &blocked.bounds;
    let logit_lo = lo.iter().cloned().fold(f64::INFINITY, f64::min);
    let logit_hi = hi.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let json = format!(
        "{{\n  \"config\": {{\"layers\": {layers}, \"len\": {len}, \"repeats\": {repeats}, \
         \"budget\": {budget}, \"radius\": {radius}, \"threads\": {}}},\n  \"modes\": {{\n    \"dense\": {},\n    \"blocked\": {}\n  }},\n  \
         \"speedup_vs_dense\": {:.3},\n  \"arena_hit_rate\": {:.3},\n  \
         \"logit_bounds\": [{logit_lo}, {logit_hi}],\n  \
         \"bounds_bitwise_identical\": true\n}}\n",
        deept::tensor::parallel::num_threads(),
        mode_json(&dense),
        mode_json(&blocked),
        speedup,
        arena_hit_rate,
    );
    std::fs::write(&out_path, &json).map_err(|e| format!("could not write {out_path}: {e}"))?;
    println!("{json}");
    println!(
        "eps-storage bench: dense {:.2} ms, blocked {:.2} ms, speedup {speedup:.2}x, \
         peak eps {} -> {} cols resident {} -> {} bytes",
        dense.median_s * 1e3,
        blocked.median_s * 1e3,
        dense.peak_eps_cols,
        blocked.peak_eps_cols,
        dense.peak_resident_bytes,
        blocked.peak_resident_bytes,
    );
    println!("bench written to {out_path}");
    Ok(())
}

/// `deept bench-kernels [--out BENCH_7.json] [--repeats N] [--layers L]
/// [--len T] [--embed E] [--hidden H] [--budget B]`
///
/// Benchmarks the compute-kernel dispatch ladder (`naive` / `blocked` /
/// `simd`) and the `f32` generator-storage mode, writing a JSON summary:
///
/// * per-kernel microbench medians (`dot`, `matmul`,
///   `matmul_transpose_b`, `eps_col_abs_sums`) with the simd-vs-blocked
///   speedup per kernel — outputs are asserted bitwise identical across
///   all three rungs;
/// * end-to-end abstract-propagation medians per kernel mode (bounds
///   asserted bitwise identical) and the simd-vs-blocked speedup;
/// * peak resident generator bytes of a relaxation-chain workload under
///   `f64` vs `f32` storage (`memory_ratio_f64_over_f32`), with the `f32`
///   logits interval checked to contain the `f64` reference.
///
/// Numeric gates (≥2x on a microbench, ≥1.15x end-to-end, ≥1.8x memory)
/// live in `scripts/bench_smoke.sh`, which parses this file.
fn cmd_bench_kernels(args: &[String]) -> Result<(), String> {
    use deept::tensor::parallel::{self, KernelMode};
    use deept::tensor::{vector, Matrix};
    use deept::zonotope::eps::{self, EpsStore};
    use deept::zonotope::Zonotope;
    use std::time::Instant;

    let out_path = flag(args, "--out").unwrap_or_else(|| "BENCH_7.json".into());
    let repeats: usize = flag(args, "--repeats")
        .map(|s| s.parse().map_err(|_| "--repeats must be a number"))
        .transpose()?
        .unwrap_or(7);
    let layers: usize = flag(args, "--layers")
        .map(|s| s.parse().map_err(|_| "--layers must be a number"))
        .transpose()?
        .unwrap_or(2);
    let len: usize = flag(args, "--len")
        .map(|s| s.parse().map_err(|_| "--len must be a number"))
        .transpose()?
        .unwrap_or(12);
    let embed: usize = flag(args, "--embed")
        .map(|s| s.parse().map_err(|_| "--embed must be a number"))
        .transpose()?
        .unwrap_or(64);
    let hidden: usize = flag(args, "--hidden")
        .map(|s| s.parse().map_err(|_| "--hidden must be a number"))
        .transpose()?
        .unwrap_or(32);
    let budget: usize = flag(args, "--budget")
        .map(|s| s.parse().map_err(|_| "--budget must be a number"))
        .transpose()?
        .unwrap_or(300);

    const KERNELS: [KernelMode; 3] = [KernelMode::Naive, KernelMode::Blocked, KernelMode::Simd];

    fn median(xs: &mut [f64]) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        xs[xs.len() / 2]
    }

    /// Deterministic pseudo-random matrix (no RNG state shared with the
    /// model builder below).
    fn gen(rows: usize, cols: usize, salt: u64) -> Matrix {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(salt.wrapping_mul(1442695040888963407) | 1);
                ((x >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect();
        Matrix::from_vec(rows, cols, data).expect("sized")
    }

    /// Times `body` under every kernel rung: median seconds per rung plus
    /// the per-rung result, which must be identical across rungs. Samples
    /// are interleaved round-robin across rungs so clock/thermal drift
    /// hits every distribution equally (same discipline as
    /// `bench-metrics`).
    fn per_kernel<R: PartialEq + std::fmt::Debug>(
        name: &str,
        repeats: usize,
        mut body: impl FnMut() -> R,
    ) -> Result<[f64; 3], String> {
        let mut reference: Option<R> = None;
        for mode in KERNELS {
            parallel::set_kernel_mode(Some(mode));
            let got = body(); // warm-up + correctness sample
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    if want != &got {
                        parallel::set_kernel_mode(None);
                        return Err(format!(
                            "{name}: {mode:?} result diverged from Naive — kernel rungs \
                             must be bitwise identical"
                        ));
                    }
                }
            }
        }
        let mut times: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for _ in 0..repeats {
            for (slot, mode) in KERNELS.iter().enumerate() {
                parallel::set_kernel_mode(Some(*mode));
                let t0 = Instant::now();
                let r = body();
                times[slot].push(t0.elapsed().as_secs_f64());
                std::hint::black_box(&r);
            }
        }
        parallel::set_kernel_mode(None);
        let mut medians = [0.0f64; 3];
        for (slot, xs) in times.iter_mut().enumerate() {
            medians[slot] = median(xs);
        }
        Ok(medians)
    }

    // --- Microbenches -----------------------------------------------------
    // Shapes cross the KC=128 panel boundary and leave ragged 4-lane tails.
    let dot_x: Vec<f64> = (0..4096).map(|i| ((i % 17) as f64 - 8.0) * 0.11).collect();
    let dot_y: Vec<f64> = (0..4096).map(|i| ((i % 13) as f64 - 6.0) * 0.07).collect();
    let mm_a = gen(96, 261, 1);
    let mm_b = gen(261, 130, 2);
    let tb_bt = gen(130, 261, 3);
    let scan_store = EpsStore::from_matrix(gen(384, 384, 4));

    let micro = [
        (
            "dot",
            per_kernel("dot", repeats, || {
                let mut acc = 0.0;
                for _ in 0..64 {
                    acc += vector::dot(&dot_x, &dot_y);
                }
                acc
            })?,
        ),
        (
            "matmul",
            per_kernel("matmul", repeats, || mm_a.matmul(&mm_b))?,
        ),
        (
            "matmul_transpose_b",
            per_kernel("matmul_transpose_b", repeats, || {
                mm_a.matmul_transpose_b(&tb_bt)
            })?,
        ),
        (
            "eps_col_abs_sums",
            per_kernel("eps_col_abs_sums", repeats, || scan_store.col_abs_sums())?,
        ),
    ];

    // --- End-to-end propagation per kernel rung ---------------------------
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 12,
            max_len: len,
            embed_dim: embed,
            num_heads: 4,
            hidden_dim: hidden,
            num_layers: layers,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    );
    let tokens: Vec<usize> = (0..len).map(|i| 1 + (i % 10)).collect();
    let net = VerifiableTransformer::from(&model);
    let emb = model.embed(&tokens);
    let cfg = DeepTConfig::fast(budget);
    let region = t1_region(&emb, 0, 0.02, PNorm::L2);

    let e2e_repeats = repeats.clamp(3, 5);
    let e2e = per_kernel("propagate", e2e_repeats, || {
        deept::verifier::deept::propagate(&net, &region, &cfg).bounds()
    })?;

    // --- f32 generator storage: memory + nesting --------------------------
    // A relaxation chain is the workload the compression targets: a wide
    // dense input block plus one fresh diagonal block per layer, with no
    // row-mixing matmul whose f64 output would mask the savings.
    let chain_rows = 48usize;
    let chain_eps = 48usize;
    let chain_layers = 48usize;
    eps::set_force_dense(Some(false));
    let run_chain = |f32_on: bool| -> (usize, (Vec<f64>, Vec<f64>)) {
        eps::set_force_f32(Some(f32_on));
        let center: Vec<f64> = (0..chain_rows).map(|i| (i as f64 * 0.13).sin()).collect();
        let gens = gen(chain_rows, chain_eps, 7).scale(0.02);
        let z = Zonotope::from_parts(
            chain_rows,
            1,
            center,
            Matrix::zeros(chain_rows, 0),
            gens,
            PNorm::Linf,
        );
        eps::reset_peak_resident_bytes();
        let mut z = z;
        for _ in 0..chain_layers {
            z = z.tanh();
        }
        let peak = eps::peak_resident_bytes();
        (peak, z.bounds())
    };
    let (peak64, bounds64) = run_chain(false);
    let (peak32, bounds32) = run_chain(true);
    eps::set_force_f32(None);
    eps::set_force_dense(None);
    let mem_ratio = peak64 as f64 / peak32.max(1) as f64;
    // Nesting: the f32 interval must contain the f64 reference (up to the
    // relaxation-pivot tolerance used by the soundness fuzzer).
    for k in 0..bounds64.0.len() {
        let t = 1e-9 * (1.0 + bounds64.0[k].abs().max(bounds64.1[k].abs()));
        if bounds32.0[k] - bounds64.0[k] > t || bounds64.1[k] - bounds32.1[k] > t {
            return Err(format!(
                "f32 storage produced a tighter bound than the f64 reference at \
                 variable {k}: f64 [{}, {}], f32 [{}, {}]",
                bounds64.0[k], bounds64.1[k], bounds32.0[k], bounds32.1[k]
            ));
        }
    }

    // --- Report -----------------------------------------------------------
    let micro_json = micro
        .iter()
        .map(|(name, m)| {
            format!(
                "    \"{name}\": {{\"naive_ms\": {:.4}, \"blocked_ms\": {:.4}, \
                 \"simd_ms\": {:.4}, \"speedup_simd_vs_blocked\": {:.3}}}",
                m[0] * 1e3,
                m[1] * 1e3,
                m[2] * 1e3,
                m[1] / m[2],
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let best_micro = micro
        .iter()
        .map(|(_, m)| m[1] / m[2])
        .fold(0.0f64, f64::max);
    let e2e_speedup = e2e[1] / e2e[2];
    let isa = deept::tensor::simd::active_isa().label();
    let json = format!(
        "{{\n  \"config\": {{\"layers\": {layers}, \"len\": {len}, \"embed\": {embed}, \
         \"hidden\": {hidden}, \"budget\": {budget}, \"repeats\": {repeats}, \
         \"threads\": {}, \"isa\": \"{isa}\"}},\n  \"micro\": {{\n{micro_json}\n  }},\n  \
         \"best_micro_speedup_simd_vs_blocked\": {best_micro:.3},\n  \
         \"end_to_end\": {{\"naive_ms\": {:.4}, \"blocked_ms\": {:.4}, \"simd_ms\": {:.4}, \
         \"speedup_simd_vs_blocked\": {e2e_speedup:.3}}},\n  \
         \"bounds_bitwise_identical_across_kernels\": true,\n  \
         \"f32_storage\": {{\"peak_resident_generator_bytes_f64\": {peak64}, \
         \"peak_resident_generator_bytes_f32\": {peak32}, \
         \"memory_ratio_f64_over_f32\": {mem_ratio:.3}, \
         \"f32_bounds_contain_f64\": true}}\n}}\n",
        deept::tensor::parallel::num_threads(),
        e2e[0] * 1e3,
        e2e[1] * 1e3,
        e2e[2] * 1e3,
    );
    std::fs::write(&out_path, &json).map_err(|e| format!("could not write {out_path}: {e}"))?;
    println!("{json}");
    println!(
        "kernel bench ({isa}): best micro speedup {best_micro:.2}x, end-to-end \
         {e2e_speedup:.2}x, f32 memory ratio {mem_ratio:.2}x"
    );
    println!("bench written to {out_path}");
    Ok(())
}

/// `deept bench-refine [--out BENCH_8.json] [--deadline-ms 2000]
/// [--models N] [--nodes K]`
///
/// Measures what the refinement ladder buys over the flat passes on *hard*
/// queries. For each of `--models` seeded tiny transformers the bench
/// first finds the flat certification frontier (the maximum radius
/// DeepT-Precise certifies, by bisection), then poses ℓ∞ queries at radii
/// just above it — queries the flat passes lose by construction. Each
/// query runs three ways under the same fresh per-query deadline:
/// DeepT-Fast only, DeepT-Precise, and the full escalation ladder. The
/// JSON reports per-method certified counts and the *recovery rate*: the
/// fraction of queries left unknown by both flat passes that refinement
/// certifies. CI gates on `recovery_rate >= 0.2`.
fn cmd_bench_refine(args: &[String]) -> Result<(), String> {
    use deept::refine::{refine_certify, RefineConfig, RefineOutcome};
    use deept::verifier::deept::certify;
    use deept::verifier::radius::max_certified_radius;
    use std::time::Instant;

    let out_path = flag(args, "--out").unwrap_or_else(|| "BENCH_8.json".into());
    let deadline_ms: u64 = flag(args, "--deadline-ms")
        .map(|s| s.parse().map_err(|_| "--deadline-ms must be a number"))
        .transpose()?
        .unwrap_or(2000);
    let models: usize = flag(args, "--models")
        .map(|s| s.parse().map_err(|_| "--models must be a number"))
        .transpose()?
        .unwrap_or(4);
    let nodes: usize = flag(args, "--nodes")
        .map(|s| s.parse().map_err(|_| "--nodes must be a number"))
        .transpose()?
        .unwrap_or(256);

    // Radii as multiples of the flat frontier: barely above it (where
    // branch-and-bound has the best shot) through clearly above it.
    let factors = [1.02, 1.10, 1.25];
    let rcfg = RefineConfig {
        refine_budget: 400,
        max_nodes: nodes,
        ..RefineConfig::default()
    };

    struct Row {
        model_seed: u64,
        radius: f64,
        frontier: f64,
        fast_certified: bool,
        precise_certified: bool,
        refine_verdict: &'static str,
        refine_nodes: usize,
        fast_ms: f64,
        precise_ms: f64,
        refine_ms: f64,
    }
    let mut rows: Vec<Row> = Vec::new();

    for m in 0..models {
        let seed = 40 + m as u64;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = TransformerClassifier::new(
            TransformerConfig {
                vocab_size: 13,
                max_len: 6,
                embed_dim: 8,
                num_heads: 2,
                hidden_dim: 12,
                num_layers: 2,
                num_classes: 2,
                layer_norm: LayerNormKind::NoStd,
            },
            &mut rng,
        );
        let tokens: Vec<usize> = (0..4).map(|i| 1 + (i * 3 + m) % 12).collect();
        let position = 1usize;
        let label = model.predict(&tokens);
        let net = VerifiableTransformer::from(&model);
        let emb = model.embed(&tokens);
        let precise_cfg = DeepTConfig::precise(500);
        let fast_cfg = DeepTConfig::fast(2000);
        // The flat frontier: everything below this radius the flat passes
        // already certify, so the interesting queries start just above.
        let frontier = max_certified_radius(
            |r| {
                let region = t1_region(&emb, position, r, PNorm::Linf);
                certify(&net, &region, label, &precise_cfg).certified
            },
            0.01,
            14,
        );
        if frontier <= 0.0 {
            continue;
        }
        for f in factors {
            let radius = frontier * f;
            let region = t1_region(&emb, position, radius, PNorm::Linf);

            let t0 = Instant::now();
            let fast_certified = certify_deadline_probed(
                &net,
                &region,
                label,
                &fast_cfg,
                Deadline::after_ms(Some(deadline_ms)),
                &NoopProbe,
            )
            .map(|r| r.certified)
            .unwrap_or(false);
            let fast_ms = t0.elapsed().as_secs_f64() * 1e3;

            let t0 = Instant::now();
            let precise_certified = certify_deadline_probed(
                &net,
                &region,
                label,
                &precise_cfg,
                Deadline::after_ms(Some(deadline_ms)),
                &NoopProbe,
            )
            .map(|r| r.certified)
            .unwrap_or(false);
            let precise_ms = t0.elapsed().as_secs_f64() * 1e3;

            let t0 = Instant::now();
            let report = refine_certify(
                &model,
                &tokens,
                position,
                radius,
                PNorm::Linf,
                label,
                &rcfg,
                Deadline::after_ms(Some(deadline_ms)),
            );
            let refine_ms = t0.elapsed().as_secs_f64() * 1e3;
            let refine_verdict = match report.outcome {
                RefineOutcome::Certified { .. } => "certified",
                RefineOutcome::Falsified { .. } => "falsified",
                RefineOutcome::Unknown { .. } => "unknown",
            };
            rows.push(Row {
                model_seed: seed,
                radius,
                frontier,
                fast_certified,
                precise_certified,
                refine_verdict,
                refine_nodes: report.nodes_explored,
                fast_ms,
                precise_ms,
                refine_ms,
            });
        }
    }

    let queries = rows.len();
    let fast_certified = rows.iter().filter(|r| r.fast_certified).count();
    let precise_certified = rows.iter().filter(|r| r.precise_certified).count();
    let refine_certified = rows
        .iter()
        .filter(|r| r.refine_verdict == "certified")
        .count();
    let hard: Vec<&Row> = rows
        .iter()
        .filter(|r| !r.fast_certified && !r.precise_certified)
        .collect();
    let recovered = hard
        .iter()
        .filter(|r| r.refine_verdict == "certified")
        .count();
    let recovery_rate = if hard.is_empty() {
        0.0
    } else {
        recovered as f64 / hard.len() as f64
    };

    let row_json = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"model_seed\": {}, \"radius\": {:.6}, \"frontier\": {:.6}, \
                 \"fast_certified\": {}, \"precise_certified\": {}, \
                 \"refine_verdict\": \"{}\", \"refine_nodes\": {}, \
                 \"fast_ms\": {:.2}, \"precise_ms\": {:.2}, \"refine_ms\": {:.2}}}",
                r.model_seed,
                r.radius,
                r.frontier,
                r.fast_certified,
                r.precise_certified,
                r.refine_verdict,
                r.refine_nodes,
                r.fast_ms,
                r.precise_ms,
                r.refine_ms,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"config\": {{\"deadline_ms\": {deadline_ms}, \"models\": {models}, \
         \"max_nodes\": {nodes}, \"factors\": [1.02, 1.10, 1.25]}},\n  \"queries\": [\n{row_json}\n  ],\n  \
         \"totals\": {{\"queries\": {queries}, \"fast_certified\": {fast_certified}, \
         \"precise_certified\": {precise_certified}, \"refine_certified\": {refine_certified}, \
         \"hard_queries\": {}, \"refine_recovered\": {recovered}, \
         \"recovery_rate\": {recovery_rate:.3}}}\n}}\n",
        hard.len(),
    );
    std::fs::write(&out_path, &json).map_err(|e| format!("could not write {out_path}: {e}"))?;
    println!("{json}");
    println!(
        "refine bench: {queries} frontier queries, fast {fast_certified} certified, \
         precise {precise_certified}, refine {refine_certified}; refinement recovered \
         {recovered}/{} flat-unknown queries ({:.0}%)",
        hard.len(),
        recovery_rate * 100.0,
    );
    println!("bench written to {out_path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let a = args(&["--model", "m.json", "--norm", "inf"]);
        assert_eq!(flag(&a, "--model").as_deref(), Some("m.json"));
        assert_eq!(flag(&a, "--norm").as_deref(), Some("inf"));
        assert_eq!(flag(&a, "--missing"), None);
        assert!(!has(&a, "--yelp"));
        assert!(has(&args(&["--yelp"]), "--yelp"));
    }

    #[test]
    fn certify_requires_model() {
        let err = cmd_certify(&args(&["--sentence", "x"])).unwrap_err();
        assert!(err.contains("--model"));
    }

    #[test]
    fn flag_all_collects_repeats() {
        let a = args(&[
            "--model",
            "a=x.json",
            "--workers",
            "4",
            "--model",
            "b=y.json",
        ]);
        assert_eq!(flag_all(&a, "--model"), vec!["a=x.json", "b=y.json"]);
        assert!(flag_all(&a, "--queue").is_empty());
    }

    #[test]
    fn request_requires_addr_and_action() {
        let err = cmd_request(&args(&["--status"])).unwrap_err();
        assert!(err.contains("--addr"));
        let err = cmd_request(&args(&["--addr", "127.0.0.1:1"])).unwrap_err();
        assert!(err.contains("--status"));
    }

    #[test]
    fn request_certify_requires_tokens_and_model_id() {
        let err = cmd_request(&args(&["--addr", "127.0.0.1:1", "--certify"])).unwrap_err();
        assert!(err.contains("--tokens"));
        let err = cmd_request(&args(&[
            "--addr",
            "127.0.0.1:1",
            "--certify",
            "--tokens",
            "1 2 nope",
        ]))
        .unwrap_err();
        assert!(err.contains("bad token id"));
    }

    #[test]
    fn serve_model_flag_requires_id_eq_path() {
        let err = cmd_serve(&args(&["--model", "no-equals-sign", "--stdio"])).unwrap_err();
        assert!(err.contains("id=path"));
    }

    #[test]
    fn load_model_flag_requires_id_eq_path() {
        let err = cmd_request(&args(&[
            "--addr",
            "127.0.0.1:1",
            "--load-model",
            "no-equals-sign",
        ]))
        .unwrap_err();
        assert!(err.contains("id=path"));
    }

    #[test]
    fn unknown_tokens_are_rejected() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let mut spec = sentiment::sst_spec();
        spec.train = 1;
        spec.test = 1;
        let ds = sentiment::generate(spec, &mut rng);
        let bundle = Bundle {
            model: TransformerClassifier::new(
                TransformerConfig {
                    vocab_size: ds.vocab.len(),
                    max_len: 6,
                    embed_dim: 8,
                    num_heads: 2,
                    hidden_dim: 8,
                    num_layers: 1,
                    num_classes: 2,
                    layer_norm: LayerNormKind::NoStd,
                },
                &mut rng,
            ),
            vocab: ds.vocab,
        };
        let err =
            parse_sentence(&bundle, &args(&["--sentence", "definitely_not_a_token"])).unwrap_err();
        assert!(err.contains("unknown token"));
        // And a real token resolves.
        let name = bundle.vocab.token(0).name.clone();
        let ids = parse_sentence(&bundle, &args(&["--sentence", &name])).unwrap();
        assert_eq!(ids, vec![0]);
    }
}
