//! Minimal stand-in for `rand_chacha`: a real ChaCha core (RFC 7539
//! quarter-round, 8 rounds) driving [`rand::RngCore`].
//!
//! Deterministic and statistically strong; the word-output order is
//! self-defined rather than bit-compatible with upstream `rand_chacha`
//! (see `third_party/README.md`).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded from 32 bytes.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, 64-bit counter, zero nonce.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        // 8 rounds = 4 double rounds (column + diagonal).
        for _ in 0..4 {
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (out, (&mixed, &input)) in self.buffer.iter_mut().zip(x.iter().zip(&self.state)) {
            *out = mixed.wrapping_add(input);
        }
        // 64-bit block counter in words 12–13.
        self.state[12] = self.state[12].wrapping_add(1);
        if self.state[12] == 0 {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Words 12–15 (counter + nonce) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(0);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let wa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let wb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(wa, wb);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn float_sampling_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
