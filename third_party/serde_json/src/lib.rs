//! Minimal stand-in for `serde_json`: compact + pretty writers and a
//! recursive-descent parser over the vendored serde's owned
//! [`Value`] data model.
//!
//! Guarantees the workspace relies on:
//! - Compact output has **no whitespace** (`{"type":"status"}`) and
//!   object keys keep insertion order, so serialization is
//!   deterministic and checkpoint fingerprints are stable.
//! - Floats print via Rust's shortest round-trip formatting with `.0`
//!   appended to integral values, so serialize → parse → serialize is
//!   byte-identical.
//! - Non-finite floats: `NaN` serializes as `null`; `±∞` serializes as
//!   `±1e999`, which `f64::from_str` parses back to `±∞`. (Upstream
//!   serde_json emits `null` for all three and cannot round-trip them;
//!   see `third_party/README.md`.)

pub use serde::value::Value;

use serde::de::DeserializeOwned;
use serde::Serialize;

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON (no whitespace).
///
/// # Errors
///
/// Currently infallible for in-repo types; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` as pretty JSON (two-space indent).
///
/// # Errors
///
/// Currently infallible for in-repo types; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = parse_value_complete(input)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_nan() {
        out.push_str("null");
    } else if x == f64::INFINITY {
        out.push_str("1e999");
    } else if x == f64::NEG_INFINITY {
        out.push_str("-1e999");
    } else {
        // Rust's Display is shortest-round-trip; keep the value a float
        // on reparse by appending `.0` when it prints as an integer.
        let s = x.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

fn parse_value_complete(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::msg(format!(
                "unexpected byte `{}` at position {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let esc = self
            .peek()
            .ok_or_else(|| Error::msg("unterminated escape"))?;
        self.pos += 1;
        match esc {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair.
                    if !self.eat_keyword("\\u") {
                        return Err(Error::msg("unpaired surrogate in string"));
                    }
                    let lo = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(Error::msg("invalid low surrogate in string"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error::msg("invalid \\u escape in string"))?,
                );
            }
            other => {
                return Err(Error::msg(format!(
                    "invalid escape `\\{}` in string",
                    other as char
                )))
            }
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_is_whitespace_free_and_ordered() {
        let v = Value::Object(vec![
            ("type".to_string(), Value::Str("status".to_string())),
            ("n".to_string(), Value::I64(2)),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"type":"status","n":2}"#);
    }

    #[test]
    fn floats_round_trip_byte_identically() {
        for x in [0.0, -0.0, 2.0, 0.1, 1.5e-12, f64::MAX, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "value {x}, json {json}");
            assert_eq!(to_string(&back).unwrap(), json);
        }
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0_f64).unwrap(), "2.0");
        let back: Value = from_str("2.0").unwrap();
        assert_eq!(back, Value::F64(2.0));
    }

    #[test]
    fn infinities_round_trip_and_nan_is_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "1e999");
        assert_eq!(to_string(&f64::NEG_INFINITY).unwrap(), "-1e999");
        let back: f64 = from_str("1e999").unwrap();
        assert_eq!(back, f64::INFINITY);
        let back: f64 = from_str("-1e999").unwrap();
        assert_eq!(back, f64::NEG_INFINITY);
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1f980}\u{0007}";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escapes_parse() {
        // BMP escape plus a surrogate pair.
        let back: String = from_str("\"A\\u00e9\\ud83e\\udd80\"").unwrap();
        assert_eq!(back, "A\u{e9}\u{1f980}");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_printing_indents() {
        let v = Value::Object(vec![(
            "xs".to_string(),
            Value::Array(vec![Value::I64(1), Value::I64(2)]),
        )]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numbers_preserve_integer_vs_float() {
        let back: Value = from_str("[1, -7, 18446744073709551615, 1.25]").unwrap();
        assert_eq!(
            back,
            Value::Array(vec![
                Value::I64(1),
                Value::I64(-7),
                Value::U64(18_446_744_073_709_551_615),
                Value::F64(1.25),
            ])
        );
    }
}
