//! Minimal stand-in for `proptest`: deterministic random testing with
//! the upstream macro/strategy surface the workspace uses, but no
//! shrinking and no persistence.
//!
//! Each `proptest!`-generated test derives its RNG seed from the test
//! name (FNV-1a) and the case index, so failures are reproducible
//! across runs and machines without a `.proptest-regressions` file
//! (existing regression files are ignored).

pub mod test_runner {
    //! Case generation and execution.

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// A failed test case (produced by `prop_assert!` and friends).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The RNG strategies draw from.
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// Deterministic RNG for one (test, case) pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(ChaCha8Rng::seed_from_u64(
                h ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Runs `config.cases` random cases of `test` over `strategy`.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first case whose
    /// closure returns an error, reporting the case index for replay.
    pub fn run<S, F>(config: &ProptestConfig, test_name: &str, strategy: S, test: F)
    where
        S: crate::strategy::Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(test_name, case);
            let input = strategy.sample(&mut rng);
            if let Err(e) = test(input) {
                panic!("proptest `{test_name}` failed at case {case}/{}: {e}", config.cases);
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Generates random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod collection {
    //! Strategies over collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy producing `Vec`s of a fixed length.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Supports an optional leading
/// `#![proptest_config(<expr>)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(
                &$config,
                stringify!($name),
                ($($strat,)+),
                |($($pat,)+)| {
                    #[allow(unreachable_code)]
                    let __result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __result
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current proptest case unless `$cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    __l == __r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    __l == __r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// Fails the current proptest case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    __l != __r,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    __l
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn sampling_is_deterministic_per_name_and_case() {
        let strat = 0.0f64..1.0;
        let a = strat.sample(&mut TestRng::for_case("t", 3));
        let b = strat.sample(&mut TestRng::for_case("t", 3));
        let c = strat.sample(&mut TestRng::for_case("t", 4));
        assert_eq!(a.to_bits(), b.to_bits());
        assert_ne!(a.to_bits(), c.to_bits());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..2000 {
            let x = (1usize..=7).sample(&mut rng);
            assert!((1..=7).contains(&x));
            let y = (-5.0f64..5.0).sample(&mut rng);
            assert!((-5.0..5.0).contains(&y));
            let z = (0u8..3).sample(&mut rng);
            assert!(z < 3);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let strat = (1usize..=4)
            .prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n))
            .prop_map(|v| v.len());
        let mut rng = TestRng::for_case("compose", 1);
        for _ in 0..100 {
            let len = strat.sample(&mut rng);
            assert!((1..=4).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_generates_runnable_tests(x in 0u64..100, (a, b) in (0.0f64..1.0, 1usize..=3)) {
            prop_assert!(x < 100);
            prop_assert!(a < 1.0);
            prop_assert_eq!(b.clamp(1, 3), b);
            prop_assert_ne!(b, 0);
        }
    }

    #[test]
    fn failing_case_panics_with_case_index() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run(
                &ProptestConfig::with_cases(8),
                "always_fails",
                (0u64..10,),
                |(_x,)| -> Result<(), TestCaseError> {
                    Err(TestCaseError::fail("nope"))
                },
            );
        });
        assert!(result.is_err());
    }
}
