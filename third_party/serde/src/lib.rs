//! Minimal stand-in for `serde`, specialized to the surface deept-rs
//! uses: derived (de)serialization of plain data types through an owned
//! JSON-like [`value::Value`] data model, consumed by the vendored
//! `serde_json`.
//!
//! Unlike upstream serde there is no `Serializer`/`Deserializer`
//! abstraction — [`Serialize`] converts to a [`value::Value`] and
//! [`Deserialize`] converts back. That is exactly what a JSON-only
//! workspace needs, and keeps the derive macro small enough to write
//! without `syn`.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The owned data model all (de)serialization routes through.

    /// A JSON-shaped value.
    ///
    /// Integers are kept apart from floats so `u64`/`i64` round-trip
    /// exactly; objects preserve insertion order so serialization is
    /// deterministic (checkpoint fingerprints rely on this).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// An integer representable as `i64`.
        I64(i64),
        /// An integer above `i64::MAX`.
        U64(u64),
        /// A float.
        F64(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object with insertion-ordered keys.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// A short name of the value's kind, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "boolean",
                Value::I64(_) | Value::U64(_) => "integer",
                Value::F64(_) => "number",
                Value::Str(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }

        /// Object member lookup; `None` for missing keys or non-objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as an `f64` if it is any number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::F64(x) => Some(*x),
                Value::I64(n) => Some(*n as f64),
                Value::U64(n) => Some(*n as f64),
                _ => None,
            }
        }

        /// The value as a `u64` if it is a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::I64(n) if *n >= 0 => Some(*n as u64),
                Value::U64(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as an `i64` if it is an in-range integer.
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::I64(n) => Some(*n),
                Value::U64(n) => i64::try_from(*n).ok(),
                _ => None,
            }
        }

        /// The value as a `bool` if it is one.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The value as a string slice if it is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value's elements if it is an array.
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The value's members if it is an object.
        pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
            match self {
                Value::Object(pairs) => Some(pairs),
                _ => None,
            }
        }

        /// `true` for `Value::Null`.
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }
    }

    static NULL: Value = Value::Null;

    impl std::ops::Index<&str> for Value {
        type Output = Value;

        /// Member access like `v["key"]`; missing keys and non-objects
        /// index to `Null` (matching upstream `serde_json`).
        fn index(&self, key: &str) -> &Value {
            self.get(key).unwrap_or(&NULL)
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;

        /// Element access like `v[0]`; out-of-range and non-arrays index
        /// to `Null` (matching upstream `serde_json`).
        fn index(&self, i: usize) -> &Value {
            match self {
                Value::Array(items) => items.get(i).unwrap_or(&NULL),
                _ => &NULL,
            }
        }
    }

    impl std::fmt::Display for Value {
        /// Compact JSON, matching the vendored `serde_json` writer.
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Value::Null => f.write_str("null"),
                Value::Bool(b) => write!(f, "{b}"),
                Value::I64(n) => write!(f, "{n}"),
                Value::U64(n) => write!(f, "{n}"),
                Value::F64(x) => {
                    if x.is_nan() {
                        f.write_str("null")
                    } else if *x == f64::INFINITY {
                        f.write_str("1e999")
                    } else if *x == f64::NEG_INFINITY {
                        f.write_str("-1e999")
                    } else {
                        let s = x.to_string();
                        f.write_str(&s)?;
                        if !s.contains(['.', 'e', 'E']) {
                            f.write_str(".0")?;
                        }
                        Ok(())
                    }
                }
                Value::Str(s) => write!(f, "{s:?}"),
                Value::Array(items) => {
                    f.write_str("[")?;
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write!(f, "{item}")?;
                    }
                    f.write_str("]")
                }
                Value::Object(pairs) => {
                    f.write_str("{")?;
                    for (i, (k, v)) in pairs.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write!(f, "{k:?}:{v}")?;
                    }
                    f.write_str("}")
                }
            }
        }
    }
}

use value::Value;

/// A (de)serialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`value::Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a value.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`value::Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes a value into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `value` has the wrong shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

pub mod de {
    //! Deserialization marker traits (API parity with upstream).

    /// Owned deserialization; with this crate's owned data model every
    /// [`Deserialize`](crate::Deserialize) type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

pub mod ser {
    //! Serialization traits (API parity with upstream).
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------
// Implementations for primitives and std containers
// ---------------------------------------------------------------------

fn int_from_value(v: &Value, ty: &str) -> Result<i128, Error> {
    match v {
        Value::I64(n) => Ok(i128::from(*n)),
        Value::U64(n) => Ok(i128::from(*n)),
        other => Err(Error::msg(format!(
            "invalid type: expected {ty}, found {}",
            other.kind()
        ))),
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = int_from_value(value, stringify!($t))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::I64(wide as i64)
                } else {
                    Value::U64(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = int_from_value(value, stringify!($t))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let n = int_from_value(value, "isize")?;
        isize::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            other => Err(Error::msg(format!(
                "invalid type: expected f64, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!(
                "invalid type: expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "invalid type: expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!(
                "invalid type: expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!(
                        "invalid type: expected array of length {}, found {}",
                        $len,
                        other.kind()
                    ))),
                }
            }
        }
    };
}
impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------
// Support routines for the derive macro
// ---------------------------------------------------------------------

#[doc(hidden)]
pub mod __private {
    //! Helpers referenced by `serde_derive`-generated code. Not public
    //! API.

    use crate::value::Value;
    use crate::{Deserialize, Error};

    pub fn as_object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
        match v {
            Value::Object(pairs) => Ok(pairs),
            other => Err(Error::msg(format!(
                "invalid type: expected {ty} object, found {}",
                other.kind()
            ))),
        }
    }

    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Field extraction with serde's missing-field semantics: a missing
    /// field is retried against `null`, which succeeds exactly for
    /// `Option` (and `Value`) fields.
    pub fn field<T: Deserialize>(
        obj: &[(String, Value)],
        ty: &str,
        name: &str,
    ) -> Result<T, Error> {
        match get(obj, name) {
            Some(v) => {
                T::from_value(v).map_err(|e| Error::msg(format!("field `{name}` of {ty}: {e}")))
            }
            None => T::from_value(&Value::Null)
                .map_err(|_| Error::msg(format!("missing field `{name}` in {ty}"))),
        }
    }

    pub fn check_unknown(
        obj: &[(String, Value)],
        allowed: &[&str],
        ty: &str,
    ) -> Result<(), Error> {
        for (k, _) in obj {
            if !allowed.contains(&k.as_str()) {
                return Err(Error::msg(format!("unknown field `{k}` in {ty}")));
            }
        }
        Ok(())
    }

    /// Prepends an internal tag to an (object) value; used by internally
    /// tagged newtype variants.
    pub fn inject_tag(v: Value, tag: &str, name: &str) -> Value {
        match v {
            Value::Object(mut pairs) => {
                pairs.insert(0, (tag.to_string(), Value::Str(name.to_string())));
                Value::Object(pairs)
            }
            // Non-object payloads cannot carry an internal tag; mirror
            // serde by wrapping defensively (never hit by in-repo types).
            other => Value::Object(vec![
                (tag.to_string(), Value::Str(name.to_string())),
                ("content".to_string(), other),
            ]),
        }
    }

    /// An object with one key removed (used to strip the tag before
    /// delegating an internally tagged newtype variant to its payload).
    pub fn strip_key(obj: &[(String, Value)], key: &str) -> Value {
        Value::Object(
            obj.iter()
                .filter(|(k, _)| k != key)
                .cloned()
                .collect::<Vec<_>>(),
        )
    }

    pub fn get_str<'a>(
        obj: &'a [(String, Value)],
        key: &str,
        ty: &str,
    ) -> Result<&'a str, Error> {
        match get(obj, key) {
            Some(Value::Str(s)) => Ok(s),
            Some(other) => Err(Error::msg(format!(
                "tag `{key}` of {ty} must be a string, found {}",
                other.kind()
            ))),
            None => Err(Error::msg(format!("missing tag `{key}` in {ty}"))),
        }
    }

    pub fn unknown_variant(ty: &str, got: &str, expected: &[&str]) -> Error {
        Error::msg(format!(
            "unknown variant `{got}` of {ty}, expected one of {expected:?}"
        ))
    }

    pub fn invalid_type(ty: &str, v: &Value) -> Error {
        Error::msg(format!(
            "invalid type for {ty}: found {}",
            v.kind()
        ))
    }
}
