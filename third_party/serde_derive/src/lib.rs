//! Minimal `serde_derive` stand-in: hand-rolled token parsing (no
//! `syn`/`quote`) generating impls of the vendored serde's value-based
//! `Serialize`/`Deserialize` traits.
//!
//! Supported shapes: structs with named fields (optionally generic over
//! type parameters), enums with unit / newtype / struct variants.
//! Supported attributes: `#[serde(tag = "...")]`,
//! `#[serde(rename_all = "snake_case")]`, `#[serde(deny_unknown_fields)]`,
//! `#[serde(default)]`, `#[serde(default = "path")]`,
//! `#[serde(skip_serializing_if = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item).parse().expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    tag: Option<String>,
    rename_all: Option<String>,
    deny_unknown: bool,
}

#[derive(Clone)]
enum DefaultAttr {
    None,
    Std,
    Path(String),
}

#[derive(Clone)]
struct Field {
    name: String,
    default: DefaultAttr,
    skip_if: Option<String>,
}

enum VariantBody {
    Unit,
    Newtype,
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    wire: String,
    body: VariantBody,
}

enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    generics: Vec<String>,
    attrs: ContainerAttrs,
    kind: Kind,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.bump() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }
}

/// Raw `#[serde(...)]` arguments on an item: `(name, value?)` pairs.
fn parse_attrs(cur: &mut Cursor) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    while cur.eat_punct('#') {
        let group = match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde_derive: malformed attribute, found {other:?}"),
        };
        let mut inner = Cursor::new(group.stream());
        if !inner.eat_ident("serde") {
            continue; // doc comment or other attribute
        }
        let args = match inner.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
            other => panic!("serde_derive: malformed #[serde] attribute: {other:?}"),
        };
        let mut args = Cursor::new(args.stream());
        loop {
            if args.peek().is_none() {
                break;
            }
            let name = args.expect_ident("serde attribute name");
            let value = if args.eat_punct('=') {
                match args.bump() {
                    Some(TokenTree::Literal(lit)) => Some(strip_quotes(&lit.to_string())),
                    other => panic!("serde_derive: expected string after `{name} =`: {other:?}"),
                }
            } else {
                None
            };
            out.push((name, value));
            let _ = args.eat_punct(',');
        }
    }
    out
}

fn strip_quotes(lit: &str) -> String {
    let s = lit.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        s[1..s.len() - 1].to_string()
    } else {
        panic!("serde_derive: expected a string literal, found `{lit}`")
    }
}

fn skip_visibility(cur: &mut Cursor) {
    if cur.eat_ident("pub") {
        if let Some(TokenTree::Group(g)) = cur.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                cur.pos += 1; // pub(crate) etc.
            }
        }
    }
}

/// Skips one type, stopping before a top-level `,` (angle-bracket aware;
/// parens/brackets arrive pre-grouped).
fn skip_type(cur: &mut Cursor) {
    let mut depth = 0i32;
    while let Some(tok) = cur.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        cur.pos += 1;
    }
}

fn field_attrs(raw: &[(String, Option<String>)]) -> (DefaultAttr, Option<String>) {
    let mut default = DefaultAttr::None;
    let mut skip_if = None;
    for (name, value) in raw {
        match (name.as_str(), value) {
            ("default", None) => default = DefaultAttr::Std,
            ("default", Some(path)) => default = DefaultAttr::Path(path.clone()),
            ("skip_serializing_if", Some(path)) => skip_if = Some(path.clone()),
            other => panic!("serde_derive: unsupported field attribute {other:?}"),
        }
    }
    (default, skip_if)
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let raw = parse_attrs(&mut cur);
        skip_visibility(&mut cur);
        if cur.peek().is_none() {
            break;
        }
        let name = cur.expect_ident("field name");
        assert!(cur.eat_punct(':'), "serde_derive: expected `:` after field `{name}`");
        skip_type(&mut cur);
        let _ = cur.eat_punct(',');
        let (default, skip_if) = field_attrs(&raw);
        fields.push(Field {
            name,
            default,
            skip_if,
        });
    }
    fields
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn rename(rename_all: Option<&str>, name: &str) -> String {
    match rename_all {
        None => name.to_string(),
        Some("snake_case") => snake_case(name),
        Some("lowercase") => name.to_lowercase(),
        Some(other) => panic!("serde_derive: unsupported rename_all = {other:?}"),
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut cur = Cursor::new(input);
    let raw = parse_attrs(&mut cur);
    let mut attrs = ContainerAttrs::default();
    for (name, value) in &raw {
        match (name.as_str(), value) {
            ("tag", Some(v)) => attrs.tag = Some(v.clone()),
            ("rename_all", Some(v)) => attrs.rename_all = Some(v.clone()),
            ("deny_unknown_fields", None) => attrs.deny_unknown = true,
            other => panic!("serde_derive: unsupported container attribute {other:?}"),
        }
    }
    skip_visibility(&mut cur);
    let is_enum = if cur.eat_ident("struct") {
        false
    } else if cur.eat_ident("enum") {
        true
    } else {
        panic!("serde_derive: expected `struct` or `enum`, found {:?}", cur.peek())
    };
    let name = cur.expect_ident("type name");

    let mut generics = Vec::new();
    if cur.eat_punct('<') {
        let mut depth = 1i32;
        let mut expect_param = true;
        while depth > 0 {
            match cur.bump() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    expect_param = true;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                    panic!("serde_derive: lifetime parameters are not supported")
                }
                Some(TokenTree::Ident(id)) => {
                    if expect_param {
                        generics.push(id.to_string());
                        expect_param = false;
                    }
                    // Bounds after `:` are skipped by the depth walk.
                }
                Some(_) => {}
                None => panic!("serde_derive: unterminated generics on `{name}`"),
            }
        }
    }

    let body = loop {
        match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                panic!("serde_derive: where clauses are not supported")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde_derive: unit/tuple structs are not supported")
            }
            Some(_) => {}
            None => panic!("serde_derive: missing body for `{name}`"),
        }
    };

    let kind = if is_enum {
        let mut cur = Cursor::new(body);
        let mut variants = Vec::new();
        loop {
            let _ = parse_attrs(&mut cur); // variant-level attrs unsupported/ignored (doc only)
            if cur.peek().is_none() {
                break;
            }
            let vname = cur.expect_ident("variant name");
            let body = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    cur.pos += 1;
                    VariantBody::Newtype
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream());
                    cur.pos += 1;
                    VariantBody::Named(fields)
                }
                _ => VariantBody::Unit,
            };
            let _ = cur.eat_punct(',');
            let wire = rename(attrs.rename_all.as_deref(), &vname);
            variants.push(Variant {
                name: vname,
                wire,
                body,
            });
        }
        Kind::Enum(variants)
    } else {
        Kind::Struct(parse_named_fields(body))
    };

    Input {
        name,
        generics,
        attrs,
        kind,
    }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn impl_header(input: &Input, trait_bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let decl: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: {trait_bound}"))
            .collect();
        let args = input.generics.join(", ");
        (format!("<{}>", decl.join(", ")), format!("<{args}>"))
    }
}

/// Serialization statements pushing named fields onto `__fields`.
/// `access` renders the field expression (e.g. `&self.f` or a binding).
fn ser_named_fields(fields: &[Field], access: impl Fn(&Field) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        let expr = access(f);
        let push = format!(
            "__fields.push((\"{n}\".to_string(), serde::Serialize::to_value({expr})));\n",
            n = f.name
        );
        match &f.skip_if {
            Some(path) => {
                out.push_str(&format!("if !{path}({expr}) {{ {push} }}\n"));
            }
            None => out.push_str(&push),
        }
    }
    out
}

/// Deserialization initializers for a named-field constructor body.
fn de_named_fields(ty_label: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let n = &f.name;
        let init = match &f.default {
            DefaultAttr::None => {
                format!("serde::__private::field(__obj, \"{ty_label}\", \"{n}\")?")
            }
            DefaultAttr::Std => format!(
                "match serde::__private::get(__obj, \"{n}\") {{ \
                   Some(__x) => serde::Deserialize::from_value(__x)\
                     .map_err(|__e| serde::Error::msg(format!(\"field `{n}` of {ty_label}: {{__e}}\")))?, \
                   None => ::core::default::Default::default() }}"
            ),
            DefaultAttr::Path(path) => format!(
                "match serde::__private::get(__obj, \"{n}\") {{ \
                   Some(__x) => serde::Deserialize::from_value(__x)\
                     .map_err(|__e| serde::Error::msg(format!(\"field `{n}` of {ty_label}: {{__e}}\")))?, \
                   None => {path}() }}"
            ),
        };
        out.push_str(&format!("{n}: {init},\n"));
    }
    out
}

fn allowed_list(fields: &[Field], tag: Option<&str>) -> String {
    let mut names: Vec<String> = Vec::new();
    if let Some(t) = tag {
        names.push(format!("\"{t}\""));
    }
    names.extend(fields.iter().map(|f| format!("\"{}\"", f.name)));
    names.join(", ")
}

fn gen_serialize(input: &Input) -> String {
    let (decl, args) = impl_header(input, "serde::Serialize");
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let pushes = ser_named_fields(fields, |f| format!("(&self.{})", f.name));
            format!(
                "let mut __fields: Vec<(String, serde::value::Value)> = Vec::new();\n\
                 {pushes}\
                 serde::value::Value::Object(__fields)"
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let wire = &v.wire;
                match (&v.body, input.attrs.tag.as_deref()) {
                    (VariantBody::Unit, Some(tag)) => arms.push_str(&format!(
                        "Self::{vname} => serde::value::Value::Object(vec![(\"{tag}\".to_string(), serde::value::Value::Str(\"{wire}\".to_string()))]),\n"
                    )),
                    (VariantBody::Unit, None) => arms.push_str(&format!(
                        "Self::{vname} => serde::value::Value::Str(\"{wire}\".to_string()),\n"
                    )),
                    (VariantBody::Newtype, Some(tag)) => arms.push_str(&format!(
                        "Self::{vname}(__inner) => serde::__private::inject_tag(serde::Serialize::to_value(__inner), \"{tag}\", \"{wire}\"),\n"
                    )),
                    (VariantBody::Newtype, None) => arms.push_str(&format!(
                        "Self::{vname}(__inner) => serde::value::Value::Object(vec![(\"{wire}\".to_string(), serde::Serialize::to_value(__inner))]),\n"
                    )),
                    (VariantBody::Named(fields), tag) => {
                        let bindings: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let bindings = bindings.join(", ");
                        let tag_push = match tag {
                            Some(t) => format!(
                                "__fields.push((\"{t}\".to_string(), serde::value::Value::Str(\"{wire}\".to_string())));\n"
                            ),
                            None => String::new(),
                        };
                        let pushes = ser_named_fields(fields, |f| f.name.clone());
                        let object = "serde::value::Value::Object(__fields)";
                        let result = match tag {
                            Some(_) => object.to_string(),
                            None => format!(
                                "serde::value::Value::Object(vec![(\"{wire}\".to_string(), {object})])"
                            ),
                        };
                        arms.push_str(&format!(
                            "Self::{vname} {{ {bindings} }} => {{\n\
                               let mut __fields: Vec<(String, serde::value::Value)> = Vec::new();\n\
                               {tag_push}{pushes}{result}\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, unused_mut, clippy::all, clippy::pedantic)]\n\
         impl{decl} serde::Serialize for {name}{args} {{\n\
           fn to_value(&self) -> serde::value::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (decl, args) = impl_header(input, "serde::Deserialize");
    let name = &input.name;
    let deny = input.attrs.deny_unknown;
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let check = if deny {
                format!(
                    "serde::__private::check_unknown(__obj, &[{}], \"{name}\")?;\n",
                    allowed_list(fields, None)
                )
            } else {
                String::new()
            };
            let inits = de_named_fields(name, fields);
            format!(
                "let __obj = serde::__private::as_object(__value, \"{name}\")?;\n\
                 {check}\
                 Ok(Self {{\n{inits}}})"
            )
        }
        Kind::Enum(variants) => {
            let wires: Vec<String> = variants.iter().map(|v| format!("\"{}\"", v.wire)).collect();
            let wires = wires.join(", ");
            match input.attrs.tag.as_deref() {
                Some(tag) => {
                    let mut arms = String::new();
                    for v in variants {
                        let vname = &v.name;
                        let wire = &v.wire;
                        let label = format!("{name}::{vname}");
                        match &v.body {
                            VariantBody::Unit => {
                                let check = if deny {
                                    format!(
                                        "serde::__private::check_unknown(__obj, &[\"{tag}\"], \"{label}\")?;\n"
                                    )
                                } else {
                                    String::new()
                                };
                                arms.push_str(&format!(
                                    "\"{wire}\" => {{ {check} Ok(Self::{vname}) }},\n"
                                ));
                            }
                            VariantBody::Newtype => arms.push_str(&format!(
                                "\"{wire}\" => Ok(Self::{vname}(serde::Deserialize::from_value(&serde::__private::strip_key(__obj, \"{tag}\"))?)),\n"
                            )),
                            VariantBody::Named(fields) => {
                                let check = if deny {
                                    format!(
                                        "serde::__private::check_unknown(__obj, &[{}], \"{label}\")?;\n",
                                        allowed_list(fields, Some(tag))
                                    )
                                } else {
                                    String::new()
                                };
                                let inits = de_named_fields(&label, fields);
                                arms.push_str(&format!(
                                    "\"{wire}\" => {{ {check} Ok(Self::{vname} {{\n{inits}}}) }},\n"
                                ));
                            }
                        }
                    }
                    format!(
                        "let __obj = serde::__private::as_object(__value, \"{name}\")?;\n\
                         let __tag = serde::__private::get_str(__obj, \"{tag}\", \"{name}\")?;\n\
                         match __tag {{\n{arms}\
                           __other => Err(serde::__private::unknown_variant(\"{name}\", __other, &[{wires}])),\n\
                         }}"
                    )
                }
                None => {
                    let mut unit_arms = String::new();
                    let mut data_arms = String::new();
                    for v in variants {
                        let vname = &v.name;
                        let wire = &v.wire;
                        let label = format!("{name}::{vname}");
                        match &v.body {
                            VariantBody::Unit => unit_arms
                                .push_str(&format!("\"{wire}\" => Ok(Self::{vname}),\n")),
                            VariantBody::Newtype => data_arms.push_str(&format!(
                                "\"{wire}\" => Ok(Self::{vname}(serde::Deserialize::from_value(__inner)?)),\n"
                            )),
                            VariantBody::Named(fields) => {
                                let check = if deny {
                                    format!(
                                        "serde::__private::check_unknown(__obj, &[{}], \"{label}\")?;\n",
                                        allowed_list(fields, None)
                                    )
                                } else {
                                    String::new()
                                };
                                let inits = de_named_fields(&label, fields);
                                data_arms.push_str(&format!(
                                    "\"{wire}\" => {{\n\
                                       let __obj = serde::__private::as_object(__inner, \"{label}\")?;\n\
                                       {check}\
                                       Ok(Self::{vname} {{\n{inits}}})\n\
                                     }},\n"
                                ));
                            }
                        }
                    }
                    format!(
                        "match __value {{\n\
                           serde::value::Value::Str(__s) => match __s.as_str() {{\n\
                             {unit_arms}\
                             __other => Err(serde::__private::unknown_variant(\"{name}\", __other, &[{wires}])),\n\
                           }},\n\
                           serde::value::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                             let (__key, __inner) = &__pairs[0];\n\
                             match __key.as_str() {{\n\
                               {data_arms}\
                               __other => Err(serde::__private::unknown_variant(\"{name}\", __other, &[{wires}])),\n\
                             }}\n\
                           }},\n\
                           __other => Err(serde::__private::invalid_type(\"{name}\", __other)),\n\
                         }}"
                    )
                }
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, unused_mut, clippy::all, clippy::pedantic)]\n\
         impl{decl} serde::Deserialize for {name}{args} {{\n\
           fn from_value(__value: &serde::value::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
