//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! Implements exactly the API slice deept-rs uses: [`RngCore`],
//! [`SeedableRng`] (with the standard SplitMix64 `seed_from_u64`
//! expansion), the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`) and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The sampling algorithms are *functionally* equivalent to upstream
//! (uniform, unbiased to within multiply-shift precision) but do not
//! reproduce upstream's exact value streams. See `third_party/README.md`.

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same construction `rand_core 0.6` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod distributions {
    //! The tiny slice of `rand::distributions` used in-repo.

    use crate::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: uniform over `[0, 1)` for floats,
    /// uniform over the full range for integers and `bool`.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: PartialOrd + Copy {
        /// Samples uniformly from `[low, high)` (`inclusive = false`) or
        /// `[low, high]` (`inclusive = true`).
        fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
            -> Self;
    }

    impl SampleUniform for f64 {
        fn sample_in<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self {
            let unit = if inclusive {
                (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
            } else {
                (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
            };
            let r = low + (high - low) * unit;
            if inclusive {
                r.clamp(low, high)
            } else if r < high {
                r
            } else {
                // Floating-point rounding pushed the sample onto the open
                // endpoint; return a value guaranteed inside the range.
                low
            }
        }
    }

    impl SampleUniform for f32 {
        fn sample_in<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self {
            f64::sample_in(rng, low as f64, high as f64, inclusive) as f32
        }
    }

    macro_rules! uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_in<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (high as u128)
                        .wrapping_sub(low as u128)
                        .wrapping_add(u128::from(inclusive));
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    // Multiply-shift: map a 64-bit word onto [0, span).
                    let x = rng.next_u64() as u128;
                    let off = (x * span) >> 64;
                    (low as u128 + off) as $t
                }
            }
        )*};
    }
    uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_in<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (high as i128 - low as i128 + i128::from(inclusive)) as u128;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    let x = rng.next_u64() as u128;
                    let off = ((x * span) >> 64) as i128;
                    (low as i128 + off) as $t
                }
            }
        )*};
    }
    uniform_int!(i8, i16, i32, i64, isize);

    /// Ranges a uniform sample can be drawn from.
    pub trait SampleRange<T> {
        /// Draws one uniform sample; panics on an empty range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_in(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample empty range");
            T::sample_in(rng, low, high, true)
        }
    }
}

/// The user-facing extension trait: convenience sampling on any
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: distributions::SampleUniform,
        Rg: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related random operations.

    use crate::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                Some(&self[i])
            }
        }
    }
}

pub mod rngs {
    //! Deterministic convenience generators.

    use crate::{RngCore, SeedableRng};

    /// A small, fast xorshift-style generator (not cryptographic).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xorshift64* — adequate for tests and sampling.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = u64::from_le_bytes(seed);
            if state == 0 {
                state = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { state }
        }
    }
}

pub mod prelude {
    //! Common re-exports.
    pub use crate::distributions::Distribution;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&g));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn integer_sampling_covers_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_probability_is_roughly_right() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
