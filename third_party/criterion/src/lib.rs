//! Minimal stand-in for `criterion`: wall-clock benchmarking with the
//! upstream API surface the bench crate uses (groups, parameterized
//! IDs, `iter`), median-of-samples reporting, and upstream's
//! test-vs-bench mode split.
//!
//! Mode selection matches upstream: `cargo bench` passes `--bench` to
//! the target, enabling measurement; under `cargo test` (no `--bench`
//! flag) every benchmark body runs exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; `cargo test` does not.
        Criterion {
            measure: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            measure: self.measure,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", f);
        group.finish();
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measure: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = join_label(&self.name, &id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, self.measure, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// A benchmark name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(join_label(&function_name.into(), &parameter.to_string()))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] so bench methods accept both ids and
/// plain strings.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

fn join_label(group: &str, id: &str) -> String {
    match (group.is_empty(), id.is_empty()) {
        (_, true) => group.to_string(),
        (true, false) => id.to_string(),
        (false, false) => format!("{group}/{id}"),
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `self.iters` times and records the elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Target per-sample wall time when measuring.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, measure: bool, mut f: F) {
    if !measure {
        // Test mode: one iteration, no timing output.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {label} ... ok");
        return;
    }

    // Calibrate: double iteration counts until one sample is long enough
    // to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 30 {
            break;
        }
        iters = if b.elapsed.is_zero() {
            iters * 8
        } else {
            let scale = TARGET_SAMPLE_TIME.as_secs_f64() / b.elapsed.as_secs_f64();
            (iters as f64 * scale.clamp(1.1, 8.0)).ceil() as u64
        };
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let low = per_iter[0];
    let high = per_iter[per_iter.len() - 1];
    println!(
        "{label:<40} time: [{} {} {}]",
        format_time(low),
        format_time(median),
        format_time(high)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_in_test_mode() {
        let mut c = Criterion { measure: false };
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, n| {
                b.iter(|| black_box(n * 2));
                runs += 1;
            });
            g.finish();
        }
        // Test mode calls each body exactly once.
        assert_eq!(runs, 1);
    }

    #[test]
    fn measurement_mode_times_and_reports() {
        let mut c = Criterion { measure: true };
        let mut g = c.benchmark_group("m");
        g.sample_size(2);
        let mut calls = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| black_box(calls += 1));
        });
        g.finish();
        // Calibration plus two samples: the body ran more than once.
        assert!(calls > 2, "calls = {calls}");
    }

    #[test]
    fn benchmark_ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("fast", 32).0, "fast/32");
        assert_eq!(BenchmarkId::from_parameter(32).0, "32");
        assert_eq!(join_label("group", "fast/32"), "group/fast/32");
        assert_eq!(join_label("group", ""), "group");
    }
}
