//! The encoder Transformer for sequence classification (§3.1 of the paper):
//! embedding + positional encoding, `M` layers of multi-head self-attention
//! and feed-forward blocks with residual connections and layer
//! normalization, followed by first-token pooling, a tanh hidden layer and a
//! linear classifier (Figure 2 / Figure 3).
//!
//! Two layer-normalization variants are supported, matching the paper's
//! experiments: the default *no-std* normalization (`x − mean`, no division
//! by the standard deviation — §3.1, better certifiability) and the
//! *standard* normalization used in the Table 7 study.

use deept_tensor::{ops, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::autodiff::{Tape, Var};
use crate::init;

/// Layer-normalization flavour (§3.1 vs §6.6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LayerNormKind {
    /// `(x − mean) ∘ γ + β` — the paper's default.
    NoStd,
    /// `((x − mean)/√(var + ε)) ∘ γ + β` — standard layer norm (Table 7).
    Std {
        /// Variance-smoothing epsilon.
        epsilon: f64,
    },
}

/// Architecture hyper-parameters of a [`TransformerClassifier`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Vocabulary size (token models).
    pub vocab_size: usize,
    /// Maximum sequence length (size of the positional table).
    pub max_len: usize,
    /// Embedding dimension `E`.
    pub embed_dim: usize,
    /// Number of attention heads `A` (must divide `embed_dim`).
    pub num_heads: usize,
    /// Feed-forward hidden size `H`.
    pub hidden_dim: usize,
    /// Number of Transformer layers `M`.
    pub num_layers: usize,
    /// Number of output classes (2 for sentiment).
    pub num_classes: usize,
    /// Layer-normalization flavour.
    pub layer_norm: LayerNormKind,
}

impl TransformerConfig {
    /// Per-head key/value dimension `d_k = E / A`.
    ///
    /// # Panics
    ///
    /// Panics if `num_heads` does not divide `embed_dim`.
    pub fn head_dim(&self) -> usize {
        assert!(
            self.embed_dim.is_multiple_of(self.num_heads),
            "num_heads must divide embed_dim"
        );
        self.embed_dim / self.num_heads
    }
}

/// One attention head's projection matrices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionHead {
    /// Query projection `E × d_k`.
    pub wq: Matrix,
    /// Key projection `E × d_k`.
    pub wk: Matrix,
    /// Value projection `E × d_v`.
    pub wv: Matrix,
}

/// Multi-head self-attention block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelfAttention {
    /// The `A` heads.
    pub heads: Vec<AttentionHead>,
    /// Output projection `(A·d_v) × E`.
    pub w0: Matrix,
    /// Output bias `1 × E`.
    pub b0: Matrix,
}

/// Layer-normalization parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerNorm {
    /// Per-feature scale `1 × E`.
    pub gamma: Matrix,
    /// Per-feature shift `1 × E`.
    pub beta: Matrix,
}

/// The position-wise feed-forward network (one hidden ReLU layer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedForward {
    /// `E × H`.
    pub w1: Matrix,
    /// `1 × H`.
    pub b1: Matrix,
    /// `H × E`.
    pub w2: Matrix,
    /// `1 × E`.
    pub b2: Matrix,
}

/// One Transformer layer (Figure 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderLayer {
    /// Multi-head self-attention.
    pub attention: SelfAttention,
    /// Normalization after the attention residual.
    pub ln1: LayerNorm,
    /// Feed-forward network.
    pub ffn: FeedForward,
    /// Normalization after the FFN residual.
    pub ln2: LayerNorm,
}

/// Pooling + classification head (Figure 2): first-token pooling, a tanh
/// hidden layer, then a linear classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierHead {
    /// Pooler weight `E × E`.
    pub wp: Matrix,
    /// Pooler bias `1 × E`.
    pub bp: Matrix,
    /// Classifier weight `E × num_classes`.
    pub wc: Matrix,
    /// Classifier bias `1 × num_classes`.
    pub bc: Matrix,
}

/// A full Transformer sequence classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerClassifier {
    /// Hyper-parameters.
    pub config: TransformerConfig,
    /// Token embedding table `vocab × E`.
    pub token_embed: Matrix,
    /// Positional embedding table `max_len × E`.
    pub pos_embed: Matrix,
    /// The `M` encoder layers.
    pub layers: Vec<EncoderLayer>,
    /// Pooling and classification head.
    pub head: ClassifierHead,
}

impl TransformerClassifier {
    /// Creates a randomly initialized model.
    ///
    /// # Panics
    ///
    /// Panics if `num_heads` does not divide `embed_dim`.
    pub fn new(config: TransformerConfig, rng: &mut impl Rng) -> Self {
        let e = config.embed_dim;
        let dk = config.head_dim();
        let layers = (0..config.num_layers)
            .map(|_| EncoderLayer {
                attention: SelfAttention {
                    heads: (0..config.num_heads)
                        .map(|_| AttentionHead {
                            wq: init::xavier_uniform(e, dk, rng),
                            wk: init::xavier_uniform(e, dk, rng),
                            wv: init::xavier_uniform(e, dk, rng),
                        })
                        .collect(),
                    w0: init::xavier_uniform(config.num_heads * dk, e, rng),
                    b0: Matrix::zeros(1, e),
                },
                ln1: LayerNorm {
                    gamma: Matrix::full(1, e, 1.0),
                    beta: Matrix::zeros(1, e),
                },
                ffn: FeedForward {
                    w1: init::xavier_uniform(e, config.hidden_dim, rng),
                    b1: Matrix::zeros(1, config.hidden_dim),
                    w2: init::xavier_uniform(config.hidden_dim, e, rng),
                    b2: Matrix::zeros(1, e),
                },
                ln2: LayerNorm {
                    gamma: Matrix::full(1, e, 1.0),
                    beta: Matrix::zeros(1, e),
                },
            })
            .collect();
        TransformerClassifier {
            token_embed: init::uniform(config.vocab_size, e, 0.5, rng),
            pos_embed: init::uniform(config.max_len, e, 0.1, rng),
            head: ClassifierHead {
                wp: init::xavier_uniform(e, e, rng),
                bp: Matrix::zeros(1, e),
                wc: init::xavier_uniform(e, config.num_classes, rng),
                bc: Matrix::zeros(1, config.num_classes),
            },
            layers,
            config,
        }
    }

    // ------------------------------------------------------------------
    // Concrete forward pass
    // ------------------------------------------------------------------

    /// Embeds a token sequence: token embedding + positional encoding
    /// (`N × E`).
    ///
    /// # Panics
    ///
    /// Panics if the sequence is longer than `max_len` or a token id is out
    /// of range.
    pub fn embed(&self, tokens: &[usize]) -> Matrix {
        assert!(tokens.len() <= self.config.max_len, "sequence too long");
        let e = self.config.embed_dim;
        let mut x = Matrix::zeros(tokens.len(), e);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < self.config.vocab_size, "token id out of range");
            let row = deept_tensor::vec_add(self.token_embed.row(t), self.pos_embed.row(i));
            x.row_mut(i).copy_from_slice(&row);
        }
        x
    }

    /// Runs the encoder stack on an embedded sequence.
    pub fn encode(&self, x: &Matrix) -> Matrix {
        let mut x = x.clone();
        for layer in &self.layers {
            x = layer.forward(&x, self.config.layer_norm, self.config.head_dim());
        }
        x
    }

    /// Pools the first output embedding and classifies it (`1 × classes`).
    pub fn classify(&self, encoded: &Matrix) -> Matrix {
        let pooled = encoded.slice_rows(0, 1);
        let hidden = ops::tanh(
            &pooled
                .matmul(&self.head.wp)
                .add_row_broadcast(self.head.bp.row(0)),
        );
        hidden
            .matmul(&self.head.wc)
            .add_row_broadcast(self.head.bc.row(0))
    }

    /// Full forward pass: logits for a token sequence.
    pub fn logits(&self, tokens: &[usize]) -> Matrix {
        self.classify(&self.encode(&self.embed(tokens)))
    }

    /// Predicted class for a token sequence.
    pub fn predict(&self, tokens: &[usize]) -> usize {
        ops::argmax(self.logits(tokens).row(0))
    }

    // ------------------------------------------------------------------
    // Parameter plumbing
    // ------------------------------------------------------------------

    /// All trainable parameters, in a stable order.
    pub fn params(&self) -> Vec<&Matrix> {
        let mut p: Vec<&Matrix> = vec![&self.token_embed, &self.pos_embed];
        for l in &self.layers {
            l.collect_params(&mut p);
        }
        p.extend([&self.head.wp, &self.head.bp, &self.head.wc, &self.head.bc]);
        p
    }

    /// All trainable parameters, mutably, in the same order as
    /// [`TransformerClassifier::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p: Vec<&mut Matrix> = vec![&mut self.token_embed, &mut self.pos_embed];
        for l in &mut self.layers {
            l.collect_params_mut(&mut p);
        }
        p.extend([
            &mut self.head.wp,
            &mut self.head.bp,
            &mut self.head.wc,
            &mut self.head.bc,
        ]);
        p
    }

    // ------------------------------------------------------------------
    // Tape forward pass (training)
    // ------------------------------------------------------------------

    /// Like [`TransformerClassifier::logits_tape`] but starting from an
    /// already-embedded sequence (`N × E`). The embedding tables are *not*
    /// placed on the tape, so the returned parameter vars align with
    /// [`TransformerClassifier::params_without_embeddings_mut`]. Used by
    /// robust-training loops that perturb embeddings before the forward
    /// pass.
    pub fn logits_tape_from_embeddings(
        &self,
        tape: &mut Tape,
        embedded: &Matrix,
    ) -> (Var, Vec<Var>) {
        let mut pvars = Vec::new();
        let mut x = tape.leaf(embedded.clone());
        let dk = self.config.head_dim();
        for layer in &self.layers {
            x = layer.forward_tape(tape, x, self.config.layer_norm, dk, &mut pvars);
        }
        let wp = tape.leaf(self.head.wp.clone());
        let bp = tape.leaf(self.head.bp.clone());
        let wc = tape.leaf(self.head.wc.clone());
        let bc = tape.leaf(self.head.bc.clone());
        pvars.extend([wp, bp, wc, bc]);
        let pooled = tape.slice_rows(x, 0, 1);
        let h = tape.matmul(pooled, wp);
        let h = tape.add_row_broadcast(h, bp);
        let h = tape.tanh(h);
        let logits = tape.matmul(h, wc);
        let logits = tape.add_row_broadcast(logits, bc);
        (logits, pvars)
    }

    /// Mutable parameters excluding the embedding tables, aligned with
    /// [`TransformerClassifier::logits_tape_from_embeddings`].
    pub fn params_without_embeddings_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p: Vec<&mut Matrix> = Vec::new();
        for l in &mut self.layers {
            l.collect_params_mut(&mut p);
        }
        p.extend([
            &mut self.head.wp,
            &mut self.head.bp,
            &mut self.head.wc,
            &mut self.head.bc,
        ]);
        p
    }

    /// Builds the forward computation on a tape and returns
    /// `(logits_var, parameter_vars)` with the parameter vars aligned to
    /// [`TransformerClassifier::params`].
    pub fn logits_tape(&self, tape: &mut Tape, tokens: &[usize]) -> (Var, Vec<Var>) {
        let mut pvars = Vec::new();
        let tok = tape.leaf(self.token_embed.clone());
        let pos = tape.leaf(self.pos_embed.clone());
        pvars.push(tok);
        pvars.push(pos);

        let emb = tape.gather_rows(tok, tokens);
        let idx: Vec<usize> = (0..tokens.len()).collect();
        let pemb = tape.gather_rows(pos, &idx);
        let mut x = tape.add(emb, pemb);

        let dk = self.config.head_dim();
        for layer in &self.layers {
            x = layer.forward_tape(tape, x, self.config.layer_norm, dk, &mut pvars);
        }

        let wp = tape.leaf(self.head.wp.clone());
        let bp = tape.leaf(self.head.bp.clone());
        let wc = tape.leaf(self.head.wc.clone());
        let bc = tape.leaf(self.head.bc.clone());
        pvars.extend([wp, bp, wc, bc]);
        let pooled = tape.slice_rows(x, 0, 1);
        let h = tape.matmul(pooled, wp);
        let h = tape.add_row_broadcast(h, bp);
        let h = tape.tanh(h);
        let logits = tape.matmul(h, wc);
        let logits = tape.add_row_broadcast(logits, bc);
        (logits, pvars)
    }
}

impl EncoderLayer {
    /// Concrete forward pass of one layer.
    pub fn forward(&self, x: &Matrix, ln: LayerNormKind, head_dim: usize) -> Matrix {
        let z = self.attention.forward(x, head_dim);
        let x = apply_layer_norm(&x.add(&z), &self.ln1, ln);
        let h = ops::relu(&x.matmul(&self.ffn.w1).add_row_broadcast(self.ffn.b1.row(0)));
        let y = h.matmul(&self.ffn.w2).add_row_broadcast(self.ffn.b2.row(0));
        apply_layer_norm(&x.add(&y), &self.ln2, ln)
    }

    fn collect_params<'a>(&'a self, p: &mut Vec<&'a Matrix>) {
        for h in &self.attention.heads {
            p.extend([&h.wq, &h.wk, &h.wv]);
        }
        p.extend([&self.attention.w0, &self.attention.b0]);
        p.extend([&self.ln1.gamma, &self.ln1.beta]);
        p.extend([&self.ffn.w1, &self.ffn.b1, &self.ffn.w2, &self.ffn.b2]);
        p.extend([&self.ln2.gamma, &self.ln2.beta]);
    }

    fn collect_params_mut<'a>(&'a mut self, p: &mut Vec<&'a mut Matrix>) {
        for h in &mut self.attention.heads {
            p.extend([&mut h.wq, &mut h.wk, &mut h.wv]);
        }
        p.extend([&mut self.attention.w0, &mut self.attention.b0]);
        p.extend([&mut self.ln1.gamma, &mut self.ln1.beta]);
        p.extend([
            &mut self.ffn.w1,
            &mut self.ffn.b1,
            &mut self.ffn.w2,
            &mut self.ffn.b2,
        ]);
        p.extend([&mut self.ln2.gamma, &mut self.ln2.beta]);
    }

    fn forward_tape(
        &self,
        tape: &mut Tape,
        x: Var,
        ln: LayerNormKind,
        head_dim: usize,
        pvars: &mut Vec<Var>,
    ) -> Var {
        // Multi-head self-attention.
        let mut head_outputs = Vec::with_capacity(self.attention.heads.len());
        for h in &self.attention.heads {
            let wq = tape.leaf(h.wq.clone());
            let wk = tape.leaf(h.wk.clone());
            let wv = tape.leaf(h.wv.clone());
            pvars.extend([wq, wk, wv]);
            let q = tape.matmul(x, wq);
            let k = tape.matmul(x, wk);
            let v = tape.matmul(x, wv);
            let scores = tape.matmul_transpose_b(q, k);
            let scaled = tape.scale(scores, 1.0 / (head_dim as f64).sqrt());
            let attn = tape.softmax_rows(scaled);
            head_outputs.push(tape.matmul(attn, v));
        }
        let w0 = tape.leaf(self.attention.w0.clone());
        let b0 = tape.leaf(self.attention.b0.clone());
        pvars.extend([w0, b0]);
        let merged = tape.concat_cols(&head_outputs);
        let z = tape.matmul(merged, w0);
        let z = tape.add_row_broadcast(z, b0);

        let res1 = tape.add(x, z);
        let x = apply_layer_norm_tape(tape, res1, &self.ln1, ln, pvars);

        let w1 = tape.leaf(self.ffn.w1.clone());
        let b1 = tape.leaf(self.ffn.b1.clone());
        let w2 = tape.leaf(self.ffn.w2.clone());
        let b2 = tape.leaf(self.ffn.b2.clone());
        pvars.extend([w1, b1, w2, b2]);
        let h = tape.matmul(x, w1);
        let h = tape.add_row_broadcast(h, b1);
        let h = tape.relu(h);
        let y = tape.matmul(h, w2);
        let y = tape.add_row_broadcast(y, b2);

        let res2 = tape.add(x, y);
        apply_layer_norm_tape(tape, res2, &self.ln2, ln, pvars)
    }
}

impl SelfAttention {
    /// Concrete multi-head self-attention (Eq. 1).
    pub fn forward(&self, x: &Matrix, head_dim: usize) -> Matrix {
        let scale = 1.0 / (head_dim as f64).sqrt();
        let mut outputs = Vec::with_capacity(self.heads.len());
        for h in &self.heads {
            let q = x.matmul(&h.wq);
            let k = x.matmul(&h.wk);
            let v = x.matmul(&h.wv);
            let scores = q.matmul_transpose_b(&k).scale(scale);
            let attn = ops::softmax_rows(&scores);
            outputs.push(attn.matmul(&v));
        }
        let mut merged = outputs[0].clone();
        for o in &outputs[1..] {
            merged = merged.hstack(o);
        }
        merged.matmul(&self.w0).add_row_broadcast(self.b0.row(0))
    }
}

fn apply_layer_norm(x: &Matrix, ln: &LayerNorm, kind: LayerNormKind) -> Matrix {
    match kind {
        LayerNormKind::NoStd => ops::layer_norm_no_std(x, ln.gamma.row(0), ln.beta.row(0)),
        LayerNormKind::Std { epsilon } => {
            ops::layer_norm_std(x, ln.gamma.row(0), ln.beta.row(0), epsilon)
        }
    }
}

fn apply_layer_norm_tape(
    tape: &mut Tape,
    x: Var,
    ln: &LayerNorm,
    kind: LayerNormKind,
    pvars: &mut Vec<Var>,
) -> Var {
    let gamma = tape.leaf(ln.gamma.clone());
    let beta = tape.leaf(ln.beta.clone());
    pvars.extend([gamma, beta]);
    let centred = tape.sub_row_mean(x);
    let normed = match kind {
        LayerNormKind::NoStd => centred,
        LayerNormKind::Std { epsilon } => tape.normalize_row_std(centred, epsilon),
    };
    let scaled = tape.mul_row_broadcast(normed, gamma);
    tape.add_row_broadcast(scaled, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    pub(crate) fn tiny_config(ln: LayerNormKind) -> TransformerConfig {
        TransformerConfig {
            vocab_size: 11,
            max_len: 8,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 12,
            num_layers: 2,
            num_classes: 2,
            layer_norm: ln,
        }
    }

    #[test]
    fn forward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = TransformerClassifier::new(tiny_config(LayerNormKind::NoStd), &mut rng);
        let logits = model.logits(&[1, 2, 3, 4]);
        assert_eq!(logits.shape(), (1, 2));
        assert!(!logits.has_non_finite());
        assert!(model.predict(&[1, 2, 3]) < 2);
    }

    #[test]
    fn tape_forward_matches_concrete_forward() {
        for ln in [LayerNormKind::NoStd, LayerNormKind::Std { epsilon: 1e-5 }] {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let model = TransformerClassifier::new(tiny_config(ln), &mut rng);
            let tokens = [3usize, 7, 1, 0, 9];
            let concrete = model.logits(&tokens);
            let mut tape = Tape::new();
            let (logits, pvars) = model.logits_tape(&mut tape, &tokens);
            assert_eq!(pvars.len(), model.params().len());
            let taped = tape.value(logits);
            for (a, b) in concrete.as_slice().iter().zip(taped.as_slice()) {
                assert!(
                    (a - b).abs() < 1e-10,
                    "tape/concrete divergence: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn params_round_trip_order() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut model = TransformerClassifier::new(tiny_config(LayerNormKind::NoStd), &mut rng);
        let shapes: Vec<(usize, usize)> = model.params().iter().map(|m| m.shape()).collect();
        let shapes_mut: Vec<(usize, usize)> =
            model.params_mut().iter().map(|m| m.shape()).collect();
        assert_eq!(shapes, shapes_mut);
        // 2 embeddings + per layer (3·heads + 2 attn + 2 ln + 4 ffn + 2 ln) + 4 head
        let per_layer = 3 * 2 + 2 + 2 + 4 + 2;
        assert_eq!(shapes.len(), 2 + 2 * per_layer + 4);
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = TransformerClassifier::new(tiny_config(LayerNormKind::NoStd), &mut rng);
        let mut tape = Tape::new();
        let (logits, pvars) = model.logits_tape(&mut tape, &[1, 2, 3]);
        let loss = tape.cross_entropy_logits(logits, 0);
        tape.backward(loss);
        let mut nonzero = 0;
        for &v in &pvars {
            if tape.grad(v).max_abs() > 0.0 {
                nonzero += 1;
            }
        }
        // Everything except possibly unused embedding rows must receive
        // gradient; we require the vast majority to be non-zero.
        assert!(
            nonzero as f64 >= 0.9 * pvars.len() as f64,
            "only {nonzero}/{} params got gradient",
            pvars.len()
        );
    }

    #[test]
    fn tape_from_embeddings_matches_full_pipeline() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut model = TransformerClassifier::new(tiny_config(LayerNormKind::NoStd), &mut rng);
        let tokens = [2usize, 4, 6];
        let emb = model.embed(&tokens);
        let mut tape = Tape::new();
        let (logits, pvars) = model.logits_tape_from_embeddings(&mut tape, &emb);
        let concrete = model.logits(&tokens);
        for (a, b) in concrete
            .as_slice()
            .iter()
            .zip(tape.value(logits).as_slice())
        {
            assert!((a - b).abs() < 1e-10);
        }
        // Parameter alignment with the embedding-free mutable view.
        let shapes: Vec<(usize, usize)> = pvars.iter().map(|&v| tape.value(v).shape()).collect();
        let expected: Vec<(usize, usize)> = model
            .params_without_embeddings_mut()
            .iter()
            .map(|m| m.shape())
            .collect();
        assert_eq!(shapes, expected);
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = TransformerClassifier::new(tiny_config(LayerNormKind::NoStd), &mut rng);
        let json = serde_json::to_string(&model).expect("serialize");
        let back: TransformerClassifier = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(model, back);
    }

    #[test]
    #[should_panic(expected = "sequence too long")]
    fn embed_rejects_long_sequences() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = TransformerClassifier::new(tiny_config(LayerNormKind::NoStd), &mut rng);
        let tokens: Vec<usize> = vec![0; 9];
        let _ = model.embed(&tokens);
    }
}
