//! Model (de)serialization helpers: trained models are cached on disk as
//! JSON so the benchmark harness can reuse them across table binaries.

use std::fs;
use std::path::Path;

use serde::{de::DeserializeOwned, Serialize};

/// Errors from model persistence.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem failure.
    Fs(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Fs(e) => write!(f, "filesystem error: {e}"),
            IoError::Json(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Fs(e) => Some(e),
            IoError::Json(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Fs(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Saves any serializable model as JSON, creating parent directories.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or serialization failure.
pub fn save_json<T: Serialize>(model: &T, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string(model)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads a JSON-serialized model.
///
/// # Errors
///
/// Returns [`IoError`] if the file is missing or malformed.
pub fn load_json<T: DeserializeOwned>(path: impl AsRef<Path>) -> Result<T, IoError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

/// Loads a cached model if present; otherwise builds it with `make` and
/// saves it for next time.
///
/// # Errors
///
/// Returns [`IoError`] if saving the freshly built model fails.
pub fn load_or_build<T: Serialize + DeserializeOwned>(
    path: impl AsRef<Path>,
    make: impl FnOnce() -> T,
) -> Result<T, IoError> {
    let path = path.as_ref();
    if path.exists() {
        if let Ok(model) = load_json(path) {
            return Ok(model);
        }
    }
    let model = make();
    save_json(&model, path)?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Mlp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn round_trip_and_cache() {
        let dir = std::env::temp_dir().join(format!("deept-io-test-{}", std::process::id()));
        let path = dir.join("mlp.json");
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mlp = Mlp::new(&[3, 4, 2], &mut rng);
        save_json(&mlp, &path).expect("save");
        let back: Mlp = load_json(&path).expect("load");
        assert_eq!(mlp, back);
        // load_or_build must hit the cache, not rebuild.
        let cached: Mlp = load_or_build(&path, || panic!("should not rebuild")).expect("cache");
        assert_eq!(cached, mlp);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn load_missing_file_errors() {
        let r: Result<Mlp, _> = load_json("/definitely/not/here.json");
        assert!(r.is_err());
        assert!(r.unwrap_err().to_string().contains("filesystem"));
    }
}
