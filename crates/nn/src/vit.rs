//! A Vision Transformer for image classification (Appendix A.3): the image
//! is split into square patches, each patch is linearly embedded and given a
//! positional encoding, and the resulting token sequence runs through the
//! same encoder stack and classification head as the NLP model.

use deept_tensor::{ops, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::autodiff::{Tape, Var};
use crate::init;
use crate::transformer::{ClassifierHead, EncoderLayer, LayerNormKind, TransformerConfig};

/// Patch-embedding geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatchConfig {
    /// Image height in pixels.
    pub image_h: usize,
    /// Image width in pixels.
    pub image_w: usize,
    /// Side length of the square patches (must divide both dimensions).
    pub patch: usize,
}

impl PatchConfig {
    /// Number of patch tokens.
    ///
    /// # Panics
    ///
    /// Panics if the patch size does not divide the image dimensions.
    pub fn num_tokens(&self) -> usize {
        assert!(
            self.image_h.is_multiple_of(self.patch) && self.image_w.is_multiple_of(self.patch),
            "patch size must divide image dimensions"
        );
        (self.image_h / self.patch) * (self.image_w / self.patch)
    }

    /// Flattened patch dimension.
    pub fn patch_dim(&self) -> usize {
        self.patch * self.patch
    }

    /// Extracts the patch matrix (`tokens × patch_dim`) of an image given
    /// row-major pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != image_h * image_w`.
    pub fn patches(&self, pixels: &[f64]) -> Matrix {
        assert_eq!(
            pixels.len(),
            self.image_h * self.image_w,
            "pixel count mismatch"
        );
        let ph = self.image_h / self.patch;
        let pw = self.image_w / self.patch;
        let mut out = Matrix::zeros(ph * pw, self.patch_dim());
        for pr in 0..ph {
            for pc in 0..pw {
                let row = out.row_mut(pr * pw + pc);
                for dy in 0..self.patch {
                    for dx in 0..self.patch {
                        let y = pr * self.patch + dy;
                        let x = pc * self.patch + dx;
                        row[dy * self.patch + dx] = pixels[y * self.image_w + x];
                    }
                }
            }
        }
        out
    }
}

/// A Vision Transformer classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisionTransformer {
    /// Encoder hyper-parameters (`vocab_size` is unused).
    pub config: TransformerConfig,
    /// Patch geometry.
    pub patches: PatchConfig,
    /// Patch embedding `patch_dim × E`.
    pub patch_w: Matrix,
    /// Patch embedding bias `1 × E`.
    pub patch_b: Matrix,
    /// Positional embedding `tokens × E`.
    pub pos_embed: Matrix,
    /// Encoder layers.
    pub layers: Vec<EncoderLayer>,
    /// Pooling and classification head.
    pub head: ClassifierHead,
}

impl VisionTransformer {
    /// Creates a randomly initialized Vision Transformer.
    ///
    /// # Panics
    ///
    /// Panics if the patch size does not divide the image dimensions or the
    /// head count does not divide the embedding size.
    pub fn new(config: TransformerConfig, patches: PatchConfig, rng: &mut impl Rng) -> Self {
        let e = config.embed_dim;
        // Reuse the NLP constructor for the encoder stack and head.
        let proto = crate::transformer::TransformerClassifier::new(
            TransformerConfig {
                vocab_size: 1,
                max_len: patches.num_tokens(),
                ..config.clone()
            },
            rng,
        );
        VisionTransformer {
            patch_w: init::xavier_uniform(patches.patch_dim(), e, rng),
            patch_b: Matrix::zeros(1, e),
            pos_embed: init::uniform(patches.num_tokens(), e, 0.1, rng),
            layers: proto.layers,
            head: proto.head,
            config,
            patches,
        }
    }

    /// Embeds an image into its token sequence (`tokens × E`).
    pub fn embed(&self, pixels: &[f64]) -> Matrix {
        let p = self.patches.patches(pixels);
        p.matmul(&self.patch_w)
            .add_row_broadcast(self.patch_b.row(0))
            .add(&self.pos_embed)
    }

    /// Runs the encoder stack on embedded patches.
    pub fn encode(&self, x: &Matrix) -> Matrix {
        let mut x = x.clone();
        for layer in &self.layers {
            x = layer.forward(&x, self.config.layer_norm, self.config.head_dim());
        }
        x
    }

    /// Pools and classifies.
    pub fn classify(&self, encoded: &Matrix) -> Matrix {
        let pooled = encoded.slice_rows(0, 1);
        let hidden = ops::tanh(
            &pooled
                .matmul(&self.head.wp)
                .add_row_broadcast(self.head.bp.row(0)),
        );
        hidden
            .matmul(&self.head.wc)
            .add_row_broadcast(self.head.bc.row(0))
    }

    /// Logits for a raw image.
    pub fn logits(&self, pixels: &[f64]) -> Matrix {
        self.classify(&self.encode(&self.embed(pixels)))
    }

    /// Predicted class.
    pub fn predict(&self, pixels: &[f64]) -> usize {
        ops::argmax(self.logits(pixels).row(0))
    }

    /// Trainable parameters in a stable order.
    pub fn params(&self) -> Vec<&Matrix> {
        let mut p: Vec<&Matrix> = vec![&self.patch_w, &self.patch_b, &self.pos_embed];
        for l in &self.layers {
            let mut lp: Vec<&Matrix> = Vec::new();
            for h in &l.attention.heads {
                lp.extend([&h.wq, &h.wk, &h.wv]);
            }
            lp.extend([&l.attention.w0, &l.attention.b0]);
            lp.extend([&l.ln1.gamma, &l.ln1.beta]);
            lp.extend([&l.ffn.w1, &l.ffn.b1, &l.ffn.w2, &l.ffn.b2]);
            lp.extend([&l.ln2.gamma, &l.ln2.beta]);
            p.extend(lp);
        }
        p.extend([&self.head.wp, &self.head.bp, &self.head.wc, &self.head.bc]);
        p
    }

    /// Mutable parameters, same order as [`VisionTransformer::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p: Vec<&mut Matrix> =
            vec![&mut self.patch_w, &mut self.patch_b, &mut self.pos_embed];
        for l in &mut self.layers {
            for h in &mut l.attention.heads {
                p.extend([&mut h.wq, &mut h.wk, &mut h.wv]);
            }
            p.extend([&mut l.attention.w0, &mut l.attention.b0]);
            p.extend([&mut l.ln1.gamma, &mut l.ln1.beta]);
            p.extend([&mut l.ffn.w1, &mut l.ffn.b1, &mut l.ffn.w2, &mut l.ffn.b2]);
            p.extend([&mut l.ln2.gamma, &mut l.ln2.beta]);
        }
        p.extend([
            &mut self.head.wp,
            &mut self.head.bp,
            &mut self.head.wc,
            &mut self.head.bc,
        ]);
        p
    }

    /// Tape forward pass returning `(logits, parameter_vars)`.
    pub fn logits_tape(&self, tape: &mut Tape, pixels: &[f64]) -> (Var, Vec<Var>) {
        let mut pvars = Vec::new();
        let pw = tape.leaf(self.patch_w.clone());
        let pb = tape.leaf(self.patch_b.clone());
        let pos = tape.leaf(self.pos_embed.clone());
        pvars.extend([pw, pb, pos]);
        let patches = tape.leaf(self.patches.patches(pixels));
        let emb = tape.matmul(patches, pw);
        let emb = tape.add_row_broadcast(emb, pb);
        let mut x = tape.add(emb, pos);

        let dk = self.config.head_dim();
        for layer in &self.layers {
            x = layer_forward_tape(layer, tape, x, self.config.layer_norm, dk, &mut pvars);
        }

        let wp = tape.leaf(self.head.wp.clone());
        let bp = tape.leaf(self.head.bp.clone());
        let wc = tape.leaf(self.head.wc.clone());
        let bc = tape.leaf(self.head.bc.clone());
        pvars.extend([wp, bp, wc, bc]);
        let pooled = tape.slice_rows(x, 0, 1);
        let h = tape.matmul(pooled, wp);
        let h = tape.add_row_broadcast(h, bp);
        let h = tape.tanh(h);
        let logits = tape.matmul(h, wc);
        let logits = tape.add_row_broadcast(logits, bc);
        (logits, pvars)
    }
}

/// Mirrors `EncoderLayer::forward_tape`, which is crate-private to the
/// transformer module; re-implemented here on the public pieces.
fn layer_forward_tape(
    layer: &EncoderLayer,
    tape: &mut Tape,
    x: Var,
    ln: LayerNormKind,
    head_dim: usize,
    pvars: &mut Vec<Var>,
) -> Var {
    let mut head_outputs = Vec::with_capacity(layer.attention.heads.len());
    for h in &layer.attention.heads {
        let wq = tape.leaf(h.wq.clone());
        let wk = tape.leaf(h.wk.clone());
        let wv = tape.leaf(h.wv.clone());
        pvars.extend([wq, wk, wv]);
        let q = tape.matmul(x, wq);
        let k = tape.matmul(x, wk);
        let v = tape.matmul(x, wv);
        let scores = tape.matmul_transpose_b(q, k);
        let scaled = tape.scale(scores, 1.0 / (head_dim as f64).sqrt());
        let attn = tape.softmax_rows(scaled);
        head_outputs.push(tape.matmul(attn, v));
    }
    let w0 = tape.leaf(layer.attention.w0.clone());
    let b0 = tape.leaf(layer.attention.b0.clone());
    pvars.extend([w0, b0]);
    let merged = tape.concat_cols(&head_outputs);
    let z = tape.matmul(merged, w0);
    let z = tape.add_row_broadcast(z, b0);

    let res1 = tape.add(x, z);
    let x = ln_tape(tape, res1, &layer.ln1, ln, pvars);

    let w1 = tape.leaf(layer.ffn.w1.clone());
    let b1 = tape.leaf(layer.ffn.b1.clone());
    let w2 = tape.leaf(layer.ffn.w2.clone());
    let b2 = tape.leaf(layer.ffn.b2.clone());
    pvars.extend([w1, b1, w2, b2]);
    let h = tape.matmul(x, w1);
    let h = tape.add_row_broadcast(h, b1);
    let h = tape.relu(h);
    let y = tape.matmul(h, w2);
    let y = tape.add_row_broadcast(y, b2);

    let res2 = tape.add(x, y);
    ln_tape(tape, res2, &layer.ln2, ln, pvars)
}

fn ln_tape(
    tape: &mut Tape,
    x: Var,
    ln: &crate::transformer::LayerNorm,
    kind: LayerNormKind,
    pvars: &mut Vec<Var>,
) -> Var {
    let gamma = tape.leaf(ln.gamma.clone());
    let beta = tape.leaf(ln.beta.clone());
    pvars.extend([gamma, beta]);
    let centred = tape.sub_row_mean(x);
    let normed = match kind {
        LayerNormKind::NoStd => centred,
        LayerNormKind::Std { epsilon } => tape.normalize_row_std(centred, epsilon),
    };
    let scaled = tape.mul_row_broadcast(normed, gamma);
    tape.add_row_broadcast(scaled, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_vit() -> VisionTransformer {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        VisionTransformer::new(
            TransformerConfig {
                vocab_size: 0,
                max_len: 16,
                embed_dim: 8,
                num_heads: 2,
                hidden_dim: 16,
                num_layers: 1,
                num_classes: 10,
                layer_norm: LayerNormKind::NoStd,
            },
            PatchConfig {
                image_h: 8,
                image_w: 8,
                patch: 4,
            },
            &mut rng,
        )
    }

    #[test]
    fn patch_extraction_layout() {
        let cfg = PatchConfig {
            image_h: 4,
            image_w: 4,
            patch: 2,
        };
        assert_eq!(cfg.num_tokens(), 4);
        let pixels: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let p = cfg.patches(&pixels);
        // Top-left patch: pixels (0,0),(0,1),(1,0),(1,1) = 0,1,4,5.
        assert_eq!(p.row(0), &[0.0, 1.0, 4.0, 5.0]);
        // Bottom-right patch: 10,11,14,15.
        assert_eq!(p.row(3), &[10.0, 11.0, 14.0, 15.0]);
    }

    #[test]
    fn forward_shapes() {
        let vit = tiny_vit();
        let pixels = vec![0.5; 64];
        let logits = vit.logits(&pixels);
        assert_eq!(logits.shape(), (1, 10));
        assert!(!logits.has_non_finite());
    }

    #[test]
    fn tape_matches_concrete() {
        let vit = tiny_vit();
        let pixels: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let concrete = vit.logits(&pixels);
        let mut tape = Tape::new();
        let (y, pvars) = vit.logits_tape(&mut tape, &pixels);
        assert_eq!(pvars.len(), vit.params().len());
        for (a, b) in concrete.as_slice().iter().zip(tape.value(y).as_slice()) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
