//! A plain feed-forward ReLU network, used by the Appendix A.2 experiment
//! (the GeoCert comparison on binary MNIST-like data).

use deept_tensor::{ops, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::autodiff::{Tape, Var};
use crate::init;

/// A fully-connected ReLU classifier: linear layers with ReLU between them
/// and raw logits at the output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    /// Weight matrices, layer `i` mapping `dims[i] → dims[i+1]`.
    pub weights: Vec<Matrix>,
    /// Biases, `1 × dims[i+1]`.
    pub biases: Vec<Matrix>,
}

impl Mlp {
    /// Creates a randomly initialized MLP with the given layer sizes
    /// (`dims[0]` inputs, `dims.last()` outputs).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(dims: &[usize], rng: &mut impl Rng) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let weights = dims
            .windows(2)
            .map(|w| init::xavier_uniform(w[0], w[1], rng))
            .collect();
        let biases = dims[1..].iter().map(|&d| Matrix::zeros(1, d)).collect();
        Mlp { weights, biases }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.weights[0].rows()
    }

    /// Output (class) dimension.
    pub fn output_dim(&self) -> usize {
        self.weights.last().expect("non-empty").cols()
    }

    /// Number of layers (linear maps).
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Logits for an input row vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    pub fn logits(&self, x: &[f64]) -> Matrix {
        let mut h = Matrix::row_vector(x.to_vec());
        for (i, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            h = h.matmul(w).add_row_broadcast(b.row(0));
            if i + 1 < self.weights.len() {
                h = ops::relu(&h);
            }
        }
        h
    }

    /// Predicted class.
    pub fn predict(&self, x: &[f64]) -> usize {
        ops::argmax(self.logits(x).row(0))
    }

    /// Trainable parameters in a stable order (`w0, b0, w1, b1, …`).
    pub fn params(&self) -> Vec<&Matrix> {
        self.weights
            .iter()
            .zip(&self.biases)
            .flat_map(|(w, b)| [w, b])
            .collect()
    }

    /// Mutable parameters, same order as [`Mlp::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Matrix> {
        self.weights
            .iter_mut()
            .zip(self.biases.iter_mut())
            .flat_map(|(w, b)| [w, b])
            .collect()
    }

    /// Tape forward pass returning `(logits, parameter_vars)`.
    pub fn logits_tape(&self, tape: &mut Tape, x: &[f64]) -> (Var, Vec<Var>) {
        let mut pvars = Vec::new();
        let mut h = tape.leaf(Matrix::row_vector(x.to_vec()));
        let n = self.weights.len();
        for (i, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let wv = tape.leaf(w.clone());
            let bv = tape.leaf(b.clone());
            pvars.extend([wv, bv]);
            h = tape.matmul(h, wv);
            h = tape.add_row_broadcast(h, bv);
            if i + 1 < n {
                h = tape.relu(h);
            }
        }
        (h, pvars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shapes_and_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mlp = Mlp::new(&[4, 8, 3], &mut rng);
        assert_eq!(mlp.input_dim(), 4);
        assert_eq!(mlp.output_dim(), 3);
        assert_eq!(mlp.num_layers(), 2);
        let y = mlp.logits(&[0.1, -0.2, 0.3, 0.4]);
        assert_eq!(y.shape(), (1, 3));
        assert!(mlp.predict(&[0.0; 4]) < 3);
    }

    #[test]
    fn tape_matches_concrete() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mlp = Mlp::new(&[5, 7, 7, 2], &mut rng);
        let x = [0.3, -0.1, 0.8, 0.0, -0.9];
        let mut tape = Tape::new();
        let (y, pvars) = mlp.logits_tape(&mut tape, &x);
        assert_eq!(pvars.len(), mlp.params().len());
        let concrete = mlp.logits(&x);
        for (a, b) in concrete.as_slice().iter().zip(tape.value(y).as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mlp = Mlp::new(&[3, 4, 2], &mut rng);
        let json = serde_json::to_string(&mlp).expect("serialize");
        let back: Mlp = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(mlp, back);
    }
}
