//! A small reverse-mode automatic-differentiation tape over [`Matrix`]
//! values.
//!
//! The paper trains its Transformer networks from scratch; this module is
//! the training substrate that makes that possible without an external ML
//! framework. It covers exactly the operation set a classification
//! Transformer needs (matrix products, row broadcasts, softmax, layer
//! normalization, embedding gathers, head slicing and cross-entropy loss).
//!
//! # Example
//!
//! ```
//! use deept_nn::autodiff::Tape;
//! use deept_tensor::Matrix;
//!
//! let mut t = Tape::new();
//! let x = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let w = t.leaf(Matrix::from_rows(&[&[3.0], &[4.0]]));
//! let y = t.matmul(x, w); // y = 1·3 + 2·4 = 11
//! t.backward(y);
//! assert_eq!(t.grad(w).as_slice(), &[1.0, 2.0]); // dy/dw = x
//! ```

use deept_tensor::{ops, Matrix};

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Scale(Var, f64),
    Hadamard(Var, Var),
    Matmul(Var, Var),
    MatmulTransposeB(Var, Var),
    Relu(Var),
    Tanh(Var),
    SoftmaxRows(Var),
    AddRowBroadcast(Var, Var),
    MulRowBroadcast(Var, Var),
    SubRowMean(Var),
    NormalizeRowStd(Var, f64),
    GatherRows(Var, Vec<usize>),
    SliceCols(Var, usize, usize),
    SliceRows(Var, usize, usize),
    ConcatCols(Vec<Var>),
    CrossEntropyLogits(Var, usize),
}

#[derive(Debug, Clone)]
struct Node {
    value: Matrix,
    grad: Matrix,
    op: Op,
}

/// A gradient tape: records every operation and replays them in reverse for
/// back-propagation.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records an input (leaf) value. Gradients accumulate into leaves during
    /// [`Tape::backward`].
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The gradient of the last [`Tape::backward`] target with respect to
    /// `v`.
    pub fn grad(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].grad
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.nodes.push(Node { value, grad, op });
        Var(self.nodes.len() - 1)
    }

    fn val(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    // ------------------------------------------------------------------
    // Forward operations
    // ------------------------------------------------------------------

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a).add(self.val(b));
        self.push(v, Op::Add(a, b))
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a).sub(self.val(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let v = self.val(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a).hadamard(self.val(b));
        self.push(v, Op::Hadamard(a, b))
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a).matmul(self.val(b));
        self.push(v, Op::Matmul(a, b))
    }

    /// Matrix product `a · bᵀ` (the attention score pattern).
    pub fn matmul_transpose_b(&mut self, a: Var, b: Var) -> Var {
        let v = self.val(a).matmul_transpose_b(self.val(b));
        self.push(v, Op::MatmulTransposeB(a, b))
    }

    /// Element-wise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = ops::relu(self.val(a));
        self.push(v, Op::Relu(a))
    }

    /// Element-wise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = ops::tanh(self.val(a));
        self.push(v, Op::Tanh(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = ops::softmax_rows(self.val(a));
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Adds a `1 × C` bias row to every row of `x`.
    pub fn add_row_broadcast(&mut self, x: Var, bias: Var) -> Var {
        let v = self.val(x).add_row_broadcast(self.val(bias).row(0));
        self.push(v, Op::AddRowBroadcast(x, bias))
    }

    /// Multiplies every row of `x` element-wise by a `1 × C` weight row.
    pub fn mul_row_broadcast(&mut self, x: Var, w: Var) -> Var {
        let v = self.val(x).mul_row_broadcast(self.val(w).row(0));
        self.push(v, Op::MulRowBroadcast(x, w))
    }

    /// Subtracts from every row its mean (the paper's no-std layer norm).
    pub fn sub_row_mean(&mut self, x: Var) -> Var {
        let m = self.val(x);
        let means = m.row_means();
        let mut v = m.clone();
        for (r, &mu) in means.iter().enumerate() {
            for e in v.row_mut(r) {
                *e -= mu;
            }
        }
        self.push(v, Op::SubRowMean(x))
    }

    /// Divides every row by `sqrt(mean(row²) + eps)`. Applied after
    /// [`Tape::sub_row_mean`] this is the standard layer normalization.
    pub fn normalize_row_std(&mut self, x: Var, eps: f64) -> Var {
        let m = self.val(x);
        let mut v = m.clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let ms = row.iter().map(|a| a * a).sum::<f64>() / row.len() as f64;
            let s = (ms + eps).sqrt();
            for e in row {
                *e /= s;
            }
        }
        self.push(v, Op::NormalizeRowStd(x, eps))
    }

    /// Gathers rows of `table` by index (embedding lookup).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn gather_rows(&mut self, table: Var, idx: &[usize]) -> Var {
        let t = self.val(table);
        let mut v = Matrix::zeros(idx.len(), t.cols());
        for (r, &i) in idx.iter().enumerate() {
            v.row_mut(r).copy_from_slice(t.row(i));
        }
        self.push(v, Op::GatherRows(table, idx.to_vec()))
    }

    /// Column slice `[c0, c1)` (head split).
    pub fn slice_cols(&mut self, x: Var, c0: usize, c1: usize) -> Var {
        let v = self.val(x).slice_cols(c0, c1);
        self.push(v, Op::SliceCols(x, c0, c1))
    }

    /// Row slice `[r0, r1)` (pooling).
    pub fn slice_rows(&mut self, x: Var, r0: usize, r1: usize) -> Var {
        let v = self.val(x).slice_rows(r0, r1);
        self.push(v, Op::SliceRows(x, r0, r1))
    }

    /// Horizontal concatenation (head merge).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn concat_cols(&mut self, xs: &[Var]) -> Var {
        assert!(!xs.is_empty(), "concat_cols of no vars");
        let mut v = self.val(xs[0]).clone();
        for &x in &xs[1..] {
            v = v.hstack(self.val(x));
        }
        self.push(v, Op::ConcatCols(xs.to_vec()))
    }

    /// Cross-entropy of a `1 × C` logits row against `label`, as a `1 × 1`
    /// loss.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not a single row or `label` is out of range.
    pub fn cross_entropy_logits(&mut self, logits: Var, label: usize) -> Var {
        let z = self.val(logits);
        assert_eq!(z.rows(), 1, "cross_entropy_logits expects a 1×C row");
        assert!(label < z.cols(), "label out of range");
        let max = z.row(0).iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
        let lse = max + z.row(0).iter().map(|&x| (x - max).exp()).sum::<f64>().ln();
        let loss = lse - z.at(0, label);
        self.push(
            Matrix::from_rows(&[&[loss]]),
            Op::CrossEntropyLogits(logits, label),
        )
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Back-propagates from `target` (which must be `1 × 1`), filling the
    /// gradients of every node reachable from it.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a scalar node.
    pub fn backward(&mut self, target: Var) {
        assert_eq!(
            self.nodes[target.0].value.shape(),
            (1, 1),
            "backward target must be scalar"
        );
        for n in &mut self.nodes {
            n.grad = Matrix::zeros(n.value.rows(), n.value.cols());
        }
        self.nodes[target.0].grad = Matrix::from_rows(&[&[1.0]]);
        for i in (0..=target.0).rev() {
            let g = self.nodes[i].grad.clone();
            if g.max_abs() == 0.0 {
                continue;
            }
            match self.nodes[i].op.clone() {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    self.nodes[a.0].grad.add_assign(&g);
                    self.nodes[b.0].grad.add_assign(&g);
                }
                Op::Sub(a, b) => {
                    self.nodes[a.0].grad.add_assign(&g);
                    self.nodes[b.0].grad.add_scaled_assign(&g, -1.0);
                }
                Op::Scale(a, s) => {
                    self.nodes[a.0].grad.add_scaled_assign(&g, s);
                }
                Op::Hadamard(a, b) => {
                    let da = g.hadamard(self.val(b));
                    let db = g.hadamard(self.val(a));
                    self.nodes[a.0].grad.add_assign(&da);
                    self.nodes[b.0].grad.add_assign(&db);
                }
                Op::Matmul(a, b) => {
                    let da = g.matmul_transpose_b(self.val(b));
                    let db = self.val(a).transpose_a_matmul(&g);
                    self.nodes[a.0].grad.add_assign(&da);
                    self.nodes[b.0].grad.add_assign(&db);
                }
                Op::MatmulTransposeB(a, b) => {
                    // y = a bᵀ: da = g b, db = gᵀ a.
                    let da = g.matmul(self.val(b));
                    let db = g.transpose_a_matmul(self.val(a));
                    self.nodes[a.0].grad.add_assign(&da);
                    self.nodes[b.0].grad.add_assign(&db);
                }
                Op::Relu(a) => {
                    let mask = self.val(a).map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                    self.nodes[a.0].grad.add_assign(&g.hadamard(&mask));
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let d = y.map(|t| 1.0 - t * t);
                    self.nodes[a.0].grad.add_assign(&g.hadamard(&d));
                }
                Op::SoftmaxRows(a) => {
                    let y = self.nodes[i].value.clone();
                    let mut da = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f64 = g.row(r).iter().zip(y.row(r)).map(|(a, b)| a * b).sum();
                        for c in 0..y.cols() {
                            da.set(r, c, y.at(r, c) * (g.at(r, c) - dot));
                        }
                    }
                    self.nodes[a.0].grad.add_assign(&da);
                }
                Op::AddRowBroadcast(x, bias) => {
                    self.nodes[x.0].grad.add_assign(&g);
                    let sums = g.col_sums();
                    let db = Matrix::row_vector(sums);
                    self.nodes[bias.0].grad.add_assign(&db);
                }
                Op::MulRowBroadcast(x, w) => {
                    let wv = self.val(w).row(0).to_vec();
                    let dx = g.mul_row_broadcast(&wv);
                    let dw = Matrix::row_vector(g.hadamard(self.val(x)).col_sums());
                    self.nodes[x.0].grad.add_assign(&dx);
                    self.nodes[w.0].grad.add_assign(&dw);
                }
                Op::SubRowMean(x) => {
                    // Jacobian (I − J/E) is symmetric.
                    let mut dx = g.clone();
                    let means = dx.row_means();
                    for (r, &mu) in means.iter().enumerate() {
                        for e in dx.row_mut(r) {
                            *e -= mu;
                        }
                    }
                    self.nodes[x.0].grad.add_assign(&dx);
                }
                Op::NormalizeRowStd(x, eps) => {
                    let xm = self.val(x).clone();
                    let mut dx = Matrix::zeros(xm.rows(), xm.cols());
                    for r in 0..xm.rows() {
                        let row = xm.row(r);
                        let e = row.len() as f64;
                        let ms = row.iter().map(|a| a * a).sum::<f64>() / e;
                        let s = (ms + eps).sqrt();
                        let gx: f64 = g.row(r).iter().zip(row).map(|(a, b)| a * b).sum();
                        for (c, &rc) in row.iter().enumerate() {
                            let v = g.at(r, c) / s - rc * gx / (e * s * s * s);
                            dx.set(r, c, v);
                        }
                    }
                    self.nodes[x.0].grad.add_assign(&dx);
                }
                Op::GatherRows(table, idx) => {
                    for (r, &src) in idx.iter().enumerate() {
                        let grow = g.row(r).to_vec();
                        let trow = self.nodes[table.0].grad.row_mut(src);
                        for (t, &x) in trow.iter_mut().zip(&grow) {
                            *t += x;
                        }
                    }
                }
                Op::SliceCols(x, c0, _c1) => {
                    for r in 0..g.rows() {
                        let grow = g.row(r).to_vec();
                        let xrow = self.nodes[x.0].grad.row_mut(r);
                        for (c, &v) in grow.iter().enumerate() {
                            xrow[c0 + c] += v;
                        }
                    }
                }
                Op::SliceRows(x, r0, _r1) => {
                    for r in 0..g.rows() {
                        let grow = g.row(r).to_vec();
                        let xrow = self.nodes[x.0].grad.row_mut(r0 + r);
                        for (t, &v) in xrow.iter_mut().zip(&grow) {
                            *t += v;
                        }
                    }
                }
                Op::ConcatCols(xs) => {
                    let mut c0 = 0;
                    for x in xs {
                        let w = self.nodes[x.0].value.cols();
                        let part = g.slice_cols(c0, c0 + w);
                        self.nodes[x.0].grad.add_assign(&part);
                        c0 += w;
                    }
                }
                Op::CrossEntropyLogits(logits, label) => {
                    let mut p = self.val(logits).clone();
                    deept_tensor::ops::softmax_in_place(p.row_mut(0));
                    *p.at_mut(0, label) -= 1.0;
                    self.nodes[logits.0].grad.add_scaled_assign(&p, g.at(0, 0));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of `d loss / d input` for a scalar-producing
    /// computation.
    fn check_grads(build: impl Fn(&mut Tape, Var) -> Var, input: Matrix) {
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x).clone();
        let h = 1e-6;
        for r in 0..input.rows() {
            for c in 0..input.cols() {
                let eval = |delta: f64| -> f64 {
                    let mut m = input.clone();
                    *m.at_mut(r, c) += delta;
                    let mut t = Tape::new();
                    let v = t.leaf(m);
                    let l = build(&mut t, v);
                    t.value(l).at(0, 0)
                };
                let num = (eval(h) - eval(-h)) / (2.0 * h);
                let ana = analytic.at(r, c);
                assert!(
                    (num - ana).abs() < 1e-4 * (1.0 + num.abs()),
                    "grad mismatch at ({r},{c}): numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    fn sum_all(t: &mut Tape, x: Var) -> Var {
        // Reduce to scalar via matmuls with ones.
        let (r, c) = t.value(x).shape();
        let ones_r = t.leaf(Matrix::full(1, r, 1.0));
        let ones_c = t.leaf(Matrix::full(c, 1, 1.0));
        let rowsum = t.matmul(ones_r, x);
        t.matmul(rowsum, ones_c)
    }

    #[test]
    fn grad_matmul_chain() {
        let w = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.3], &[0.1, 0.9]]);
        check_grads(
            move |t, x| {
                let wv = t.leaf(w.clone());
                let y = t.matmul(x, wv);
                sum_all(t, y)
            },
            Matrix::from_rows(&[&[1.0, 2.0, -1.0], &[0.5, 0.0, 3.0]]),
        );
    }

    #[test]
    fn grad_matmul_transpose_b() {
        let b = Matrix::from_rows(&[&[0.5, -1.0, 0.2], &[2.0, 0.3, -0.7]]);
        check_grads(
            move |t, x| {
                let bv = t.leaf(b.clone());
                let y = t.matmul_transpose_b(x, bv);
                sum_all(t, y)
            },
            Matrix::from_rows(&[&[1.0, 2.0, -1.0], &[0.5, 0.0, 3.0]]),
        );
    }

    #[test]
    fn grad_softmax_attention_block() {
        check_grads(
            |t, x| {
                let s = t.softmax_rows(x);
                let y = t.matmul_transpose_b(s, x);
                sum_all(t, y)
            },
            Matrix::from_rows(&[&[0.1, -0.4, 0.8], &[1.2, 0.0, -0.6], &[0.3, 0.3, 0.3]]),
        );
    }

    #[test]
    fn grad_elementwise_ops() {
        check_grads(
            |t, x| {
                let r = t.relu(x);
                let th = t.tanh(r);
                let sc = t.scale(th, 1.7);
                sum_all(t, sc)
            },
            Matrix::from_rows(&[&[0.5, -0.8], &[1.5, 0.2]]),
        );
    }

    #[test]
    fn grad_layer_norm_ops() {
        check_grads(
            |t, x| {
                let c = t.sub_row_mean(x);
                let n = t.normalize_row_std(c, 1e-5);
                sum_all(t, n)
            },
            Matrix::from_rows(&[&[0.5, -0.8, 0.1], &[1.5, 0.2, -2.0]]),
        );
        // Weight/bias broadcast path.
        check_grads(
            |t, x| {
                let gamma = t.leaf(Matrix::from_rows(&[&[1.1, 0.9, -0.5]]));
                let beta = t.leaf(Matrix::from_rows(&[&[0.1, -0.2, 0.3]]));
                let c = t.sub_row_mean(x);
                let s = t.mul_row_broadcast(c, gamma);
                let y = t.add_row_broadcast(s, beta);
                sum_all(t, y)
            },
            Matrix::from_rows(&[&[0.5, -0.8, 0.1], &[1.5, 0.2, -2.0]]),
        );
    }

    #[test]
    fn grad_broadcast_weights_and_bias() {
        // Gradient w.r.t. the broadcast parameters themselves.
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        check_grads(
            move |t, w| {
                let xv = t.leaf(x.clone());
                let y = t.mul_row_broadcast(xv, w);
                sum_all(t, y)
            },
            Matrix::from_rows(&[&[0.5, -1.5]]),
        );
    }

    #[test]
    fn grad_gather_and_slice() {
        check_grads(
            |t, table| {
                let g = t.gather_rows(table, &[2, 0, 2]);
                let s = t.slice_cols(g, 1, 3);
                let r = t.slice_rows(s, 0, 2);
                sum_all(t, r)
            },
            Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]),
        );
    }

    #[test]
    fn grad_concat_cols() {
        check_grads(
            |t, x| {
                let a = t.slice_cols(x, 0, 1);
                let b = t.slice_cols(x, 1, 3);
                let c = t.concat_cols(&[b, a]);
                let th = t.tanh(c);
                sum_all(t, th)
            },
            Matrix::from_rows(&[&[0.3, -0.2, 0.9]]),
        );
    }

    #[test]
    fn grad_cross_entropy() {
        check_grads(
            |t, x| t.cross_entropy_logits(x, 1),
            Matrix::from_rows(&[&[0.2, -0.7, 1.3]]),
        );
    }

    #[test]
    fn cross_entropy_value_matches_definition() {
        let mut t = Tape::new();
        let z = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
        let l = t.cross_entropy_logits(z, 0);
        let p0 = 1.0f64.exp() / (1.0f64.exp() + 2.0f64.exp());
        assert!((t.value(l).at(0, 0) + p0.ln()).abs() < 1e-12);
    }

    #[test]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2));
        let y = t.relu(x);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t2 = Tape::new();
            let x2 = t2.leaf(Matrix::zeros(2, 2));
            let y2 = t2.relu(x2);
            t2.backward(y2);
        }));
        assert!(result.is_err());
        let _ = y;
        let _ = t;
    }
}
