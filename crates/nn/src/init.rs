//! Weight initialization helpers.

use deept_tensor::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform initialization: entries drawn from
/// `U(−√(6/(fan_in + fan_out)), +√(6/(fan_in + fan_out)))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let bound = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..bound))
}

/// Small-scale normal-ish initialization for embeddings: `U(−s, s)`.
pub fn uniform(rows: usize, cols: usize, scale: f64, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn xavier_within_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = xavier_uniform(10, 20, &mut rng);
        let bound = (6.0f64 / 30.0).sqrt();
        assert!(m.max_abs() <= bound);
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn uniform_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = uniform(5, 5, 0.1, &mut rng);
        assert!(m.max_abs() <= 0.1);
    }
}
