//! Versioned model checkpoints with content fingerprints.
//!
//! A checkpoint is a JSON envelope around a serialized model:
//!
//! ```json
//! {"format":"deept-checkpoint-v1","fingerprint":"91ab…","model":{…}}
//! ```
//!
//! The fingerprint is an FNV-1a 64-bit hash of the model's canonical JSON
//! encoding. Because `serde_json` is configured with exact float
//! round-tripping, serialize → deserialize → serialize is byte-identical,
//! so the fingerprint is stable across save/load cycles and can serve as a
//! cache key: two models share a fingerprint exactly when their weights and
//! configuration are bitwise equal.
//!
//! [`load`] re-derives the fingerprint from the deserialized model and
//! rejects checkpoints whose recorded fingerprint disagrees, catching both
//! file corruption and hand-edited weights.

use std::fs;
use std::path::Path;

use serde::{de::DeserializeOwned, Deserialize, Serialize};

/// Format tag written into every checkpoint envelope.
pub const FORMAT: &str = "deept-checkpoint-v1";

/// A model loaded from a checkpoint, together with its verified
/// content fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint<T> {
    /// The deserialized model.
    pub model: T,
    /// Hex FNV-1a 64-bit hash of the model's canonical JSON.
    pub fingerprint: String,
}

#[derive(Serialize, Deserialize)]
struct Envelope<T> {
    format: String,
    fingerprint: String,
    model: T,
}

/// Errors from checkpoint persistence.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Fs(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// The file is valid JSON but not a checkpoint of a known version.
    BadFormat {
        /// The format tag found in the file.
        found: String,
    },
    /// The recorded fingerprint disagrees with the model content.
    FingerprintMismatch {
        /// Fingerprint recorded in the envelope.
        recorded: String,
        /// Fingerprint recomputed from the deserialized model.
        actual: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Fs(e) => write!(f, "filesystem error: {e}"),
            CheckpointError::Json(e) => write!(f, "serialization error: {e}"),
            CheckpointError::BadFormat { found } => {
                write!(f, "not a {FORMAT} checkpoint (format tag {found:?})")
            }
            CheckpointError::FingerprintMismatch { recorded, actual } => write!(
                f,
                "checkpoint fingerprint mismatch: recorded {recorded}, content hashes to {actual}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Fs(e) => Some(e),
            CheckpointError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Fs(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Json(e)
    }
}

/// FNV-1a 64-bit hash. Stable, dependency-free, and fast enough for
/// fingerprinting model JSON (a few MB at most).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content fingerprint of a model: hex FNV-1a 64 of its canonical JSON.
///
/// # Errors
///
/// Returns [`CheckpointError::Json`] if the model fails to serialize.
pub fn fingerprint<T: Serialize>(model: &T) -> Result<String, CheckpointError> {
    let canonical = serde_json::to_string(model)?;
    Ok(format!("{:016x}", fnv1a_64(canonical.as_bytes())))
}

/// Saves `model` as a fingerprinted checkpoint, creating parent
/// directories. Returns the fingerprint.
///
/// # Errors
///
/// Returns [`CheckpointError`] on filesystem or serialization failure.
pub fn save<T: Serialize>(model: &T, path: impl AsRef<Path>) -> Result<String, CheckpointError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let fingerprint = fingerprint(model)?;
    let envelope = Envelope {
        format: FORMAT.to_string(),
        fingerprint: fingerprint.clone(),
        model,
    };
    fs::write(path, serde_json::to_string(&envelope)?)?;
    Ok(fingerprint)
}

/// Loads a checkpoint, verifying the format tag and that the recorded
/// fingerprint matches the deserialized content.
///
/// # Errors
///
/// Returns [`CheckpointError`] if the file is missing or malformed, is not
/// a [`FORMAT`] checkpoint, or fails fingerprint verification.
pub fn load<T: Serialize + DeserializeOwned>(
    path: impl AsRef<Path>,
) -> Result<Checkpoint<T>, CheckpointError> {
    let json = fs::read_to_string(path)?;
    let envelope: Envelope<T> = serde_json::from_str(&json)?;
    if envelope.format != FORMAT {
        return Err(CheckpointError::BadFormat {
            found: envelope.format,
        });
    }
    let actual = fingerprint(&envelope.model)?;
    if actual != envelope.fingerprint {
        return Err(CheckpointError::FingerprintMismatch {
            recorded: envelope.fingerprint,
            actual,
        });
    }
    Ok(Checkpoint {
        model: envelope.model,
        fingerprint: actual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_model(seed: u64) -> TransformerClassifier {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        TransformerClassifier::new(
            TransformerConfig {
                vocab_size: 8,
                max_len: 4,
                embed_dim: 8,
                num_heads: 2,
                hidden_dim: 8,
                num_layers: 1,
                num_classes: 2,
                layer_norm: LayerNormKind::NoStd,
            },
            &mut rng,
        )
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("deept-ckpt-{tag}-{}", std::process::id()))
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn round_trip_is_byte_identical_and_fingerprint_stable() {
        let dir = temp_dir("roundtrip");
        let model = tiny_model(0);
        let p1 = dir.join("a.json");
        let p2 = dir.join("b.json");
        let fp1 = save(&model, &p1).expect("save");
        let loaded = load::<TransformerClassifier>(&p1).expect("load");
        assert_eq!(loaded.fingerprint, fp1);
        assert_eq!(loaded.model, model);
        // Re-saving the loaded model reproduces the file byte for byte.
        let fp2 = save(&loaded.model, &p2).expect("re-save");
        assert_eq!(fp1, fp2);
        assert_eq!(
            std::fs::read(&p1).unwrap(),
            std::fs::read(&p2).unwrap(),
            "checkpoint round-trip must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn distinct_models_get_distinct_fingerprints() {
        let a = fingerprint(&tiny_model(0)).unwrap();
        let b = fingerprint(&tiny_model(1)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn tampered_weights_are_rejected() {
        let dir = temp_dir("tamper");
        let path = dir.join("m.json");
        save(&tiny_model(0), &path).expect("save");
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip a digit inside the model payload without breaking JSON.
        let tampered = text.replacen("\"num_heads\":2", "\"num_heads\":1", 1);
        assert_ne!(text, tampered, "test setup: expected to find num_heads");
        std::fs::write(&path, tampered).unwrap();
        match load::<TransformerClassifier>(&path) {
            Err(CheckpointError::FingerprintMismatch { .. }) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn wrong_format_tag_is_rejected() {
        let dir = temp_dir("format");
        let path = dir.join("m.json");
        save(&tiny_model(0), &path).expect("save");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen(FORMAT, "deept-checkpoint-v0", 1)).unwrap();
        match load::<TransformerClassifier>(&path) {
            Err(CheckpointError::BadFormat { found }) => {
                assert_eq!(found, "deept-checkpoint-v0");
            }
            other => panic!("expected bad format, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_file_errors() {
        let r = load::<TransformerClassifier>("/definitely/not/here.json");
        assert!(matches!(r, Err(CheckpointError::Fs(_))));
    }

    #[test]
    fn errors_display() {
        let e = CheckpointError::BadFormat { found: "x".into() };
        assert!(e.to_string().contains(FORMAT));
        let e = CheckpointError::FingerprintMismatch {
            recorded: "aa".into(),
            actual: "bb".into(),
        };
        assert!(e.to_string().contains("mismatch"));
    }
}
