//! Neural networks and training for the DeepT-rs reproduction.
//!
//! The paper certifies *trained* encoder Transformers; this crate provides
//! everything needed to produce them from scratch in pure Rust:
//!
//! * [`autodiff`] — a reverse-mode gradient tape over matrices;
//! * [`transformer`] — the encoder Transformer for sequence classification
//!   (§3.1 of the paper), with both layer-normalization flavours;
//! * [`vit`] — the Vision Transformer of Appendix A.3;
//! * [`mlp`] — the feed-forward ReLU network of Appendix A.2;
//! * [`train`] — Adam and a mini-batch training loop over the common
//!   [`train::Classifier`] abstraction;
//! * [`io`] — JSON model persistence used by the benchmark harness;
//! * [`checkpoint`] — versioned, fingerprinted checkpoints used by the
//!   serving layer's model registry and result cache.
//!
//! # Example
//!
//! ```
//! use deept_nn::mlp::Mlp;
//! use deept_nn::train::{accuracy, train, TrainConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut model = Mlp::new(&[2, 8, 2], &mut rng);
//! let data = vec![(vec![1.0, 1.0], 1), (vec![-1.0, -1.0], 0)];
//! train(&mut model, &data, TrainConfig::default(), &mut rng);
//! assert!(accuracy(&model, &data) > 0.0);
//! ```

pub mod autodiff;
pub mod checkpoint;
pub mod init;
pub mod io;
pub mod mlp;
pub mod train;
pub mod transformer;
pub mod vit;

pub use mlp::Mlp;
pub use transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
pub use vit::{PatchConfig, VisionTransformer};
