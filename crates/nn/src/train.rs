//! Training: the [`Classifier`] abstraction, Adam, and a mini-batch
//! training loop with which all models of the workspace (Transformer, MLP,
//! ViT) are trained from scratch, mirroring the paper's setup.

use deept_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::autodiff::Tape;
use crate::mlp::Mlp;
use crate::transformer::TransformerClassifier;
use crate::vit::VisionTransformer;

/// Anything trainable by [`train`]: exposes logits, a loss-with-gradients
/// computation and its parameter list.
pub trait Classifier {
    /// The input type (token sequence, pixel buffer, feature vector).
    type Input: Clone;

    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// Raw logits (`1 × classes`).
    fn logits(&self, input: &Self::Input) -> Matrix;

    /// Cross-entropy loss and per-parameter gradients (aligned with
    /// [`Classifier::params_mut`]) for one example.
    fn loss_and_grads(&self, input: &Self::Input, label: usize) -> (f64, Vec<Matrix>);

    /// Mutable access to the trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Matrix>;

    /// Predicted class.
    fn predict(&self, input: &Self::Input) -> usize {
        deept_tensor::ops::argmax(self.logits(input).row(0))
    }
}

macro_rules! impl_classifier {
    ($ty:ty, $input:ty, $classes:expr) => {
        impl Classifier for $ty {
            type Input = $input;

            fn num_classes(&self) -> usize {
                $classes(self)
            }

            fn logits(&self, input: &Self::Input) -> Matrix {
                <$ty>::logits(self, input)
            }

            fn loss_and_grads(&self, input: &Self::Input, label: usize) -> (f64, Vec<Matrix>) {
                let mut tape = Tape::new();
                let (logits, pvars) = self.logits_tape(&mut tape, input);
                let loss = tape.cross_entropy_logits(logits, label);
                tape.backward(loss);
                let l = tape.value(loss).at(0, 0);
                let grads = pvars.iter().map(|&v| tape.grad(v).clone()).collect();
                (l, grads)
            }

            fn params_mut(&mut self) -> Vec<&mut Matrix> {
                <$ty>::params_mut(self)
            }
        }
    };
}

impl_classifier!(
    TransformerClassifier,
    Vec<usize>,
    |m: &TransformerClassifier| m.config.num_classes
);
impl_classifier!(Mlp, Vec<f64>, |m: &Mlp| m.output_dim());
impl_classifier!(VisionTransformer, Vec<f64>, |m: &VisionTransformer| m
    .config
    .num_classes);

/// The Adam optimizer.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: usize,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β parameters.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Applies one update step given parameters and equally-shaped
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` lengths or shapes differ.
    pub fn step(&mut self, params: Vec<&mut Matrix>, grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        if self.m.is_empty() {
            self.m = grads
                .iter()
                .map(|g| Matrix::zeros(g.rows(), g.cols()))
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in params
            .into_iter()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(p.shape(), g.shape(), "param/grad shape mismatch");
            for k in 0..p.len() {
                let gk = g.as_slice()[k];
                let mk = &mut m.as_mut_slice()[k];
                *mk = self.beta1 * *mk + (1.0 - self.beta1) * gk;
                let vk = &mut v.as_mut_slice()[k];
                *vk = self.beta2 * *vk + (1.0 - self.beta2) * gk * gk;
                let mhat = *mk / bc1;
                let vhat = *vk / bc2;
                p.as_mut_slice()[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Training hyper-parameters for [`train`].
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Examples per optimizer step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 16,
            lr: 1e-3,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f64,
    /// Training accuracy.
    pub accuracy: f64,
}

/// Trains `model` on `(input, label)` pairs with Adam, returning per-epoch
/// statistics.
pub fn train<C: Classifier>(
    model: &mut C,
    data: &[(C::Input, usize)],
    cfg: TrainConfig,
    rng: &mut impl Rng,
) -> Vec<EpochStats> {
    let mut opt = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut stats = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        order.shuffle(rng);
        let mut total_loss = 0.0;
        let mut correct = 0usize;
        for batch in order.chunks(cfg.batch_size) {
            let mut acc: Option<Vec<Matrix>> = None;
            for &i in batch {
                let (input, label) = &data[i];
                let (loss, grads) = model.loss_and_grads(input, *label);
                total_loss += loss;
                if model.predict(input) == *label {
                    correct += 1;
                }
                match &mut acc {
                    None => acc = Some(grads),
                    Some(a) => {
                        for (s, g) in a.iter_mut().zip(&grads) {
                            s.add_assign(g);
                        }
                    }
                }
            }
            if let Some(mut grads) = acc {
                let scale = 1.0 / batch.len() as f64;
                for g in &mut grads {
                    g.scale_assign(scale);
                }
                opt.step(model.params_mut(), &grads);
            }
        }
        stats.push(EpochStats {
            epoch,
            loss: total_loss / data.len().max(1) as f64,
            accuracy: correct as f64 / data.len().max(1) as f64,
        });
    }
    stats
}

/// Accuracy of `model` on a labelled dataset.
pub fn accuracy<C: Classifier>(model: &C, data: &[(C::Input, usize)]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = data.iter().filter(|(x, y)| model.predict(x) == *y).count();
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn adam_reduces_quadratic_loss() {
        // Minimise ‖p − target‖² by feeding Adam the analytic gradient.
        let mut p = Matrix::from_rows(&[&[5.0, -3.0]]);
        let target = [1.0, 2.0];
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = Matrix::from_rows(&[&[
                2.0 * (p.at(0, 0) - target[0]),
                2.0 * (p.at(0, 1) - target[1]),
            ]]);
            opt.step(vec![&mut p], &[g]);
        }
        assert!((p.at(0, 0) - 1.0).abs() < 1e-2);
        assert!((p.at(0, 1) - 2.0).abs() < 1e-2);
    }

    #[test]
    fn mlp_learns_a_linearly_separable_task() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut mlp = Mlp::new(&[2, 8, 2], &mut rng);
        let mut data = Vec::new();
        for _ in 0..200 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let y: f64 = rng.gen_range(-1.0..1.0);
            let label = usize::from(x + y > 0.0);
            data.push((vec![x, y], label));
        }
        let stats = train(
            &mut mlp,
            &data,
            TrainConfig {
                epochs: 20,
                batch_size: 16,
                lr: 0.01,
            },
            &mut rng,
        );
        let final_acc = accuracy(&mlp, &data);
        assert!(
            final_acc > 0.95,
            "MLP failed to learn: accuracy {final_acc}, history {stats:?}"
        );
    }

    #[test]
    fn transformer_learns_a_toy_sequence_task() {
        use crate::transformer::{LayerNormKind, TransformerConfig};
        // Label = whether token 1 appears in the sequence.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let cfg = TransformerConfig {
            vocab_size: 6,
            max_len: 6,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 16,
            num_layers: 1,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        };
        let mut model = crate::transformer::TransformerClassifier::new(cfg, &mut rng);
        let mut data = Vec::new();
        for _ in 0..120 {
            let len = rng.gen_range(3..=6);
            let mut toks: Vec<usize> = (0..len).map(|_| rng.gen_range(2..6)).collect();
            let label = usize::from(rng.gen_bool(0.5));
            if label == 1 {
                let pos = rng.gen_range(0..len);
                toks[pos] = 1;
            }
            data.push((toks, label));
        }
        train(
            &mut model,
            &data,
            TrainConfig {
                epochs: 30,
                batch_size: 8,
                lr: 3e-3,
            },
            &mut rng,
        );
        let final_acc = accuracy(&model, &data);
        assert!(final_acc > 0.9, "transformer failed to learn: {final_acc}");
    }

    #[test]
    fn accuracy_of_empty_dataset_is_zero() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mlp = Mlp::new(&[2, 2], &mut rng);
        let data: Vec<(Vec<f64>, usize)> = Vec::new();
        assert_eq!(accuracy(&mlp, &data), 0.0);
    }
}
