//! Server-side metric handles: the per-server registry and the request
//! lifecycle instruments.
//!
//! Each [`crate::server::Server`] owns its own always-on
//! [`deept_metrics::Registry`] — concurrently running servers (common under
//! `cargo test`) must never see each other's counts — while the
//! process-global gated registry collects the verifier/core hot-path
//! counters. [`ServeMetrics::merged_snapshot`] stitches both together for
//! `metrics` requests and `GET /metrics` scrapes.

use deept_metrics::{Counter, Gauge, Histogram, Registry, RegistrySnapshot};
use std::time::Instant;

/// Cached handles for every serve-layer metric. See the module docs.
pub(crate) struct ServeMetrics {
    pub registry: Registry,
    pub started: Instant,
    /// `deept_serve_requests_received_total`: requests read off connections.
    pub received: Counter,
    /// `deept_serve_requests_completed_total`: jobs completed by workers.
    pub completed: Counter,
    /// `deept_serve_cache_hits_total`.
    pub cache_hits: Counter,
    /// `deept_serve_cache_misses_total`.
    pub cache_misses: Counter,
    /// `deept_serve_deadline_timeouts_total`: jobs aborted on expiry.
    pub deadline_timeouts: Counter,
    /// `deept_serve_overloaded_total`: submissions bounced off a full queue.
    pub overloaded: Counter,
    /// `deept_serve_fused_batches_total`: lockstep batches of ≥ 2 members.
    pub fused_batches: Counter,
    /// `deept_serve_fused_members_total`: jobs executed inside a fused batch.
    pub fused_members: Counter,
    /// `deept_serve_coalesced_total`: requests answered by attaching to an
    /// identical in-flight computation instead of running their own.
    pub coalesced: Counter,
    /// `deept_serve_fused_requeued_total`: coalesced stragglers re-dispatched
    /// individually after their fused leader timed out.
    pub fused_requeued: Counter,
    /// `deept_state_cache_hits_total`: warm queries resumed mid-stack from
    /// a cached layer snapshot.
    pub state_hits: Counter,
    /// `deept_state_cache_misses_total`: eligible queries that found no
    /// exactly-matching snapshot and ran cold.
    pub state_misses: Counter,
    /// `deept_state_cache_evictions_total`: snapshots evicted by the byte
    /// budget.
    pub state_evictions: Counter,
    /// `deept_state_cache_resumed_layers_total`: encoder layers skipped by
    /// warm resumes (the work the cache saved).
    pub state_resumed_layers: Counter,
    /// `deept_state_cache_resident_bytes` gauge.
    pub state_resident_bytes: Gauge,
    /// `deept_serve_queue_depth` gauge.
    pub queue_depth: Gauge,
    /// `deept_serve_in_flight` gauge.
    pub in_flight: Gauge,
    /// `deept_serve_uptime_seconds` gauge (set at snapshot time).
    pub uptime: Gauge,
    /// `deept_serve_queue_wait_seconds`: submit → worker dequeue.
    pub queue_wait: Histogram,
    /// `deept_serve_cache_lookup_seconds`: result-cache probe duration.
    pub cache_lookup: Histogram,
    /// `deept_serve_propagation_seconds`: worker execution (predict, embed
    /// and abstract propagation / radius search).
    pub propagation: Histogram,
    /// `deept_serve_request_seconds`: certify end-to-end, arrival → reply.
    pub total: Histogram,
}

impl ServeMetrics {
    pub fn new() -> Self {
        let registry = Registry::new();
        let received = registry.counter(
            "deept_serve_requests_received_total",
            "Requests read off connections.",
        );
        let completed = registry.counter(
            "deept_serve_requests_completed_total",
            "Certification jobs completed by workers.",
        );
        let cache_hits = registry.counter(
            "deept_serve_cache_hits_total",
            "Certify requests answered from the result cache.",
        );
        let cache_misses = registry.counter(
            "deept_serve_cache_misses_total",
            "Certify requests that missed the cache and ran the verifier.",
        );
        let deadline_timeouts = registry.counter(
            "deept_serve_deadline_timeouts_total",
            "Jobs aborted because their deadline expired.",
        );
        let overloaded = registry.counter(
            "deept_serve_overloaded_total",
            "Requests rejected because the job queue was full.",
        );
        let fused_batches = registry.counter(
            "deept_serve_fused_batches_total",
            "Lockstep fused batches of at least two members.",
        );
        let fused_members = registry.counter(
            "deept_serve_fused_members_total",
            "Certification jobs executed inside a fused batch.",
        );
        let coalesced = registry.counter(
            "deept_serve_coalesced_total",
            "Requests answered by an identical in-flight computation.",
        );
        let fused_requeued = registry.counter(
            "deept_serve_fused_requeued_total",
            "Coalesced stragglers re-dispatched after a fused leader timeout.",
        );
        let state_hits = registry.counter(
            "deept_state_cache_hits_total",
            "Warm queries resumed mid-stack from a cached layer snapshot.",
        );
        let state_misses = registry.counter(
            "deept_state_cache_misses_total",
            "Eligible queries with no exactly-matching snapshot (ran cold).",
        );
        let state_evictions = registry.counter(
            "deept_state_cache_evictions_total",
            "Layer snapshots evicted by the state-cache byte budget.",
        );
        let state_resumed_layers = registry.counter(
            "deept_state_cache_resumed_layers_total",
            "Encoder layers skipped by warm resumes.",
        );
        let state_resident_bytes = registry.gauge(
            "deept_state_cache_resident_bytes",
            "Bytes of layer snapshots resident in the state cache.",
        );
        let queue_depth = registry.gauge(
            "deept_serve_queue_depth",
            "Jobs currently waiting in the queue.",
        );
        let in_flight = registry.gauge(
            "deept_serve_in_flight",
            "Jobs currently executing on workers.",
        );
        let uptime = registry.gauge(
            "deept_serve_uptime_seconds",
            "Seconds since the server started.",
        );
        let queue_wait = registry.histogram(
            "deept_serve_queue_wait_seconds",
            "Time from queue submission to worker dequeue.",
        );
        let cache_lookup = registry.histogram(
            "deept_serve_cache_lookup_seconds",
            "Result-cache probe duration.",
        );
        let propagation = registry.histogram(
            "deept_serve_propagation_seconds",
            "Worker execution time (prediction, embedding and verification).",
        );
        let total = registry.histogram(
            "deept_serve_request_seconds",
            "Certify end-to-end latency, request arrival to reply.",
        );
        ServeMetrics {
            registry,
            started: Instant::now(),
            received,
            completed,
            cache_hits,
            cache_misses,
            deadline_timeouts,
            overloaded,
            fused_batches,
            fused_members,
            coalesced,
            fused_requeued,
            state_hits,
            state_misses,
            state_evictions,
            state_resumed_layers,
            state_resident_bytes,
            queue_depth,
            in_flight,
            uptime,
            queue_wait,
            cache_lookup,
            propagation,
            total,
        }
    }

    /// Per-checkpoint request counter,
    /// `deept_serve_model_requests_total{model="..."}`.
    pub fn model_requests(&self, model_id: &str) -> Counter {
        self.registry.counter_with(
            "deept_serve_model_requests_total",
            &[("model", model_id)],
            "Certify requests per checkpoint.",
        )
    }

    /// This server's registry merged with the process-global hot-path
    /// registry, with the uptime gauge refreshed first.
    pub fn merged_snapshot(&self) -> RegistrySnapshot {
        self.uptime.set(self.started.elapsed().as_secs_f64());
        let mut snap = self.registry.snapshot();
        snap.merge(deept_metrics::global().snapshot());
        snap
    }
}
