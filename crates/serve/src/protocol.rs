//! The JSON-lines wire protocol.
//!
//! Every message is a single JSON object on its own line, tagged with a
//! `type` field. Requests:
//!
//! ```json
//! {"type":"certify","model_id":"toy","tokens":[1,2,3],"eps":0.01,"norm":"l2"}
//! {"type":"certify","model_id":"toy","tokens":[1,2,3],"radius_search":{"iters":16}}
//! {"type":"certify","model_id":"toy","tokens":[1,2,3],"variant":"synonyms"}
//! {"type":"load_model","model_id":"toy","path":"artifacts/models/toy.json"}
//! {"type":"status"}
//! {"type":"metrics"}
//! {"type":"shutdown"}
//! ```
//!
//! and responses mirror them (`certify`, `model_loaded`, `status`,
//! `metrics`, `shutting_down`, `error`). Unknown fields are rejected so
//! typos in request options fail loudly instead of silently certifying
//! something else.
//!
//! Every response carries the `request_id` the server assigned when the
//! request was read off the connection (monotonic per server), including
//! `overloaded` and other error replies, so a slow or failed request can be
//! correlated with `DEEPT_LOG` lines and latency histograms end to end.

use std::io::{self, Write};

use serde::{Deserialize, Serialize};

/// A client → server message.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "type", rename_all = "snake_case", deny_unknown_fields)]
pub enum Request {
    /// Certify one token sequence against threat model T1.
    Certify(CertifyRequest),
    /// Load a fingerprinted checkpoint into the registry under `model_id`.
    LoadModel {
        /// Name the model will be addressed by.
        model_id: String,
        /// Path to a `deept-checkpoint-v1` file on the server's filesystem.
        path: String,
    },
    /// Report server counters and loaded models.
    Status,
    /// Report the full metrics registry (server + process-global) as a
    /// structured snapshot.
    Metrics,
    /// Stop accepting work, drain in-flight jobs, then exit.
    Shutdown,
}

/// Body of a `certify` request.
///
/// Exactly one of `eps` (certify a fixed radius) or `radius_search`
/// (binary-search the maximum certified radius) must be present.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct CertifyRequest {
    /// Registry name of the model to certify against.
    pub model_id: String,
    /// Token ids (must be in the model's vocabulary and sequence budget).
    pub tokens: Vec<usize>,
    /// Perturbed position (threat model T1). Defaults to 0.
    #[serde(default)]
    pub position: usize,
    /// Norm of the perturbation ball: `"1"`/`"l1"`, `"2"`/`"l2"`,
    /// `"inf"`/`"linf"`. Defaults to `"l2"`.
    #[serde(default = "default_norm")]
    pub norm: String,
    /// Verifier variant: `"fast"`, `"precise"`, `"combined"` or
    /// `"refine"` (the CEGAR escalation ladder; eps queries only).
    /// Defaults to `"fast"`.
    #[serde(default = "default_variant")]
    pub variant: String,
    /// Fixed perturbation radius to certify.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub eps: Option<f64>,
    /// Binary-search the maximum certified radius instead.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub radius_search: Option<RadiusSearchSpec>,
    /// Synonym-set parameters for `variant: "synonyms"` (threat model T2).
    /// Optional — the variant applies the defaults when absent; invalid
    /// with every other variant.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub synonyms: Option<SynonymSpec>,
    /// Per-request deadline in milliseconds; overrides the server default.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
    /// Attach the full `VerificationTrace` to the response (uncached runs
    /// only; cache hits carry no trace).
    #[serde(default)]
    pub trace: bool,
}

fn default_norm() -> String {
    "l2".to_string()
}

fn default_variant() -> String {
    "fast".to_string()
}

/// Parameters of a maximum-certified-radius search.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct RadiusSearchSpec {
    /// Initial bracket radius for the exponential growth phase.
    #[serde(default = "default_start")]
    pub start: f64,
    /// Bisection iterations after bracketing.
    #[serde(default = "default_iters")]
    pub iters: usize,
}

impl Default for RadiusSearchSpec {
    fn default() -> Self {
        RadiusSearchSpec {
            start: default_start(),
            iters: default_iters(),
        }
    }
}

fn default_start() -> f64 {
    0.01
}

fn default_iters() -> usize {
    16
}

/// Parameters of a T2 synonym-substitution certification
/// (`variant: "synonyms"`): how the per-checkpoint synonym sets are built.
/// Sets are computed once per `(checkpoint, k, dist)` and reused across
/// requests (the O(V²) embedding scan never runs per request).
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct SynonymSpec {
    /// Maximum synonyms per token (nearest embeddings first).
    #[serde(default = "default_syn_k")]
    pub k: usize,
    /// Maximum ℓ2 embedding distance for two tokens to count as synonyms.
    #[serde(default = "default_syn_dist")]
    pub dist: f64,
}

impl Default for SynonymSpec {
    fn default() -> Self {
        SynonymSpec {
            k: default_syn_k(),
            dist: default_syn_dist(),
        }
    }
}

fn default_syn_k() -> usize {
    4
}

fn default_syn_dist() -> f64 {
    0.8
}

/// Verifier variant selector (§6: DeepT-Fast / DeepT-Precise, plus the
/// Combined verifier of Appendix A.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Variant {
    /// DeepT-Fast everywhere.
    Fast,
    /// DeepT-Precise everywhere.
    Precise,
    /// Fast in all layers except the last, Precise in the last.
    Combined,
    /// The CEGAR escalation ladder (`crates/refine`): Fast → Precise →
    /// deadline-aware branch-and-bound refinement with attack pruning.
    Refine,
    /// Threat model T2 (§6.7): certify the sentence against every
    /// combination of per-token synonym substitutions. Takes neither `eps`
    /// nor `radius_search`; tuned by the optional `synonyms` spec.
    Synonyms,
}

impl Variant {
    /// Parses a wire-format variant name.
    pub fn parse(s: &str) -> Option<Variant> {
        match s {
            "fast" => Some(Variant::Fast),
            "precise" => Some(Variant::Precise),
            "combined" => Some(Variant::Combined),
            "refine" => Some(Variant::Refine),
            "synonyms" => Some(Variant::Synonyms),
            _ => None,
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Variant::Fast => "fast",
            Variant::Precise => "precise",
            Variant::Combined => "combined",
            Variant::Refine => "refine",
            Variant::Synonyms => "synonyms",
        })
    }
}

/// A server → client message.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Response {
    /// Result of a `certify` request.
    Certify {
        /// Echo of the requested model.
        model_id: String,
        /// Content fingerprint of the model that produced the result.
        fingerprint: String,
        /// The model's (concrete) predicted label for the tokens.
        label: usize,
        /// The certification result proper; bitwise identical on cache
        /// hits.
        result: CertifyResult,
        /// Whether the result came from the cache.
        cached: bool,
        /// Full verification trace, when requested and freshly computed.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        trace: Option<serde_json::Value>,
        /// Server-assigned request id (see the module docs).
        #[serde(default, skip_serializing_if = "Option::is_none")]
        request_id: Option<u64>,
    },
    /// A checkpoint was loaded into the registry.
    ModelLoaded {
        /// Registry name.
        model_id: String,
        /// Verified content fingerprint of the checkpoint.
        fingerprint: String,
        /// Server-assigned request id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        request_id: Option<u64>,
    },
    /// Server counters and configuration.
    Status(StatusReport),
    /// Structured snapshot of the metrics registry.
    Metrics {
        /// Merged server + process-global registry snapshot.
        snapshot: deept_metrics::RegistrySnapshot,
        /// Server-assigned request id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        request_id: Option<u64>,
    },
    /// Shutdown acknowledged; the server drains and exits.
    ShuttingDown {
        /// Jobs still queued or executing at acknowledgement time.
        pending: u64,
        /// Server-assigned request id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        request_id: Option<u64>,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Server-assigned request id.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        request_id: Option<u64>,
    },
}

impl Response {
    /// Stamps the server-assigned request id onto any response variant
    /// (stored inside the report for `status`).
    pub fn set_request_id(&mut self, id: u64) {
        match self {
            Response::Certify { request_id, .. }
            | Response::ModelLoaded { request_id, .. }
            | Response::Metrics { request_id, .. }
            | Response::ShuttingDown { request_id, .. }
            | Response::Error { request_id, .. } => *request_id = Some(id),
            Response::Status(report) => report.request_id = Some(id),
        }
    }

    /// The server-assigned request id, if stamped.
    pub fn request_id(&self) -> Option<u64> {
        match self {
            Response::Certify { request_id, .. }
            | Response::ModelLoaded { request_id, .. }
            | Response::Metrics { request_id, .. }
            | Response::ShuttingDown { request_id, .. }
            | Response::Error { request_id, .. } => *request_id,
            Response::Status(report) => report.request_id,
        }
    }
}

/// Payload of a successful certification, cached verbatim.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum CertifyResult {
    /// Fixed-ε query: was the ball certified, and with what margins.
    Fixed {
        /// Whether robustness was proven at the requested radius.
        certified: bool,
        /// Margin lower bounds per competing class (`∞` in the true
        /// class's slot).
        margins: Vec<f64>,
    },
    /// Radius search: the maximum certified radius found.
    Radius {
        /// Certified radius (a sound lower bound on the true maximum).
        radius: f64,
        /// Number of certification queries the search issued.
        queries: usize,
    },
    /// Refine-ladder query: the escalation verdict. Only *final* verdicts
    /// are ever cached — a ladder cut short by the deadline returns a
    /// timeout error instead (the PR 3 rule).
    Refined {
        /// `"certified"`, `"falsified"` or `"unknown"`.
        verdict: String,
        /// Sound margin lower bound (`certified`/`unknown`); `null` for
        /// falsified queries.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        margin: Option<f64>,
        /// Ladder level that decided: `"fast"`, `"precise"` or `"refine"`.
        level: String,
        /// Branch-and-bound nodes explored (0 when a flat pass decided).
        nodes: usize,
    },
    /// T2 synonym-substitution query (`variant: "synonyms"`): one box
    /// over all simultaneous substitutions, plus a per-position sweep.
    Synonyms {
        /// Whether the *joint* substitution box (every position perturbed
        /// at once) was certified — the paper's T2 verdict.
        certified: bool,
        /// Per-position verdicts: position `i` certified against its own
        /// synonym set alone (positions with no synonyms are vacuously
        /// certified).
        positions: Vec<bool>,
        /// Margins of the joint substitution box.
        margins: Vec<f64>,
        /// Size of the attacked combination space (decimal string — the
        /// product overflows u64 on long sentences).
        combinations: String,
    },
}

/// Machine-readable failure classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ErrorCode {
    /// The job queue is full; retry later.
    Overloaded,
    /// The request's deadline expired before the result was complete.
    Timeout,
    /// No model with the requested id in the registry.
    UnknownModel,
    /// Malformed or self-contradictory request.
    BadRequest,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

/// Counters and configuration reported by a `status` request.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Default)]
pub struct StatusReport {
    /// Requests read off connections.
    pub received: u64,
    /// Certification jobs completed.
    pub completed: u64,
    /// Certify requests answered from the cache.
    pub cache_hits: u64,
    /// Certify requests that ran the verifier.
    pub cache_misses: u64,
    /// Jobs aborted on deadline expiry.
    pub deadline_aborts: u64,
    /// Requests rejected with `overloaded`.
    pub overloaded: u64,
    /// Jobs currently queued.
    pub queue_depth: u64,
    /// Jobs currently executing.
    pub in_flight: u64,
    /// Worker threads.
    pub workers: usize,
    /// Queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Loaded model ids, sorted.
    pub models: Vec<String>,
    /// Seconds since the server started.
    #[serde(default)]
    pub uptime_seconds: f64,
    /// Warm queries resumed mid-stack from the zonotope state cache.
    #[serde(default)]
    pub state_cache_hits: u64,
    /// Eligible queries that found no exactly-matching snapshot.
    #[serde(default)]
    pub state_cache_misses: u64,
    /// Snapshots evicted by the state-cache byte budget.
    #[serde(default)]
    pub state_cache_evictions: u64,
    /// Bytes of layer snapshots resident in the state cache.
    #[serde(default)]
    pub state_cache_resident_bytes: u64,
    /// Encoder layers skipped by warm resumes since start.
    #[serde(default)]
    pub state_cache_resumed_layers: u64,
    /// Server-assigned request id of the `status` request itself.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub request_id: Option<u64>,
}

impl StatusReport {
    /// Cache hit rate in `[0, 1]`; `None` before any cache probe.
    pub fn hit_rate(&self) -> Option<f64> {
        let probes = self.cache_hits + self.cache_misses;
        #[allow(clippy::cast_precision_loss)]
        (probes > 0).then(|| self.cache_hits as f64 / probes as f64)
    }

    /// One-line human summary, in the style of the trace hotspot report.
    pub fn render_summary(&self) -> String {
        let hit_rate = match self.hit_rate() {
            Some(r) => format!("{:.0}%", 100.0 * r),
            None => "n/a".to_string(),
        };
        format!(
            "served {} requests ({} completed, {} overloaded, {} deadline-aborted); \
             cache {} hits / {} misses ({hit_rate}); state cache {} hits / {} misses, \
             {} layers resumed; {} queued, {} in flight",
            self.received,
            self.completed,
            self.overloaded,
            self.deadline_aborts,
            self.cache_hits,
            self.cache_misses,
            self.state_cache_hits,
            self.state_cache_misses,
            self.state_cache_resumed_layers,
            self.queue_depth,
            self.in_flight,
        )
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns the underlying `serde_json` error for malformed input.
pub fn parse_request(line: &str) -> Result<Request, serde_json::Error> {
    serde_json::from_str(line.trim())
}

/// Parses one response line.
///
/// # Errors
///
/// Returns the underlying `serde_json` error for malformed input.
pub fn parse_response(line: &str) -> Result<Response, serde_json::Error> {
    serde_json::from_str(line.trim())
}

/// Writes `message` as one JSON line and flushes.
///
/// The payload and trailing newline go out in a single `write_all`: two
/// small writes on a TCP stream trigger the Nagle / delayed-ACK
/// interaction (the second write waits ~40 ms for the peer's ACK), which
/// would dwarf sub-millisecond certification latencies in both directions.
///
/// # Errors
///
/// Returns the underlying I/O error; serialization of protocol types is
/// infallible.
pub fn write_line<T: Serialize>(w: &mut impl Write, message: &T) -> io::Result<()> {
    let mut json = serde_json::to_string(message).map_err(io::Error::other)?;
    json.push('\n');
    w.write_all(json.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certify_request_round_trips_with_defaults() {
        let req =
            parse_request(r#"{"type":"certify","model_id":"toy","tokens":[1,2,3],"eps":0.01}"#)
                .unwrap();
        match &req {
            Request::Certify(c) => {
                assert_eq!(c.model_id, "toy");
                assert_eq!(c.tokens, vec![1, 2, 3]);
                assert_eq!(c.position, 0);
                assert_eq!(c.norm, "l2");
                assert_eq!(c.variant, "fast");
                assert_eq!(c.eps, Some(0.01));
                assert!(c.radius_search.is_none());
                assert!(!c.trace);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        let json = serde_json::to_string(&req).unwrap();
        assert_eq!(parse_request(&json).unwrap(), req);
    }

    #[test]
    fn radius_search_defaults_apply() {
        let req =
            parse_request(r#"{"type":"certify","model_id":"m","tokens":[0],"radius_search":{}}"#)
                .unwrap();
        match req {
            Request::Certify(c) => {
                let spec = c.radius_search.unwrap();
                assert!((spec.start - 0.01).abs() < 1e-12);
                assert_eq!(spec.iters, 16);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn unknown_fields_are_rejected() {
        assert!(
            parse_request(r#"{"type":"certify","model_id":"m","tokens":[0],"epsilon":0.1}"#)
                .is_err()
        );
        assert!(parse_request(r#"{"type":"reboot"}"#).is_err());
    }

    #[test]
    fn control_requests_parse() {
        assert_eq!(
            parse_request(r#"{"type":"status"}"#).unwrap(),
            Request::Status
        );
        assert_eq!(
            parse_request(r#"{"type":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request(r#"{"type":"load_model","model_id":"m","path":"/p.json"}"#).unwrap(),
            Request::LoadModel {
                model_id: "m".into(),
                path: "/p.json".into()
            }
        );
    }

    #[test]
    fn response_round_trips_and_skips_empty_trace() {
        let resp = Response::Certify {
            model_id: "m".into(),
            fingerprint: "abcd".into(),
            label: 1,
            result: CertifyResult::Fixed {
                certified: true,
                margins: vec![0.25, f64::INFINITY],
            },
            cached: false,
            trace: None,
            request_id: None,
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(!json.contains("trace"), "{json}");
        assert!(!json.contains("request_id"), "{json}");
        assert_eq!(parse_response(&json).unwrap(), resp);
    }

    #[test]
    fn request_id_is_stamped_and_round_trips() {
        let mut resp = Response::Error {
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
            request_id: None,
        };
        resp.set_request_id(42);
        assert_eq!(resp.request_id(), Some(42));
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"request_id\":42"), "{json}");
        assert_eq!(parse_response(&json).unwrap(), resp);

        let mut status = Response::Status(StatusReport::default());
        status.set_request_id(7);
        assert_eq!(status.request_id(), Some(7));
    }

    #[test]
    fn metrics_request_and_response_round_trip() {
        assert_eq!(
            parse_request(r#"{"type":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        let reg = deept_metrics::Registry::new();
        reg.counter("deept_serve_requests_received_total", "Requests.")
            .add(3);
        let resp = Response::Metrics {
            snapshot: reg.snapshot(),
            request_id: Some(9),
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back = parse_response(&json).unwrap();
        assert_eq!(back, resp);
        match back {
            Response::Metrics { snapshot, .. } => {
                assert_eq!(
                    snapshot.counter_value("deept_serve_requests_received_total"),
                    Some(3)
                );
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn error_codes_use_snake_case() {
        let json = serde_json::to_string(&Response::Error {
            code: ErrorCode::UnknownModel,
            message: "no such model".into(),
            request_id: None,
        })
        .unwrap();
        assert!(json.contains("\"unknown_model\""), "{json}");
    }

    #[test]
    fn variant_parses_and_displays() {
        for v in [
            Variant::Fast,
            Variant::Precise,
            Variant::Combined,
            Variant::Refine,
            Variant::Synonyms,
        ] {
            assert_eq!(Variant::parse(&v.to_string()), Some(v));
        }
        assert_eq!(Variant::parse("turbo"), None);
    }

    #[test]
    fn synonyms_request_round_trips_with_defaults() {
        let req = parse_request(
            r#"{"type":"certify","model_id":"toy","tokens":[1,2],"variant":"synonyms"}"#,
        )
        .unwrap();
        match &req {
            Request::Certify(c) => {
                assert_eq!(c.variant, "synonyms");
                assert!(c.synonyms.is_none());
                assert!(c.eps.is_none());
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        let req = parse_request(
            r#"{"type":"certify","model_id":"toy","tokens":[1,2],
                "variant":"synonyms","synonyms":{"k":2}}"#,
        )
        .unwrap();
        match req {
            Request::Certify(c) => {
                let spec = c.synonyms.unwrap();
                assert_eq!(spec.k, 2);
                assert!((spec.dist - 0.8).abs() < 1e-12);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn synonyms_result_round_trips() {
        let resp = Response::Certify {
            model_id: "m".into(),
            fingerprint: "abcd".into(),
            label: 0,
            result: CertifyResult::Synonyms {
                certified: true,
                positions: vec![true, false, true],
                margins: vec![f64::INFINITY, 0.125],
                combinations: "96".into(),
            },
            cached: false,
            trace: None,
            request_id: None,
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"kind\":\"synonyms\""), "{json}");
        assert_eq!(parse_response(&json).unwrap(), resp);
    }

    #[test]
    fn status_report_state_cache_fields_default() {
        // Old-format reports (no state-cache fields) must still parse.
        let old = r#"{"received":1,"completed":1,"cache_hits":0,"cache_misses":1,
            "deadline_aborts":0,"overloaded":0,"queue_depth":0,"in_flight":0,
            "workers":2,"queue_capacity":16,"models":[]}"#;
        let report: StatusReport = serde_json::from_str(old).unwrap();
        assert_eq!(report.state_cache_hits, 0);
        assert_eq!(report.state_cache_resident_bytes, 0);
    }

    #[test]
    fn write_line_appends_newline() {
        let mut buf = Vec::new();
        write_line(&mut buf, &Request::Status).unwrap();
        assert_eq!(buf, b"{\"type\":\"status\"}\n");
    }
}
