//! The certification server: worker pool, request handling, batch fusion
//! and the transport glue for the event-loop / stdio front ends.
//!
//! # Lifecycle
//!
//! [`Server::new`] spawns the worker pool immediately; requests can then
//! be fed from any transport. [`Server::serve_listener`] runs the
//! nonblocking [`event_loop`](crate::event_loop) — one I/O thread
//! multiplexing every connection over `poll(2)`, no per-connection
//! threads and no accept backoff sleep. [`Server::serve_stdio`] speaks
//! the same protocol over any `BufRead`/`Write` pair, which is how CI
//! exercises the server without a socket. A `shutdown` request (or stdio
//! EOF) stops intake; already queued and in-flight jobs drain to
//! completion before the workers exit, so no accepted request is ever
//! dropped.
//!
//! # Request flow
//!
//! `certify` requests are validated, then looked up in the result cache —
//! a hit answers inline, bit-for-bit identical to the run that populated
//! it, without consuming a queue slot. Misses are enqueued on the bounded
//! [`JobQueue`]; a full queue yields an `overloaded` error immediately
//! (backpressure, not unbounded buffering). Each request carries a
//! [`Deadline`] fixed at *arrival* time, so time spent waiting in the
//! queue counts against the budget; workers poll it cooperatively between
//! radius-search iterations, encoder layers and margin queries, and an
//! expired request yields a `timeout` error instead of hanging a worker.
//!
//! # Batch fusion
//!
//! Two mechanisms share work between concurrent identical or related
//! requests, both preserving bitwise-identical answers:
//!
//! - **Coalescing**: a certify request whose [`CacheKey`] matches a job
//!   already admitted but not yet finished attaches to that leader
//!   instead of queueing its own copy. The leader's successful response
//!   is shared verbatim (results are deterministic, so this is the exact
//!   response the waiter's own run would have produced). If the leader
//!   times out, waiters whose own deadlines still have budget are
//!   re-dispatched individually — the fused-deadline rule: shared work
//!   runs under the leader's deadline, stragglers finish on their own.
//! - **Lockstep batching**: a worker that dequeues a fusible eps query
//!   drains up to `fuse_max - 1` same-group siblings (same checkpoint
//!   fingerprint, tokens, position, norm and variant) from the queue and
//!   runs them through
//!   [`certify_batch_deadline_probed`](deept_verifier::deept::certify_batch_deadline_probed),
//!   sharing the prediction, the embedding and the per-layer sweep while
//!   executing each member's abstract-transformer calls verbatim — the
//!   batched results are bitwise identical to serial runs, and each
//!   member keeps its own deadline.

use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use deept_core::{PNorm, Zonotope};
use deept_metrics::PhaseProfiler;
use deept_refine::{refine_certify_probed, RefineConfig, RefineOutcome};
use deept_telemetry::{NoopProbe, Probe, TraceCollector};
use deept_verifier::deadline::{Deadline, DeadlineExceeded};
use deept_verifier::deept::{
    certify_batch_resumable, certify_deadline_probed, propagate_suffix_snapshots_deadline_probed,
    BatchQuery, BatchSnapshotSink, DeepTConfig, NoBatchSnapshots, SoundnessProbe,
};
use deept_verifier::network::{margins_from_zonotope_deadline, t1_region, t2_region, CertResult};
use deept_verifier::radius::{max_certified_radius_deadline, RadiusOutcome};
use deept_verifier::statehash::{config_hash, region_hash};
use deept_verifier::synonym;

use crate::cache::{CacheKey, LruCache, QueryKey};
use crate::event_loop::{self, ReplyHandle};
use crate::metrics::ServeMetrics;
use crate::protocol::{
    self, CertifyRequest, CertifyResult, ErrorCode, RadiusSearchSpec, Request, Response,
    StatusReport, SynonymSpec, Variant,
};
use crate::queue::{JobQueue, SubmitError};
use crate::registry::{ModelEntry, ModelRegistry};
use crate::state_cache::{StateCache, StateEntry, StateKey};
use crate::sync::lock;
use crate::synonyms::SynonymCatalog;
use std::collections::HashMap;
use std::path::PathBuf;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing certification jobs.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected with
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// ℓ∞ noise-symbol reduction budget passed to the verifier.
    pub reduction_budget: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms`; `None` means unlimited.
    pub default_deadline_ms: Option<u64>,
    /// Maximum members in one fused lockstep batch (and the switch for
    /// in-flight coalescing). Values `<= 1` disable fusion entirely:
    /// every request runs its own serial propagation.
    pub fuse_max: usize,
    /// Byte budget for the cross-request zonotope [`StateCache`]; zero
    /// disables snapshot capture and resume entirely.
    pub state_cache_bytes: usize,
    /// Directory of persisted synonym-set artifacts (as written by
    /// `deept synonyms`); `None` computes sets in-process and keeps them
    /// only in memory.
    pub synonym_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 256,
            reduction_budget: 2000,
            default_deadline_ms: None,
            fuse_max: 8,
            state_cache_bytes: 32 << 20,
            synonym_dir: None,
        }
    }
}

/// A validated certification query.
#[derive(Debug, Clone, Copy)]
enum Query {
    Eps(f64),
    RadiusSearch(RadiusSearchSpec),
    Synonyms(SynonymSpec),
}

/// Everything a worker needs to run one certification.
struct JobSpec {
    request_id: u64,
    model_id: String,
    tokens: Vec<usize>,
    position: usize,
    norm: PNorm,
    variant: Variant,
    query: Query,
    deadline: Deadline,
    want_trace: bool,
    key: CacheKey,
}

/// Where a finished job's response goes: a blocking caller parked on a
/// channel (stdio / in-process `handle`) or an event-loop completion slot.
pub(crate) enum ReplySink {
    Sync(mpsc::Sender<Response>),
    Async(ReplyHandle),
}

impl ReplySink {
    pub(crate) fn send(&self, response: Response) {
        match self {
            // The requester may have disconnected; dropping the reply is
            // fine in both transports.
            ReplySink::Sync(tx) => {
                let _ = tx.send(response);
            }
            ReplySink::Async(handle) => handle.send(response),
        }
    }
}

struct Job {
    entry: Arc<ModelEntry>,
    spec: JobSpec,
    /// When the request arrived; measures end-to-end latency at finish.
    arrival: Instant,
    /// When the job entered the queue; measures queue wait at dequeue.
    submitted: Instant,
    reply: ReplySink,
}

/// How `submit_certify` resolved a request.
enum Submitted {
    /// Answered without touching the queue (cache hit, validation error,
    /// overload, draining).
    Inline(Response),
    /// Admitted; the reply sink receives the response when a worker (or a
    /// fused leader) finishes.
    Queued,
}

struct Inner {
    cfg: ServeConfig,
    registry: ModelRegistry,
    cache: Mutex<LruCache<CacheKey, (usize, CertifyResult)>>,
    metrics: ServeMetrics,
    profiler: PhaseProfiler,
    next_request_id: AtomicU64,
    queue: JobQueue<Job>,
    /// Cache keys admitted but not yet finished, each with the waiters
    /// coalesced onto that leader. Leaders insert their key (empty vec)
    /// while holding this lock across the queue submit, so a waiter can
    /// never attach to a key whose submission failed.
    inflight: Mutex<HashMap<CacheKey, Vec<Job>>>,
    /// Cross-request per-layer zonotope snapshots for mid-stack resume.
    state_cache: Mutex<StateCache>,
    /// Memoized synonym sets per (fingerprint, k, dist).
    synonyms: SynonymCatalog,
    shutdown: AtomicBool,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Auxiliary service threads (metrics listener); finished handles are
    /// reaped on every push so the vector stays bounded.
    service_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A running certification server; clones share the same instance.
pub struct Server {
    inner: Arc<Inner>,
}

impl Clone for Server {
    fn clone(&self) -> Self {
        Server {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Server {
    /// Starts the worker pool and returns the server, ready to handle
    /// requests from any transport.
    ///
    /// Worker threads that fail to spawn degrade the pool instead of
    /// panicking: the server keeps running with the workers it got, and
    /// if none could be spawned the queue is closed so certify requests
    /// fail fast with `shutting_down` rather than hanging forever.
    pub fn new(cfg: ServeConfig) -> Server {
        let workers = cfg.workers.max(1);
        let queue_capacity = cfg.queue_capacity.max(1);
        let cache_capacity = cfg.cache_capacity;
        let state_cache_bytes = cfg.state_cache_bytes;
        let synonym_dir = cfg.synonym_dir.clone();
        let server = Server {
            inner: Arc::new(Inner {
                cfg,
                registry: ModelRegistry::new(),
                cache: Mutex::new(LruCache::new(cache_capacity)),
                metrics: ServeMetrics::new(),
                profiler: PhaseProfiler::new(),
                next_request_id: AtomicU64::new(1),
                queue: JobQueue::new(queue_capacity),
                inflight: Mutex::new(HashMap::new()),
                state_cache: Mutex::new(StateCache::new(state_cache_bytes)),
                synonyms: SynonymCatalog::new(synonym_dir),
                shutdown: AtomicBool::new(false),
                workers: Mutex::new(Vec::new()),
                service_threads: Mutex::new(Vec::new()),
            }),
        };
        let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(workers);
        for i in 0..workers {
            let inner = Arc::clone(&server.inner);
            match thread::Builder::new()
                .name(format!("deept-worker-{i}"))
                .spawn(move || worker_loop(&inner))
            {
                Ok(handle) => handles.push(handle),
                Err(e) => deept_telemetry::warn!(
                    "serve",
                    "could not spawn worker {i}: {e}; continuing with {} worker(s)",
                    handles.len()
                ),
            }
        }
        if handles.is_empty() {
            deept_telemetry::warn!(
                "serve",
                "no worker threads could be spawned; certify requests will be refused"
            );
            server.inner.queue.close();
        }
        *lock(&server.inner.workers) = handles;
        server
    }

    /// The model registry, for preloading models in-process.
    pub fn registry(&self) -> &ModelRegistry {
        &self.inner.registry
    }

    /// A point-in-time snapshot of the server counters (the same report a
    /// `status` request returns, read from the metrics registry).
    pub fn stats(&self) -> StatusReport {
        self.status_report()
    }

    /// This server's metrics registry merged with the process-global
    /// hot-path registry — the payload of `metrics` requests and
    /// `GET /metrics` scrapes.
    pub fn metrics_snapshot(&self) -> deept_metrics::RegistrySnapshot {
        self.inner.metrics.merged_snapshot()
    }

    /// The span-stream self-profiler shared by all workers (active whenever
    /// metrics are enabled and the request did not ask for a full trace).
    pub fn profiler(&self) -> &PhaseProfiler {
        &self.inner.profiler
    }

    /// Whether a shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Auxiliary service threads currently tracked (finished handles are
    /// reaped whenever a new one is pushed). Exposed for leak tests.
    pub fn tracked_thread_handles(&self) -> usize {
        lock(&self.inner.service_threads).len()
    }

    /// Handles one request synchronously. Certify misses block until a
    /// worker delivers the result; everything else answers inline.
    ///
    /// Assigns the request a server-unique `request_id`, echoed in the
    /// response (including error replies) and in `DEEPT_LOG` lines emitted
    /// while the request is in flight.
    pub fn handle(&self, req: Request) -> Response {
        let id = self.inner.next_request_id.fetch_add(1, Ordering::Relaxed);
        let arrival = Instant::now();
        self.inner.metrics.received.inc();
        let mut response = match req {
            Request::Status => Response::Status(self.status_report()),
            Request::Metrics => Response::Metrics {
                snapshot: self.metrics_snapshot(),
                request_id: None,
            },
            Request::LoadModel { model_id, path } => self.handle_load(&model_id, &path, id),
            Request::Shutdown => self.handle_shutdown(id),
            Request::Certify(c) => {
                let (tx, rx) = mpsc::channel();
                match self.submit_certify(c, id, arrival, ReplySink::Sync(tx)) {
                    Submitted::Inline(response) => response,
                    Submitted::Queued => match rx.recv() {
                        Ok(response) => response,
                        Err(_) => error(ErrorCode::Internal, "worker dropped the reply channel"),
                    },
                }
            }
        };
        response.set_request_id(id);
        response
    }

    /// Handles one request from the event loop. Returns `Some` when the
    /// response is ready inline; `None` when the request was queued, in
    /// which case the [`ReplyHandle`] delivers the response later.
    pub(crate) fn handle_async(&self, req: Request, reply: ReplyHandle) -> Option<Response> {
        let id = self.inner.next_request_id.fetch_add(1, Ordering::Relaxed);
        let arrival = Instant::now();
        self.inner.metrics.received.inc();
        let inline = match req {
            Request::Status => Response::Status(self.status_report()),
            Request::Metrics => Response::Metrics {
                snapshot: self.metrics_snapshot(),
                request_id: None,
            },
            Request::LoadModel { model_id, path } => self.handle_load(&model_id, &path, id),
            Request::Shutdown => self.handle_shutdown(id),
            Request::Certify(c) => {
                match self.submit_certify(c, id, arrival, ReplySink::Async(reply)) {
                    Submitted::Inline(response) => response,
                    Submitted::Queued => return None,
                }
            }
        };
        let mut response = inline;
        response.set_request_id(id);
        Some(response)
    }

    fn status_report(&self) -> StatusReport {
        let m = &self.inner.metrics;
        StatusReport {
            received: m.received.value(),
            completed: m.completed.value(),
            cache_hits: m.cache_hits.value(),
            cache_misses: m.cache_misses.value(),
            deadline_aborts: m.deadline_timeouts.value(),
            state_cache_hits: m.state_hits.value(),
            state_cache_misses: m.state_misses.value(),
            state_cache_evictions: m.state_evictions.value(),
            state_cache_resident_bytes: m.state_resident_bytes.value() as u64,
            state_cache_resumed_layers: m.state_resumed_layers.value(),
            overloaded: m.overloaded.value(),
            queue_depth: m.queue_depth.value() as u64,
            in_flight: m.in_flight.value() as u64,
            workers: self.inner.cfg.workers.max(1),
            queue_capacity: self.inner.queue.capacity(),
            models: self.inner.registry.list(),
            uptime_seconds: m.started.elapsed().as_secs_f64(),
            request_id: None,
        }
    }

    fn handle_load(&self, model_id: &str, path: &str, request_id: u64) -> Response {
        if self.shutting_down() {
            return error(ErrorCode::ShuttingDown, "server is draining");
        }
        match self.inner.registry.load_from_path(model_id, path) {
            Ok(fingerprint) => {
                deept_telemetry::info!(
                    "serve",
                    "req-{request_id}: loaded model {model_id:?} from {path} \
                     (fingerprint {fingerprint})"
                );
                Response::ModelLoaded {
                    model_id: model_id.to_string(),
                    fingerprint,
                    request_id: None,
                }
            }
            Err(e) => error(
                ErrorCode::BadRequest,
                &format!("could not load checkpoint {path}: {e}"),
            ),
        }
    }

    fn handle_shutdown(&self, request_id: u64) -> Response {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Refuse new submissions but let queued jobs drain to the workers.
        self.inner.queue.close();
        let m = &self.inner.metrics;
        let queued = m.queue_depth.value() as u64;
        let in_flight = m.in_flight.value() as u64;
        deept_telemetry::info!(
            "serve",
            "req-{request_id}: shutdown requested; draining {queued} queued + \
             {in_flight} in-flight jobs"
        );
        Response::ShuttingDown {
            pending: queued + in_flight,
            request_id: None,
        }
    }

    /// How many waiters may coalesce onto one in-flight leader before
    /// further identical requests bounce with `overloaded`. Scales with
    /// the queue so coalesced demand stays bounded like queued demand.
    fn waiter_cap(&self) -> usize {
        self.inner.queue.capacity().saturating_mul(4).max(16)
    }

    /// Validates a certify request and resolves it inline (cache hit or
    /// error) or admits it: onto an identical in-flight leader when
    /// fusion is enabled, otherwise onto the job queue.
    fn submit_certify(
        &self,
        req: CertifyRequest,
        request_id: u64,
        arrival: Instant,
        reply: ReplySink,
    ) -> Submitted {
        if self.shutting_down() {
            return Submitted::Inline(error(ErrorCode::ShuttingDown, "server is draining"));
        }
        let Some(norm) = PNorm::parse(&req.norm) else {
            return Submitted::Inline(error(
                ErrorCode::BadRequest,
                &format!("unknown norm {:?} (expected 1, 2 or inf)", req.norm),
            ));
        };
        let Some(variant) = Variant::parse(&req.variant) else {
            return Submitted::Inline(error(
                ErrorCode::BadRequest,
                &format!(
                    "unknown variant {:?} (expected fast, precise, combined, refine or synonyms)",
                    req.variant
                ),
            ));
        };
        // A T2 synonym sweep perturbs every position inside per-position
        // ℓ∞ boxes spanning the substitution embeddings; the request's
        // `norm` field does not apply, so the key is normalized to ℓ∞ and
        // `eps` / `radius_search` are rejected.
        let norm = if variant == Variant::Synonyms {
            PNorm::Linf
        } else {
            norm
        };
        let query = if variant == Variant::Synonyms {
            if req.eps.is_some() || req.radius_search.is_some() {
                return Submitted::Inline(error(
                    ErrorCode::BadRequest,
                    "variant \"synonyms\" takes neither eps nor radius_search",
                ));
            }
            let spec = req.synonyms.unwrap_or_default();
            if spec.k == 0 {
                return Submitted::Inline(error(
                    ErrorCode::BadRequest,
                    "synonyms.k must be at least 1",
                ));
            }
            if !(spec.dist.is_finite() && spec.dist > 0.0) {
                return Submitted::Inline(error(
                    ErrorCode::BadRequest,
                    "synonyms.dist must be finite and positive",
                ));
            }
            Query::Synonyms(spec)
        } else if req.synonyms.is_some() {
            return Submitted::Inline(error(
                ErrorCode::BadRequest,
                "a synonyms spec requires variant \"synonyms\"",
            ));
        } else {
            match (req.eps, req.radius_search) {
                (Some(eps), None) => {
                    if !(eps.is_finite() && eps >= 0.0) {
                        return Submitted::Inline(error(
                            ErrorCode::BadRequest,
                            "eps must be finite and non-negative",
                        ));
                    }
                    Query::Eps(eps)
                }
                (None, Some(spec)) => {
                    if !(spec.start.is_finite() && spec.start > 0.0) {
                        return Submitted::Inline(error(
                            ErrorCode::BadRequest,
                            "radius_search.start must be finite and positive",
                        ));
                    }
                    Query::RadiusSearch(spec)
                }
                _ => {
                    return Submitted::Inline(error(
                        ErrorCode::BadRequest,
                        "specify exactly one of eps and radius_search",
                    ));
                }
            }
        };
        if variant == Variant::Refine && matches!(query, Query::RadiusSearch(_)) {
            return Submitted::Inline(error(
                ErrorCode::BadRequest,
                "variant \"refine\" supports eps queries only",
            ));
        }
        let Some(entry) = self.inner.registry.get(&req.model_id) else {
            return Submitted::Inline(error(
                ErrorCode::UnknownModel,
                &format!("no model {:?} in the registry", req.model_id),
            ));
        };
        let config = &entry.model.config;
        if req.tokens.is_empty() || req.tokens.len() > config.max_len {
            return Submitted::Inline(error(
                ErrorCode::BadRequest,
                &format!(
                    "token count must be in 1..={} (got {})",
                    config.max_len,
                    req.tokens.len()
                ),
            ));
        }
        if let Some(&bad) = req.tokens.iter().find(|&&t| t >= config.vocab_size) {
            return Submitted::Inline(error(
                ErrorCode::BadRequest,
                &format!(
                    "token id {bad} outside vocabulary of size {}",
                    config.vocab_size
                ),
            ));
        }
        if req.position >= req.tokens.len() {
            return Submitted::Inline(error(
                ErrorCode::BadRequest,
                &format!(
                    "position {} outside token sequence of length {}",
                    req.position,
                    req.tokens.len()
                ),
            ));
        }
        // The budget starts at arrival: queue wait counts against it.
        let deadline = Deadline::after_ms(req.deadline_ms.or(self.inner.cfg.default_deadline_ms));
        let key = CacheKey {
            fingerprint: entry.fingerprint.clone(),
            tokens: req.tokens.clone(),
            position: req.position,
            norm,
            variant,
            query: match query {
                Query::Eps(eps) => QueryKey::Eps(eps.to_bits()),
                Query::RadiusSearch(spec) => {
                    QueryKey::RadiusSearch(spec.start.to_bits(), spec.iters)
                }
                Query::Synonyms(spec) => QueryKey::Synonyms(spec.dist.to_bits(), spec.k),
            },
        };
        let m = &self.inner.metrics;
        m.model_requests(&req.model_id).inc();
        let lookup_started = Instant::now();
        let cached = lock(&self.inner.cache).get(&key);
        m.cache_lookup
            .observe(lookup_started.elapsed().as_secs_f64());
        if let Some((label, result)) = cached {
            m.cache_hits.inc();
            m.total.observe(arrival.elapsed().as_secs_f64());
            deept_telemetry::debug!("serve", "req-{request_id}: cache hit");
            return Submitted::Inline(Response::Certify {
                model_id: req.model_id,
                fingerprint: entry.fingerprint.clone(),
                label,
                result,
                cached: true,
                trace: None,
                request_id: None,
            });
        }
        let job = Job {
            entry,
            spec: JobSpec {
                request_id,
                model_id: req.model_id,
                tokens: req.tokens,
                position: req.position,
                norm,
                variant,
                query,
                deadline,
                want_trace: req.trace,
                key: key.clone(),
            },
            arrival,
            submitted: Instant::now(),
            reply,
        };
        // Trace requests never coalesce (their response is unique to
        // them) and never lead a coalescing group.
        let coalescable = self.inner.cfg.fuse_max > 1 && !job.spec.want_trace;
        if coalescable {
            let mut inflight = lock(&self.inner.inflight);
            if let Some(waiters) = inflight.get_mut(&key) {
                if waiters.len() >= self.waiter_cap() {
                    m.overloaded.inc();
                    return Submitted::Inline(error(
                        ErrorCode::Overloaded,
                        "too many requests coalesced on one in-flight computation; retry later",
                    ));
                }
                m.cache_misses.inc();
                m.coalesced.inc();
                deept_telemetry::debug!(
                    "serve",
                    "req-{request_id}: coalesced onto in-flight identical computation"
                );
                waiters.push(job);
                return Submitted::Queued;
            }
            // Become the leader. The inflight lock is held across the
            // submit so no waiter can attach before admission is decided.
            // The depth gauge is bumped *before* the submit: the worker's
            // decrement at dequeue must never run first, or its
            // saturating `sub` pins the gauge one too high forever.
            m.queue_depth.add(1.0);
            match self.inner.queue.submit(job) {
                Ok(()) => {
                    inflight.insert(key, Vec::new());
                    m.cache_misses.inc();
                    deept_telemetry::debug!("serve", "req-{request_id}: queued (fusion leader)");
                    Submitted::Queued
                }
                Err(e) => {
                    m.queue_depth.sub(1.0);
                    Submitted::Inline(self.submit_refusal(e))
                }
            }
        } else {
            m.queue_depth.add(1.0);
            match self.inner.queue.submit(job) {
                Ok(()) => {
                    m.cache_misses.inc();
                    deept_telemetry::debug!("serve", "req-{request_id}: queued");
                    Submitted::Queued
                }
                Err(e) => {
                    m.queue_depth.sub(1.0);
                    Submitted::Inline(self.submit_refusal(e))
                }
            }
        }
    }

    fn submit_refusal(&self, e: SubmitError) -> Response {
        match e {
            SubmitError::Overloaded => {
                self.inner.metrics.overloaded.inc();
                error(
                    ErrorCode::Overloaded,
                    &format!(
                        "job queue is full ({} waiting); retry later",
                        self.inner.queue.capacity()
                    ),
                )
            }
            SubmitError::Closed => error(ErrorCode::ShuttingDown, "server is draining"),
        }
    }

    /// Binds `addr` and serves until a `shutdown` request arrives, then
    /// drains and returns.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if binding or polling fails.
    pub fn serve_tcp(&self, addr: &str) -> io::Result<()> {
        self.serve_listener(TcpListener::bind(addr)?)
    }

    /// Serves an already-bound listener (useful with an ephemeral port)
    /// until a `shutdown` request arrives, then drains and returns.
    ///
    /// All connections are multiplexed on the calling thread by the
    /// `poll(2)` event loop — no thread per connection, bounded buffers
    /// per connection, backpressure by suspending reads.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if polling fails; the server is
    /// drained either way.
    pub fn serve_listener(&self, listener: TcpListener) -> io::Result<()> {
        let result = event_loop::run(self, listener);
        self.drain();
        result
    }

    /// Speaks the protocol over a `BufRead`/`Write` pair: one request per
    /// line, one response per line. EOF or a `shutdown` request ends the
    /// session; either way queued jobs drain before this returns.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if reading or writing fails.
    pub fn serve_stdio(&self, reader: impl BufRead, mut writer: impl Write) -> io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = match protocol::parse_request(&line) {
                Ok(req) => self.handle(req),
                Err(e) => error(ErrorCode::BadRequest, &format!("malformed request: {e}")),
            };
            let is_shutdown = matches!(response, Response::ShuttingDown { .. });
            protocol::write_line(&mut writer, &response)?;
            if is_shutdown {
                break;
            }
        }
        self.drain();
        Ok(())
    }

    /// Stops intake, drains queued and in-flight jobs, joins workers and
    /// service threads, and logs the final counter summary. Idempotent.
    pub fn drain(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue.close();
        let workers = std::mem::take(&mut *lock(&self.inner.workers));
        for handle in workers {
            let _ = handle.join();
        }
        let service = std::mem::take(&mut *lock(&self.inner.service_threads));
        for handle in service {
            let _ = handle.join();
        }
        deept_telemetry::info!("serve", "{}", self.stats().render_summary());
    }

    /// Tracks a service thread handle, reaping finished handles first so
    /// the vector cannot grow without bound.
    fn push_service_handle(&self, handle: JoinHandle<()>) {
        let mut handles = lock(&self.inner.service_threads);
        handles.retain(|h| !h.is_finished());
        handles.push(handle);
    }

    /// Binds a plain-TCP HTTP/1.0 scrape listener on `addr` and serves it
    /// from a background thread until the server drains. Returns the bound
    /// address (useful with an ephemeral port such as `127.0.0.1:0`).
    ///
    /// `GET /metrics` answers with the merged registry snapshot in
    /// Prometheus text exposition format 0.0.4; `GET /profile` answers with
    /// the self-profiler's collapsed-stack text (flamegraph-compatible).
    ///
    /// The listener thread blocks in `poll(2)` between connections (no
    /// busy sleep), logs transient accept failures at warn level and only
    /// exits on fatal ones.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if binding or spawning the
    /// listener thread fails (no panic on spawn failure).
    pub fn spawn_metrics_listener(&self, addr: &str) -> io::Result<SocketAddr> {
        let server = self.clone();
        let source = ScrapeSource {
            done: Box::new({
                let server = self.clone();
                move || server.shutting_down()
            }),
            metrics: Box::new({
                let server = server.clone();
                move || server.metrics_snapshot().to_prometheus()
            }),
            profile: Box::new(move || server.profiler().collapsed()),
        };
        let (bound, handle) = spawn_scrape_listener(addr, source)?;
        self.push_service_handle(handle);
        Ok(bound)
    }
}

impl event_loop::Frontend for Server {
    fn dispatch(&self, req: Request, reply: ReplyHandle) -> Option<Response> {
        self.handle_async(req, reply)
    }

    fn shutting_down(&self) -> bool {
        Server::shutting_down(self)
    }
}

/// What an HTTP scrape listener exposes: a shutdown signal plus the two
/// page renderers. Shared by the server and the shard router.
pub(crate) struct ScrapeSource {
    pub done: Box<dyn Fn() -> bool + Send>,
    pub metrics: Box<dyn Fn() -> String + Send>,
    pub profile: Box<dyn Fn() -> String + Send>,
}

/// Whether an accept failure is transient (log and keep serving) rather
/// than fatal (log and stop). Connection-level failures and descriptor
/// exhaustion recover; anything else likely means the listener is gone.
fn is_transient_accept_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::ConnectionAborted | ErrorKind::ConnectionReset | ErrorKind::TimedOut
    ) || matches!(e.raw_os_error(), Some(code) if code == 23 || code == 24) // ENFILE / EMFILE
}

/// Binds `addr` and serves HTTP/1.0 scrapes from a named background
/// thread until `source.done()` reports true.
pub(crate) fn spawn_scrape_listener(
    addr: &str,
    source: ScrapeSource,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    deept_telemetry::info!("serve", "metrics listener on http://{bound}/metrics");
    let handle = thread::Builder::new()
        .name("deept-metrics".to_string())
        .spawn(move || {
            while !(source.done)() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        // Scrapes are cheap (snapshot + render); handle
                        // them inline so drain has one thread to join.
                        let _ = serve_scrape(&source, stream);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        // Park in poll(2) until a connection is pending;
                        // the timeout bounds shutdown latency.
                        if let Err(e) = event_loop::wait_acceptable(&listener, 250) {
                            deept_telemetry::warn!(
                                "serve",
                                "metrics listener poll failed: {e}; stopping scrape endpoint"
                            );
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) if is_transient_accept_error(&e) => {
                        deept_telemetry::warn!("serve", "metrics listener accept failed: {e}");
                    }
                    Err(e) => {
                        deept_telemetry::warn!(
                            "serve",
                            "metrics listener accept failed fatally: {e}; \
                             stopping scrape endpoint"
                        );
                        break;
                    }
                }
            }
        })?;
    Ok((bound, handle))
}

pub(crate) fn error(code: ErrorCode, message: &str) -> Response {
    Response::Error {
        code,
        message: message.to_string(),
        request_id: None,
    }
}

fn verifier_config(variant: Variant, reduction_budget: usize) -> DeepTConfig {
    match variant {
        Variant::Fast => DeepTConfig::fast(reduction_budget),
        Variant::Precise => DeepTConfig::precise(reduction_budget),
        Variant::Combined => DeepTConfig::combined(reduction_budget),
        // A synonym sweep batches many boxes through the cheap pass (the
        // same configuration `deept synonyms` uses offline).
        Variant::Synonyms => DeepTConfig::fast(reduction_budget),
        // The refinement ladder manages its own per-level budgets and
        // never goes through a single flat config.
        Variant::Refine => unreachable!("refine jobs bypass the flat verifier config"),
    }
}

/// Collects every post-layer state of a serial propagation so the worker
/// can publish them to the [`StateCache`] afterwards.
#[derive(Default)]
struct SnapshotCollector {
    states: Vec<(usize, Zonotope)>,
}

impl SoundnessProbe for SnapshotCollector {
    fn layer_output(&mut self, i: usize, z: &Zonotope) {
        self.states.push((i, z.clone()));
    }
}

/// Per-member snapshot collector for the lockstep batched sweep.
struct BatchCollector {
    states: Vec<Vec<(usize, Zonotope)>>,
}

impl BatchSnapshotSink for BatchCollector {
    fn layer_output(&mut self, member: usize, layer: usize, z: &Zonotope) {
        self.states[member].push((layer, z.clone()));
    }
}

/// `(region_hash, config_hash)` of one query, computed once and shared by
/// the probe and the publish steps.
type StateHashes = (u64, u64);

/// The deepest usable snapshot for `region`, as `(resume_layer, entry)`
/// where `resume_layer` is the first encoder layer still to run. Probes
/// deepest-first; a hit is witness-verified inside the cache (exact
/// `PartialEq` on region and config — a hash collision is a miss, never a
/// wrong resume). Returns `None` on a cold region.
fn deepest_snapshot(
    inner: &Inner,
    entry: &ModelEntry,
    norm: PNorm,
    region: &Zonotope,
    cfg: &DeepTConfig,
    hashes: StateHashes,
) -> Option<(usize, Arc<StateEntry>)> {
    let n_layers = entry.net.layers.len();
    if inner.cfg.state_cache_bytes == 0 || n_layers == 0 {
        return None;
    }
    let (r_hash, c_hash) = hashes;
    let mut key = StateKey {
        fingerprint: entry.fingerprint.clone(),
        norm,
        cfg_hash: c_hash,
        region_hash: r_hash,
        layer: 0,
    };
    let mut cache = lock(&inner.state_cache);
    for layer in (0..n_layers).rev() {
        key.layer = layer;
        if let Some(hit) = cache.get(&key, region, cfg) {
            return Some((layer + 1, hit));
        }
    }
    None
}

/// Publishes the layer snapshots of a finished (or deadline-cut) run.
/// Publishing on timeout is deliberate: the completed prefix is still
/// valid, which is exactly what makes the retry of a timed-out request
/// cheap. Non-finite states certify nothing downstream and are skipped.
fn publish_snapshots(
    inner: &Inner,
    entry: &ModelEntry,
    norm: PNorm,
    region: &Zonotope,
    cfg: &DeepTConfig,
    hashes: StateHashes,
    states: Vec<(usize, Zonotope)>,
) {
    if inner.cfg.state_cache_bytes == 0 || states.is_empty() {
        return;
    }
    let (r_hash, c_hash) = hashes;
    let mut cache = lock(&inner.state_cache);
    let evictions_before = cache.evictions();
    for (layer, state) in states {
        if state.has_non_finite() {
            continue;
        }
        let key = StateKey {
            fingerprint: entry.fingerprint.clone(),
            norm,
            cfg_hash: c_hash,
            region_hash: r_hash,
            layer,
        };
        cache.insert(
            key,
            Arc::new(StateEntry {
                region: region.clone(),
                cfg: *cfg,
                state,
            }),
        );
    }
    let m = &inner.metrics;
    m.state_evictions.add(cache.evictions() - evictions_before);
    m.state_resident_bytes.set(cache.resident_bytes() as f64);
}

/// [`certify_deadline_probed`] with cross-request state-cache resume: a
/// witness-verified hit skips the cached prefix (bitwise identical to the
/// cold run — the sweep replays the remaining layers on the exact state
/// the cold run produced), and whatever layers this run executed are
/// published back, even when the deadline expires mid-stack. Returns the
/// outcome plus the layer the run resumed from (`0` = cold start).
#[allow(clippy::too_many_arguments)]
fn certify_eps_resumable(
    inner: &Inner,
    entry: &ModelEntry,
    norm: PNorm,
    region: &Zonotope,
    label: usize,
    cfg: &DeepTConfig,
    deadline: Deadline,
    probe: &dyn Probe,
) -> (Result<CertResult, DeadlineExceeded>, usize) {
    if inner.cfg.state_cache_bytes == 0 {
        return (
            certify_deadline_probed(&entry.net, region, label, cfg, deadline, probe),
            0,
        );
    }
    let hashes = (region_hash(region), config_hash(cfg));
    let m = &inner.metrics;
    let resumed = deepest_snapshot(inner, entry, norm, region, cfg, hashes);
    let (start, input) = match &resumed {
        Some((start, hit)) => {
            m.state_hits.inc();
            m.state_resumed_layers.add(*start as u64);
            (*start, &hit.state)
        }
        None => {
            m.state_misses.inc();
            (0, region)
        }
    };
    let outcome = (|| {
        deadline.check()?;
        let mut collector = SnapshotCollector::default();
        let run = propagate_suffix_snapshots_deadline_probed(
            &entry.net,
            input,
            cfg,
            start,
            0,
            deadline,
            probe,
            &mut collector,
        );
        publish_snapshots(inner, entry, norm, region, cfg, hashes, collector.states);
        let logits = run?;
        let margins = margins_from_zonotope_deadline(&logits, label, deadline)?;
        Ok(CertResult::from_margins(margins))
    })();
    (outcome, start)
}

/// Whether a job can join a lockstep batch at all: plain eps queries
/// without tracing. Refine runs its own ladder and radius searches have
/// data-dependent iteration counts, so both stay serial.
fn is_fusible(job: &Job) -> bool {
    matches!(job.spec.query, Query::Eps(_))
        && job.spec.variant != Variant::Refine
        && !job.spec.want_trace
}

/// Whether `candidate` shares `seed`'s fusion group: same checkpoint,
/// tokens, position, norm and variant (eps may differ — the batch sweep
/// keeps every member's own input region).
fn same_fusion_group(seed: &Job, candidate: &Job) -> bool {
    is_fusible(candidate)
        && candidate.entry.fingerprint == seed.entry.fingerprint
        && candidate.spec.tokens == seed.spec.tokens
        && candidate.spec.position == seed.spec.position
        && candidate.spec.norm == seed.spec.norm
        && candidate.spec.variant == seed.spec.variant
}

fn worker_loop(inner: &Inner) {
    while let Some(job) = inner.queue.next() {
        let m = &inner.metrics;
        m.queue_depth.sub(1.0);
        let mut batch = vec![job];
        if inner.cfg.fuse_max > 1 && is_fusible(&batch[0]) {
            let siblings = inner
                .queue
                .take_matching(inner.cfg.fuse_max - 1, |j| same_fusion_group(&batch[0], j));
            m.queue_depth.sub(siblings.len() as f64);
            batch.extend(siblings);
        }
        for job in &batch {
            m.queue_wait.observe(job.submitted.elapsed().as_secs_f64());
        }
        m.in_flight.add(batch.len() as f64);
        let started = Instant::now();
        if batch.len() == 1 {
            let job = batch.pop().expect("batch has exactly one member");
            let response = run_job(inner, &job.entry, &job.spec);
            m.propagation.observe(started.elapsed().as_secs_f64());
            m.in_flight.sub(1.0);
            m.completed.inc();
            deept_telemetry::debug!(
                "serve",
                "req-{}: completed in {:.1} ms",
                job.spec.request_id,
                started.elapsed().as_secs_f64() * 1e3
            );
            finish_job(inner, job, response);
        } else {
            run_batch(inner, batch, started);
        }
    }
}

/// Runs a fused batch of same-group eps queries through the lockstep
/// batched propagation: one prediction, one embedding, one layer sweep —
/// per-member results bitwise identical to serial runs, each member on
/// its own deadline.
fn run_batch(inner: &Inner, batch: Vec<Job>, started: Instant) {
    let m = &inner.metrics;
    m.fused_batches.inc();
    m.fused_members.add(batch.len() as u64);
    let entry = Arc::clone(&batch[0].entry);
    let spec0 = &batch[0].spec;
    // Same fingerprint + tokens across the group, so prediction and
    // embedding are shared; `predict`/`embed` are deterministic, making
    // this bitwise identical to per-member calls.
    let label = entry.model.predict(&spec0.tokens);
    let emb = entry.model.embed(&spec0.tokens);
    let probe: &dyn Probe = if deept_metrics::enabled() {
        &inner.profiler
    } else {
        &NoopProbe
    };
    let cfg = verifier_config(spec0.variant, inner.cfg.reduction_budget);
    let norm = spec0.norm;
    let regions: Vec<_> = batch
        .iter()
        .map(|job| {
            let Query::Eps(eps) = job.spec.query else {
                unreachable!("fusible jobs are eps queries")
            };
            t1_region(&emb, job.spec.position, eps, job.spec.norm)
        })
        .collect();
    // State-cache resume per member: a warm member joins the lockstep
    // sweep at its snapshot's layer; the sweep skips it below that layer.
    let use_cache = inner.cfg.state_cache_bytes > 0;
    let c_hash = if use_cache { config_hash(&cfg) } else { 0 };
    let mut starts = vec![0usize; regions.len()];
    let mut hits: Vec<Option<Arc<StateEntry>>> = vec![None; regions.len()];
    let mut hashes: Vec<StateHashes> = Vec::with_capacity(regions.len());
    if use_cache {
        for (idx, region) in regions.iter().enumerate() {
            let h = (region_hash(region), c_hash);
            hashes.push(h);
            match deepest_snapshot(inner, &entry, norm, region, &cfg, h) {
                Some((start, hit)) => {
                    m.state_hits.inc();
                    m.state_resumed_layers.add(start as u64);
                    starts[idx] = start;
                    hits[idx] = Some(hit);
                }
                None => m.state_misses.inc(),
            }
        }
    }
    let queries: Vec<BatchQuery<'_>> = regions
        .iter()
        .zip(&hits)
        .zip(&batch)
        .map(|((region, hit), job)| BatchQuery {
            input: match hit {
                Some(h) => &h.state,
                None => region,
            },
            true_label: label,
            deadline: job.spec.deadline,
        })
        .collect();
    let mut sink = BatchCollector {
        states: vec![Vec::new(); regions.len()],
    };
    let mut drop_sink = NoBatchSnapshots;
    let sink_ref: &mut dyn BatchSnapshotSink = if use_cache { &mut sink } else { &mut drop_sink };
    let outcomes =
        certify_batch_resumable(&entry.net, &queries, Some(&starts), &cfg, probe, sink_ref);
    drop(queries);
    if use_cache {
        for (idx, states) in sink.states.into_iter().enumerate() {
            publish_snapshots(
                inner,
                &entry,
                norm,
                &regions[idx],
                &cfg,
                hashes[idx],
                states,
            );
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    deept_telemetry::debug!(
        "serve",
        "fused batch of {} completed in {:.1} ms",
        outcomes.len(),
        elapsed * 1e3
    );
    for (job, outcome) in batch.into_iter().zip(outcomes) {
        // Each member experienced the whole batch wall time.
        m.propagation.observe(elapsed);
        m.in_flight.sub(1.0);
        m.completed.inc();
        let response = match outcome {
            Ok(res) => {
                let result = CertifyResult::Fixed {
                    certified: res.certified,
                    margins: res.margins,
                };
                lock(&inner.cache).insert(job.spec.key.clone(), (label, result.clone()));
                Response::Certify {
                    model_id: job.spec.model_id.clone(),
                    fingerprint: entry.fingerprint.clone(),
                    label,
                    result,
                    cached: false,
                    trace: None,
                    request_id: Some(job.spec.request_id),
                }
            }
            Err(DeadlineExceeded) => {
                m.deadline_timeouts.inc();
                let mut resp = error(ErrorCode::Timeout, "certification deadline exceeded");
                resp.set_request_id(job.spec.request_id);
                resp
            }
        };
        finish_job(inner, job, response);
    }
}

/// Delivers a finished job's response and resolves any waiters coalesced
/// onto its cache key.
///
/// A successful leader shares its response with every waiter (results
/// are deterministic, so the shared payload is exactly what the waiter's
/// own run would have produced; only the `request_id` is restamped and
/// any trace stripped). On a failed leader the fused-deadline rule
/// applies: waiters whose own deadline already expired get a timeout,
/// the rest are re-dispatched individually.
fn finish_job(inner: &Inner, job: Job, response: Response) {
    let m = &inner.metrics;
    let waiters = if inner.cfg.fuse_max > 1 && !job.spec.want_trace {
        lock(&inner.inflight)
            .remove(&job.spec.key)
            .unwrap_or_default()
    } else {
        Vec::new()
    };
    let succeeded = !matches!(response, Response::Error { .. });
    for waiter in waiters {
        if succeeded {
            let mut shared = response.clone();
            if let Response::Certify { trace, .. } = &mut shared {
                *trace = None;
            }
            shared.set_request_id(waiter.spec.request_id);
            m.completed.inc();
            m.total.observe(waiter.arrival.elapsed().as_secs_f64());
            waiter.reply.send(shared);
        } else if waiter.spec.deadline.check().is_err() {
            m.deadline_timeouts.inc();
            m.completed.inc();
            m.total.observe(waiter.arrival.elapsed().as_secs_f64());
            let mut resp = error(
                ErrorCode::Timeout,
                "certification deadline exceeded while coalesced",
            );
            resp.set_request_id(waiter.spec.request_id);
            waiter.reply.send(resp);
        } else {
            // Fused-deadline rule: the shared computation ran under the
            // leader's deadline; this straggler still has budget, so it
            // finishes individually.
            m.fused_requeued.inc();
            m.queue_depth.add(1.0);
            deept_telemetry::debug!(
                "serve",
                "req-{}: re-dispatched individually after fused leader failure",
                waiter.spec.request_id
            );
            inner.queue.requeue(waiter);
        }
    }
    m.total.observe(job.arrival.elapsed().as_secs_f64());
    job.reply.send(response);
}

fn run_job(inner: &Inner, entry: &ModelEntry, spec: &JobSpec) -> Response {
    let label = entry.model.predict(&spec.tokens);
    let emb = entry.model.embed(&spec.tokens);
    let collector = spec.want_trace.then(TraceCollector::new);
    // Trace requests get the full collector; otherwise the span stream
    // feeds the sampling self-profiler, unless metrics are disabled
    // entirely (`DEEPT_METRICS=off`), which restores the zero-probe path.
    let probe: &dyn Probe = match &collector {
        Some(c) => c,
        None if deept_metrics::enabled() => &inner.profiler,
        None => &NoopProbe,
    };
    // First encoder layer this run actually executed (0 = cold start);
    // stamped into the trace meta as `resumed_from_layer`.
    let mut resumed_from = 0usize;
    let outcome: Result<CertifyResult, String> = if spec.variant == Variant::Refine {
        // `submit_certify` rejects refine radius searches up front.
        let Query::Eps(eps) = spec.query else {
            unreachable!("refine radius searches are rejected at validation")
        };
        let report = refine_certify_probed(
            &entry.model,
            &spec.tokens,
            spec.position,
            eps,
            spec.norm,
            label,
            &RefineConfig::default(),
            spec.deadline,
            probe,
        );
        if report.timed_out {
            // A ladder cut short by the deadline yields a timeout error,
            // never a cached partial verdict (the PR 3 rule).
            Err(format!(
                "refinement deadline exceeded after {} nodes at the {} level",
                report.nodes_explored,
                report.level.as_str()
            ))
        } else {
            let margin = match &report.outcome {
                RefineOutcome::Certified { margin } => Some(*margin),
                RefineOutcome::Unknown { lower_bound } if lower_bound.is_finite() => {
                    Some(*lower_bound)
                }
                _ => None,
            };
            Ok(CertifyResult::Refined {
                verdict: report.outcome.verdict().to_string(),
                margin,
                level: report.level.as_str().to_string(),
                nodes: report.nodes_explored,
            })
        }
    } else {
        let cfg = verifier_config(spec.variant, inner.cfg.reduction_budget);
        match spec.query {
            Query::Eps(eps) => {
                let region = t1_region(&emb, spec.position, eps, spec.norm);
                let (res, start) = certify_eps_resumable(
                    inner,
                    entry,
                    spec.norm,
                    &region,
                    label,
                    &cfg,
                    spec.deadline,
                    probe,
                );
                resumed_from = start;
                match res {
                    Ok(res) => Ok(CertifyResult::Fixed {
                        certified: res.certified,
                        margins: res.margins,
                    }),
                    Err(DeadlineExceeded) => Err("certification deadline exceeded".to_string()),
                }
            }
            Query::Synonyms(syn) => {
                let (res, start) = run_synonyms(inner, entry, spec, syn, label, &emb, &cfg, probe);
                resumed_from = start;
                res
            }
            Query::RadiusSearch(search) => {
                let mut queries = 0usize;
                let outcome = max_certified_radius_deadline(
                    |radius| -> Result<bool, DeadlineExceeded> {
                        queries += 1;
                        let region = t1_region(&emb, spec.position, radius, spec.norm);
                        let res = certify_deadline_probed(
                            &entry.net,
                            &region,
                            label,
                            &cfg,
                            spec.deadline,
                            probe,
                        )?;
                        Ok(res.certified)
                    },
                    search.start,
                    search.iters,
                    spec.deadline,
                    probe,
                );
                match outcome {
                    RadiusOutcome::Completed(radius) => {
                        Ok(CertifyResult::Radius { radius, queries })
                    }
                    RadiusOutcome::TimedOut {
                        lower_bound,
                        queries,
                    } => Err(format!(
                        "radius search deadline exceeded after {queries} queries; \
                     largest certified radius so far {lower_bound}"
                    )),
                }
            }
        }
    };
    match outcome {
        Ok(result) => {
            lock(&inner.cache).insert(spec.key.clone(), (label, result.clone()));
            let trace = collector.map(|c| {
                let mut t = c.finish();
                t.set_meta("verifier", &format!("DeepT-{}", spec.variant));
                t.set_meta("norm", &spec.norm.to_string());
                t.set_meta("model", &spec.model_id);
                t.set_meta("fingerprint", &entry.fingerprint);
                let kernel = deept_tensor::parallel::kernel_mode();
                t.set_meta("kernel", kernel.label());
                t.set_meta(
                    "isa",
                    match kernel {
                        deept_tensor::parallel::KernelMode::Simd => {
                            deept_tensor::simd::active_isa().label()
                        }
                        _ => "scalar",
                    },
                );
                t.set_meta(
                    "prec",
                    if deept_core::eps::prec_f32() {
                        "f32"
                    } else {
                        "f64"
                    },
                );
                t.set_meta("resumed_from_layer", &resumed_from.to_string());
                serde_json::from_str(&t.to_json()).unwrap_or(serde_json::Value::Null)
            });
            Response::Certify {
                model_id: spec.model_id.clone(),
                fingerprint: entry.fingerprint.clone(),
                label,
                result,
                cached: false,
                trace,
                request_id: Some(spec.request_id),
            }
        }
        Err(message) => {
            inner.metrics.deadline_timeouts.inc();
            let mut resp = error(ErrorCode::Timeout, &message);
            resp.set_request_id(spec.request_id);
            resp
        }
    }
}

/// Runs a first-class T2 synonym sweep: member 0 is the full region
/// (every position simultaneously free to substitute — the paper's T2
/// verdict), members 1.. are the per-position regions behind the
/// `positions` breakdown. All members go through the resumable lockstep
/// sweep, sharing the layer loop and any state-cache prefix; repeating or
/// extending a sweep over the same sentence resumes every unchanged
/// member mid-stack. Returns the result plus the full-region member's
/// resume layer (`0` = cold).
///
/// Timeouts are all-or-nothing (the PR 3 rule): any expired member fails
/// the whole sweep and nothing reaches the result cache — though the
/// completed layer prefixes stay in the state cache, so the retry is
/// cheap.
#[allow(clippy::too_many_arguments)]
fn run_synonyms(
    inner: &Inner,
    entry: &ModelEntry,
    spec: &JobSpec,
    syn: SynonymSpec,
    label: usize,
    emb: &deept_tensor::Matrix,
    cfg: &DeepTConfig,
    probe: &dyn Probe,
) -> (Result<CertifyResult, String>, usize) {
    let sets = inner.synonyms.get_or_build(entry, syn.k, syn.dist);
    let alts = synonym::alternatives(&entry.model, &spec.tokens, &sets);
    let n_tokens = spec.tokens.len();
    let mut regions = vec![t2_region(emb, &alts)];
    let mut member_pos: Vec<Option<usize>> = vec![None];
    for (i, a) in alts.iter().enumerate() {
        if a.is_empty() {
            continue; // no synonyms at this position: vacuously robust
        }
        let mut only: Vec<Vec<Vec<f64>>> = vec![Vec::new(); n_tokens];
        only[i] = a.clone();
        regions.push(t2_region(emb, &only));
        member_pos.push(Some(i));
    }
    let m = &inner.metrics;
    let use_cache = inner.cfg.state_cache_bytes > 0;
    let c_hash = if use_cache { config_hash(cfg) } else { 0 };
    let mut starts = vec![0usize; regions.len()];
    let mut hits: Vec<Option<Arc<StateEntry>>> = vec![None; regions.len()];
    let mut hashes: Vec<StateHashes> = Vec::with_capacity(regions.len());
    if use_cache {
        for (idx, region) in regions.iter().enumerate() {
            let h = (region_hash(region), c_hash);
            hashes.push(h);
            match deepest_snapshot(inner, entry, PNorm::Linf, region, cfg, h) {
                Some((start, hit)) => {
                    m.state_hits.inc();
                    m.state_resumed_layers.add(start as u64);
                    starts[idx] = start;
                    hits[idx] = Some(hit);
                }
                None => m.state_misses.inc(),
            }
        }
    }
    let queries: Vec<BatchQuery<'_>> = regions
        .iter()
        .zip(&hits)
        .map(|(region, hit)| BatchQuery {
            input: match hit {
                Some(h) => &h.state,
                None => region,
            },
            true_label: label,
            deadline: spec.deadline,
        })
        .collect();
    let mut sink = BatchCollector {
        states: vec![Vec::new(); regions.len()],
    };
    let mut drop_sink = NoBatchSnapshots;
    let sink_ref: &mut dyn BatchSnapshotSink = if use_cache { &mut sink } else { &mut drop_sink };
    let outcomes =
        certify_batch_resumable(&entry.net, &queries, Some(&starts), cfg, probe, sink_ref);
    drop(queries);
    if use_cache {
        for (idx, states) in sink.states.into_iter().enumerate() {
            publish_snapshots(
                inner,
                entry,
                PNorm::Linf,
                &regions[idx],
                cfg,
                hashes[idx],
                states,
            );
        }
    }
    let mut results = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        match outcome {
            Ok(res) => results.push(res),
            Err(DeadlineExceeded) => {
                return (
                    Err("synonym sweep deadline exceeded".to_string()),
                    starts[0],
                );
            }
        }
    }
    let full = &results[0];
    let mut positions = vec![true; n_tokens];
    for (res, pos) in results.iter().zip(&member_pos) {
        if let Some(i) = pos {
            positions[*i] = res.certified;
        }
    }
    let result = CertifyResult::Synonyms {
        certified: full.certified,
        positions,
        margins: full.margins.clone(),
        combinations: sets.combinations(&spec.tokens).to_string(),
    };
    (Ok(result), starts[0])
}

/// Answers one HTTP/1.0 scrape request on `stream` and closes it.
fn serve_scrape(source: &ScrapeSource, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // "GET /metrics HTTP/1.1" — only the path matters; remaining headers
    // are ignored (the socket closes after the response anyway).
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                (source.metrics)(),
            ),
            "/profile" => ("200 OK", "text/plain; charset=utf-8", (source.profile)()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "try /metrics or /profile\n".to_string(),
            ),
        }
    };
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}
