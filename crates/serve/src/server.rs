//! The certification server: worker pool, request handling, and the TCP /
//! stdio connection loops.
//!
//! # Lifecycle
//!
//! [`Server::new`] spawns the worker pool immediately; requests can then
//! be fed from any transport. [`Server::serve_listener`] accepts TCP
//! connections (one thread each, JSON lines in both directions);
//! [`Server::serve_stdio`] speaks the same protocol over any
//! `BufRead`/`Write` pair, which is how CI exercises the server without a
//! socket. A `shutdown` request (or stdio EOF) stops intake; already
//! queued and in-flight jobs drain to completion before the workers exit,
//! so no accepted request is ever dropped.
//!
//! # Request flow
//!
//! `certify` requests are validated, then looked up in the result cache —
//! a hit answers inline, bit-for-bit identical to the run that populated
//! it, without consuming a queue slot. Misses are enqueued on the bounded
//! [`JobQueue`]; a full queue yields an `overloaded` error immediately
//! (backpressure, not unbounded buffering). Each request carries a
//! [`Deadline`] fixed at *arrival* time, so time spent waiting in the
//! queue counts against the budget; workers poll it cooperatively between
//! radius-search iterations, encoder layers and margin queries, and an
//! expired request yields a `timeout` error instead of hanging a worker.

use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use deept_core::PNorm;
use deept_metrics::PhaseProfiler;
use deept_refine::{refine_certify_probed, RefineConfig, RefineOutcome};
use deept_telemetry::{NoopProbe, Probe, TraceCollector};
use deept_verifier::deadline::{Deadline, DeadlineExceeded};
use deept_verifier::deept::{certify_deadline_probed, DeepTConfig};
use deept_verifier::network::t1_region;
use deept_verifier::radius::{max_certified_radius_deadline, RadiusOutcome};

use crate::cache::{CacheKey, LruCache, QueryKey};
use crate::metrics::ServeMetrics;
use crate::protocol::{
    self, CertifyRequest, CertifyResult, ErrorCode, RadiusSearchSpec, Request, Response,
    StatusReport, Variant,
};
use crate::queue::{JobQueue, SubmitError};
use crate::registry::{ModelEntry, ModelRegistry};
use crate::sync::lock;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing certification jobs.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected with
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// ℓ∞ noise-symbol reduction budget passed to the verifier.
    pub reduction_budget: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms`; `None` means unlimited.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 256,
            reduction_budget: 2000,
            default_deadline_ms: None,
        }
    }
}

/// A validated certification query.
#[derive(Debug, Clone, Copy)]
enum Query {
    Eps(f64),
    RadiusSearch(RadiusSearchSpec),
}

/// Everything a worker needs to run one certification.
struct JobSpec {
    request_id: u64,
    model_id: String,
    tokens: Vec<usize>,
    position: usize,
    norm: PNorm,
    variant: Variant,
    query: Query,
    deadline: Deadline,
    want_trace: bool,
    key: CacheKey,
}

struct Job {
    entry: Arc<ModelEntry>,
    spec: JobSpec,
    /// When the job entered the queue; measures queue wait at dequeue.
    submitted: Instant,
    reply: mpsc::Sender<Response>,
}

struct Inner {
    cfg: ServeConfig,
    registry: ModelRegistry,
    cache: Mutex<LruCache<CacheKey, (usize, CertifyResult)>>,
    metrics: ServeMetrics,
    profiler: PhaseProfiler,
    next_request_id: AtomicU64,
    queue: JobQueue<Job>,
    shutdown: AtomicBool,
    workers: Mutex<Vec<JoinHandle<()>>>,
    connections: Mutex<Vec<JoinHandle<()>>>,
}

/// A running certification server; clones share the same instance.
pub struct Server {
    inner: Arc<Inner>,
}

impl Clone for Server {
    fn clone(&self) -> Self {
        Server {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Server {
    /// Starts the worker pool and returns the server, ready to handle
    /// requests from any transport.
    pub fn new(cfg: ServeConfig) -> Server {
        let workers = cfg.workers.max(1);
        let queue_capacity = cfg.queue_capacity.max(1);
        let cache_capacity = cfg.cache_capacity;
        let server = Server {
            inner: Arc::new(Inner {
                cfg,
                registry: ModelRegistry::new(),
                cache: Mutex::new(LruCache::new(cache_capacity)),
                metrics: ServeMetrics::new(),
                profiler: PhaseProfiler::new(),
                next_request_id: AtomicU64::new(1),
                queue: JobQueue::new(queue_capacity),
                shutdown: AtomicBool::new(false),
                workers: Mutex::new(Vec::new()),
                connections: Mutex::new(Vec::new()),
            }),
        };
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&server.inner);
                thread::Builder::new()
                    .name(format!("deept-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        *lock(&server.inner.workers) = handles;
        server
    }

    /// The model registry, for preloading models in-process.
    pub fn registry(&self) -> &ModelRegistry {
        &self.inner.registry
    }

    /// A point-in-time snapshot of the server counters (the same report a
    /// `status` request returns, read from the metrics registry).
    pub fn stats(&self) -> StatusReport {
        self.status_report()
    }

    /// This server's metrics registry merged with the process-global
    /// hot-path registry — the payload of `metrics` requests and
    /// `GET /metrics` scrapes.
    pub fn metrics_snapshot(&self) -> deept_metrics::RegistrySnapshot {
        self.inner.metrics.merged_snapshot()
    }

    /// The span-stream self-profiler shared by all workers (active whenever
    /// metrics are enabled and the request did not ask for a full trace).
    pub fn profiler(&self) -> &PhaseProfiler {
        &self.inner.profiler
    }

    /// Whether a shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Handles one request synchronously. Certify misses block until a
    /// worker delivers the result; everything else answers inline.
    ///
    /// Assigns the request a server-unique `request_id`, echoed in the
    /// response (including error replies) and in `DEEPT_LOG` lines emitted
    /// while the request is in flight.
    pub fn handle(&self, req: Request) -> Response {
        let id = self.inner.next_request_id.fetch_add(1, Ordering::Relaxed);
        let arrival = Instant::now();
        self.inner.metrics.received.inc();
        let mut response = match req {
            Request::Status => Response::Status(self.status_report()),
            Request::Metrics => Response::Metrics {
                snapshot: self.metrics_snapshot(),
                request_id: None,
            },
            Request::LoadModel { model_id, path } => self.handle_load(&model_id, &path, id),
            Request::Shutdown => self.handle_shutdown(id),
            Request::Certify(c) => self.handle_certify(c, id, arrival),
        };
        response.set_request_id(id);
        response
    }

    fn status_report(&self) -> StatusReport {
        let m = &self.inner.metrics;
        StatusReport {
            received: m.received.value(),
            completed: m.completed.value(),
            cache_hits: m.cache_hits.value(),
            cache_misses: m.cache_misses.value(),
            deadline_aborts: m.deadline_timeouts.value(),
            overloaded: m.overloaded.value(),
            queue_depth: m.queue_depth.value() as u64,
            in_flight: m.in_flight.value() as u64,
            workers: self.inner.cfg.workers.max(1),
            queue_capacity: self.inner.queue.capacity(),
            models: self.inner.registry.list(),
            uptime_seconds: m.started.elapsed().as_secs_f64(),
            request_id: None,
        }
    }

    fn handle_load(&self, model_id: &str, path: &str, request_id: u64) -> Response {
        if self.shutting_down() {
            return error(ErrorCode::ShuttingDown, "server is draining");
        }
        match self.inner.registry.load_from_path(model_id, path) {
            Ok(fingerprint) => {
                deept_telemetry::info!(
                    "serve",
                    "req-{request_id}: loaded model {model_id:?} from {path} \
                     (fingerprint {fingerprint})"
                );
                Response::ModelLoaded {
                    model_id: model_id.to_string(),
                    fingerprint,
                    request_id: None,
                }
            }
            Err(e) => error(
                ErrorCode::BadRequest,
                &format!("could not load checkpoint {path}: {e}"),
            ),
        }
    }

    fn handle_shutdown(&self, request_id: u64) -> Response {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Refuse new submissions but let queued jobs drain to the workers.
        self.inner.queue.close();
        let m = &self.inner.metrics;
        let queued = m.queue_depth.value() as u64;
        let in_flight = m.in_flight.value() as u64;
        deept_telemetry::info!(
            "serve",
            "req-{request_id}: shutdown requested; draining {queued} queued + \
             {in_flight} in-flight jobs"
        );
        Response::ShuttingDown {
            pending: queued + in_flight,
            request_id: None,
        }
    }

    fn handle_certify(&self, req: CertifyRequest, request_id: u64, arrival: Instant) -> Response {
        if self.shutting_down() {
            return error(ErrorCode::ShuttingDown, "server is draining");
        }
        let Some(norm) = PNorm::parse(&req.norm) else {
            return error(
                ErrorCode::BadRequest,
                &format!("unknown norm {:?} (expected 1, 2 or inf)", req.norm),
            );
        };
        let Some(variant) = Variant::parse(&req.variant) else {
            return error(
                ErrorCode::BadRequest,
                &format!(
                    "unknown variant {:?} (expected fast, precise, combined or refine)",
                    req.variant
                ),
            );
        };
        let query = match (req.eps, req.radius_search) {
            (Some(eps), None) => {
                if !(eps.is_finite() && eps >= 0.0) {
                    return error(ErrorCode::BadRequest, "eps must be finite and non-negative");
                }
                Query::Eps(eps)
            }
            (None, Some(spec)) => {
                if !(spec.start.is_finite() && spec.start > 0.0) {
                    return error(
                        ErrorCode::BadRequest,
                        "radius_search.start must be finite and positive",
                    );
                }
                Query::RadiusSearch(spec)
            }
            _ => {
                return error(
                    ErrorCode::BadRequest,
                    "specify exactly one of eps and radius_search",
                );
            }
        };
        if variant == Variant::Refine && matches!(query, Query::RadiusSearch(_)) {
            return error(
                ErrorCode::BadRequest,
                "variant \"refine\" supports eps queries only",
            );
        }
        let Some(entry) = self.inner.registry.get(&req.model_id) else {
            return error(
                ErrorCode::UnknownModel,
                &format!("no model {:?} in the registry", req.model_id),
            );
        };
        let config = &entry.model.config;
        if req.tokens.is_empty() || req.tokens.len() > config.max_len {
            return error(
                ErrorCode::BadRequest,
                &format!(
                    "token count must be in 1..={} (got {})",
                    config.max_len,
                    req.tokens.len()
                ),
            );
        }
        if let Some(&bad) = req.tokens.iter().find(|&&t| t >= config.vocab_size) {
            return error(
                ErrorCode::BadRequest,
                &format!(
                    "token id {bad} outside vocabulary of size {}",
                    config.vocab_size
                ),
            );
        }
        if req.position >= req.tokens.len() {
            return error(
                ErrorCode::BadRequest,
                &format!(
                    "position {} outside token sequence of length {}",
                    req.position,
                    req.tokens.len()
                ),
            );
        }
        // The budget starts at arrival: queue wait counts against it.
        let deadline = Deadline::after_ms(req.deadline_ms.or(self.inner.cfg.default_deadline_ms));
        let key = CacheKey {
            fingerprint: entry.fingerprint.clone(),
            tokens: req.tokens.clone(),
            position: req.position,
            norm,
            variant,
            query: match query {
                Query::Eps(eps) => QueryKey::Eps(eps.to_bits()),
                Query::RadiusSearch(spec) => {
                    QueryKey::RadiusSearch(spec.start.to_bits(), spec.iters)
                }
            },
        };
        let m = &self.inner.metrics;
        m.model_requests(&req.model_id).inc();
        let lookup_started = Instant::now();
        let cached = lock(&self.inner.cache).get(&key);
        m.cache_lookup
            .observe(lookup_started.elapsed().as_secs_f64());
        if let Some((label, result)) = cached {
            m.cache_hits.inc();
            m.total.observe(arrival.elapsed().as_secs_f64());
            deept_telemetry::debug!("serve", "req-{request_id}: cache hit");
            return Response::Certify {
                model_id: req.model_id,
                fingerprint: entry.fingerprint.clone(),
                label,
                result,
                cached: true,
                trace: None,
                request_id: None,
            };
        }
        let (reply, result_rx) = mpsc::channel();
        let job = Job {
            entry,
            spec: JobSpec {
                request_id,
                model_id: req.model_id,
                tokens: req.tokens,
                position: req.position,
                norm,
                variant,
                query,
                deadline,
                want_trace: req.trace,
                key,
            },
            submitted: Instant::now(),
            reply,
        };
        match self.inner.queue.submit(job) {
            Ok(()) => {
                m.cache_misses.inc();
                m.queue_depth.add(1.0);
                deept_telemetry::debug!("serve", "req-{request_id}: queued");
            }
            Err(SubmitError::Overloaded) => {
                m.overloaded.inc();
                return error(
                    ErrorCode::Overloaded,
                    &format!(
                        "job queue is full ({} waiting); retry later",
                        self.inner.queue.capacity()
                    ),
                );
            }
            Err(SubmitError::Closed) => {
                return error(ErrorCode::ShuttingDown, "server is draining");
            }
        }
        let response = match result_rx.recv() {
            Ok(response) => response,
            Err(_) => error(ErrorCode::Internal, "worker dropped the reply channel"),
        };
        m.total.observe(arrival.elapsed().as_secs_f64());
        response
    }

    /// Binds `addr` and serves until a `shutdown` request arrives, then
    /// drains and returns.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if binding or accepting fails.
    pub fn serve_tcp(&self, addr: &str) -> io::Result<()> {
        self.serve_listener(TcpListener::bind(addr)?)
    }

    /// Serves an already-bound listener (useful with an ephemeral port)
    /// until a `shutdown` request arrives, then drains and returns.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if accepting fails.
    pub fn serve_listener(&self, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        if let Ok(addr) = listener.local_addr() {
            deept_telemetry::info!("serve", "listening on {addr}");
        }
        while !self.shutting_down() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let server = self.clone();
                    let handle = thread::Builder::new()
                        .name("deept-conn".to_string())
                        .spawn(move || serve_connection(&server, stream))
                        .expect("spawn connection thread");
                    lock(&self.inner.connections).push(handle);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.drain();
        Ok(())
    }

    /// Speaks the protocol over a `BufRead`/`Write` pair: one request per
    /// line, one response per line. EOF or a `shutdown` request ends the
    /// session; either way queued jobs drain before this returns.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if reading or writing fails.
    pub fn serve_stdio(&self, reader: impl BufRead, mut writer: impl Write) -> io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = match protocol::parse_request(&line) {
                Ok(req) => self.handle(req),
                Err(e) => error(ErrorCode::BadRequest, &format!("malformed request: {e}")),
            };
            let is_shutdown = matches!(response, Response::ShuttingDown { .. });
            protocol::write_line(&mut writer, &response)?;
            if is_shutdown {
                break;
            }
        }
        self.drain();
        Ok(())
    }

    /// Stops intake, drains queued and in-flight jobs, joins workers and
    /// connection threads, and logs the final counter summary. Idempotent.
    pub fn drain(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue.close();
        let workers = std::mem::take(&mut *lock(&self.inner.workers));
        for handle in workers {
            let _ = handle.join();
        }
        let connections = std::mem::take(&mut *lock(&self.inner.connections));
        for handle in connections {
            let _ = handle.join();
        }
        deept_telemetry::info!("serve", "{}", self.stats().render_summary());
    }

    /// Binds a plain-TCP HTTP/1.0 scrape listener on `addr` and serves it
    /// from a background thread until the server drains. Returns the bound
    /// address (useful with an ephemeral port such as `127.0.0.1:0`).
    ///
    /// `GET /metrics` answers with the merged registry snapshot in
    /// Prometheus text exposition format 0.0.4; `GET /profile` answers with
    /// the self-profiler's collapsed-stack text (flamegraph-compatible).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if binding fails.
    pub fn spawn_metrics_listener(&self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        deept_telemetry::info!("serve", "metrics listener on http://{bound}/metrics");
        let server = self.clone();
        let handle = thread::Builder::new()
            .name("deept-metrics".to_string())
            .spawn(move || {
                while !server.shutting_down() {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // Scrapes are cheap (snapshot + render); handle
                            // them inline so drain has one thread to join.
                            let _ = serve_scrape(&server, stream);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn metrics listener thread");
        lock(&self.inner.connections).push(handle);
        Ok(bound)
    }
}

fn error(code: ErrorCode, message: &str) -> Response {
    Response::Error {
        code,
        message: message.to_string(),
        request_id: None,
    }
}

fn verifier_config(variant: Variant, reduction_budget: usize) -> DeepTConfig {
    match variant {
        Variant::Fast => DeepTConfig::fast(reduction_budget),
        Variant::Precise => DeepTConfig::precise(reduction_budget),
        Variant::Combined => DeepTConfig::combined(reduction_budget),
        // The refinement ladder manages its own per-level budgets and
        // never goes through a single flat config.
        Variant::Refine => unreachable!("refine jobs bypass the flat verifier config"),
    }
}

fn worker_loop(inner: &Inner) {
    while let Some(job) = inner.queue.next() {
        let m = &inner.metrics;
        m.queue_depth.sub(1.0);
        m.queue_wait.observe(job.submitted.elapsed().as_secs_f64());
        m.in_flight.add(1.0);
        let started = Instant::now();
        let response = run_job(inner, &job.entry, &job.spec);
        m.propagation.observe(started.elapsed().as_secs_f64());
        m.in_flight.sub(1.0);
        m.completed.inc();
        deept_telemetry::debug!(
            "serve",
            "req-{}: completed in {:.1} ms",
            job.spec.request_id,
            started.elapsed().as_secs_f64() * 1e3
        );
        // The requester may have disconnected; dropping the reply is fine.
        let _ = job.reply.send(response);
    }
}

fn run_job(inner: &Inner, entry: &ModelEntry, spec: &JobSpec) -> Response {
    let label = entry.model.predict(&spec.tokens);
    let emb = entry.model.embed(&spec.tokens);
    let collector = spec.want_trace.then(TraceCollector::new);
    // Trace requests get the full collector; otherwise the span stream
    // feeds the sampling self-profiler, unless metrics are disabled
    // entirely (`DEEPT_METRICS=off`), which restores the zero-probe path.
    let probe: &dyn Probe = match &collector {
        Some(c) => c,
        None if deept_metrics::enabled() => &inner.profiler,
        None => &NoopProbe,
    };
    let outcome: Result<CertifyResult, String> = if spec.variant == Variant::Refine {
        // `handle_certify` rejects refine radius searches up front.
        let Query::Eps(eps) = spec.query else {
            unreachable!("refine radius searches are rejected at validation")
        };
        let report = refine_certify_probed(
            &entry.model,
            &spec.tokens,
            spec.position,
            eps,
            spec.norm,
            label,
            &RefineConfig::default(),
            spec.deadline,
            probe,
        );
        if report.timed_out {
            // A ladder cut short by the deadline yields a timeout error,
            // never a cached partial verdict (the PR 3 rule).
            Err(format!(
                "refinement deadline exceeded after {} nodes at the {} level",
                report.nodes_explored,
                report.level.as_str()
            ))
        } else {
            let margin = match &report.outcome {
                RefineOutcome::Certified { margin } => Some(*margin),
                RefineOutcome::Unknown { lower_bound } if lower_bound.is_finite() => {
                    Some(*lower_bound)
                }
                _ => None,
            };
            Ok(CertifyResult::Refined {
                verdict: report.outcome.verdict().to_string(),
                margin,
                level: report.level.as_str().to_string(),
                nodes: report.nodes_explored,
            })
        }
    } else {
        let cfg = verifier_config(spec.variant, inner.cfg.reduction_budget);
        match spec.query {
            Query::Eps(eps) => {
                let region = t1_region(&emb, spec.position, eps, spec.norm);
                match certify_deadline_probed(
                    &entry.net,
                    &region,
                    label,
                    &cfg,
                    spec.deadline,
                    probe,
                ) {
                    Ok(res) => Ok(CertifyResult::Fixed {
                        certified: res.certified,
                        margins: res.margins,
                    }),
                    Err(DeadlineExceeded) => Err("certification deadline exceeded".to_string()),
                }
            }
            Query::RadiusSearch(search) => {
                let mut queries = 0usize;
                let outcome = max_certified_radius_deadline(
                    |radius| -> Result<bool, DeadlineExceeded> {
                        queries += 1;
                        let region = t1_region(&emb, spec.position, radius, spec.norm);
                        let res = certify_deadline_probed(
                            &entry.net,
                            &region,
                            label,
                            &cfg,
                            spec.deadline,
                            probe,
                        )?;
                        Ok(res.certified)
                    },
                    search.start,
                    search.iters,
                    spec.deadline,
                    probe,
                );
                match outcome {
                    RadiusOutcome::Completed(radius) => {
                        Ok(CertifyResult::Radius { radius, queries })
                    }
                    RadiusOutcome::TimedOut {
                        lower_bound,
                        queries,
                    } => Err(format!(
                        "radius search deadline exceeded after {queries} queries; \
                     largest certified radius so far {lower_bound}"
                    )),
                }
            }
        }
    };
    match outcome {
        Ok(result) => {
            lock(&inner.cache).insert(spec.key.clone(), (label, result.clone()));
            let trace = collector.map(|c| {
                let mut t = c.finish();
                t.set_meta("verifier", &format!("DeepT-{}", spec.variant));
                t.set_meta("norm", &spec.norm.to_string());
                t.set_meta("model", &spec.model_id);
                t.set_meta("fingerprint", &entry.fingerprint);
                let kernel = deept_tensor::parallel::kernel_mode();
                t.set_meta("kernel", kernel.label());
                t.set_meta(
                    "isa",
                    match kernel {
                        deept_tensor::parallel::KernelMode::Simd => {
                            deept_tensor::simd::active_isa().label()
                        }
                        _ => "scalar",
                    },
                );
                t.set_meta(
                    "prec",
                    if deept_core::eps::prec_f32() {
                        "f32"
                    } else {
                        "f64"
                    },
                );
                serde_json::from_str(&t.to_json()).unwrap_or(serde_json::Value::Null)
            });
            Response::Certify {
                model_id: spec.model_id.clone(),
                fingerprint: entry.fingerprint.clone(),
                label,
                result,
                cached: false,
                trace,
                request_id: Some(spec.request_id),
            }
        }
        Err(message) => {
            inner.metrics.deadline_timeouts.inc();
            let mut resp = error(ErrorCode::Timeout, &message);
            resp.set_request_id(spec.request_id);
            resp
        }
    }
}

/// Answers one HTTP/1.0 scrape request on `stream` and closes it.
fn serve_scrape(server: &Server, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // "GET /metrics HTTP/1.1" — only the path matters; remaining headers
    // are ignored (the socket closes after the response anyway).
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                server.metrics_snapshot().to_prometheus(),
            ),
            "/profile" => (
                "200 OK",
                "text/plain; charset=utf-8",
                server.profiler().collapsed(),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "try /metrics or /profile\n".to_string(),
            ),
        }
    };
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

fn serve_connection(server: &Server, stream: TcpStream) {
    // Connection failures only affect this client; the listener keeps
    // accepting, so errors are simply dropped here.
    let _ = serve_connection_io(server, stream);
}

fn serve_connection_io(server: &Server, stream: TcpStream) -> io::Result<()> {
    // A finite read timeout lets the thread notice shutdown between
    // requests; partial lines accumulated across timeouts are preserved
    // in `line` until the newline arrives.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    loop {
        let n = match reader.read_until(b'\n', &mut line) {
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if server.shutting_down() {
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        // n == 0 or a missing trailing newline both mean EOF; any bytes
        // left in `line` form a final unterminated request.
        let eof = n == 0 || !line.ends_with(b"\n");
        if line.iter().any(|b| !b.is_ascii_whitespace()) {
            let text = String::from_utf8_lossy(&line).into_owned();
            line.clear();
            let response = match protocol::parse_request(&text) {
                Ok(req) => server.handle(req),
                Err(e) => error(ErrorCode::BadRequest, &format!("malformed request: {e}")),
            };
            protocol::write_line(&mut writer, &response)?;
        } else {
            line.clear();
        }
        if eof {
            break;
        }
    }
    Ok(())
}
