//! Named models the server can certify against.
//!
//! Models enter the registry either from fingerprinted checkpoints on
//! disk ([`ModelRegistry::load_from_path`], used by the `load_model`
//! request and `deept serve --model id=path` preloading) or directly as
//! in-memory models ([`ModelRegistry::insert`], used by tests). Each entry
//! pre-builds the verifier-facing [`VerifiableTransformer`] once so
//! workers share it instead of re-deriving it per request, and carries the
//! checkpoint's content fingerprint, which keys the result cache.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::sync::lock;

use deept_nn::checkpoint::{self, CheckpointError};
use deept_nn::transformer::TransformerClassifier;
use deept_verifier::network::VerifiableTransformer;

/// A registered model, shared read-only across workers.
pub struct ModelEntry {
    /// The full model (embedder + encoder), used for concrete prediction
    /// and embedding.
    pub model: TransformerClassifier,
    /// The verifier-facing view, built once at registration.
    pub net: VerifiableTransformer,
    /// Content fingerprint of the model (cache-key component).
    pub fingerprint: String,
}

/// A thread-safe name → model map.
#[derive(Default)]
pub struct ModelRegistry {
    entries: Mutex<HashMap<String, Arc<ModelEntry>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a fingerprint-verified checkpoint and registers it under
    /// `model_id`, replacing any previous binding. Returns the
    /// fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] if the file is missing, malformed, or
    /// fails fingerprint verification.
    pub fn load_from_path(
        &self,
        model_id: &str,
        path: impl AsRef<Path>,
    ) -> Result<String, CheckpointError> {
        let ckpt = checkpoint::load::<TransformerClassifier>(path)?;
        self.register(model_id, ckpt.model, ckpt.fingerprint.clone());
        Ok(ckpt.fingerprint)
    }

    /// Registers an in-memory model, fingerprinting it on the spot.
    /// Returns the fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Json`] if the model fails to serialize
    /// for fingerprinting.
    pub fn insert(
        &self,
        model_id: &str,
        model: TransformerClassifier,
    ) -> Result<String, CheckpointError> {
        let fingerprint = checkpoint::fingerprint(&model)?;
        self.register(model_id, model, fingerprint.clone());
        Ok(fingerprint)
    }

    fn register(&self, model_id: &str, model: TransformerClassifier, fingerprint: String) {
        let net = VerifiableTransformer::from(&model);
        let entry = Arc::new(ModelEntry {
            model,
            net,
            fingerprint,
        });
        lock(&self.entries).insert(model_id.to_string(), entry);
    }

    /// Looks up a model by registry name.
    pub fn get(&self, model_id: &str) -> Option<Arc<ModelEntry>> {
        lock(&self.entries).get(model_id).cloned()
    }

    /// Registered names, sorted for stable `status` responses.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = lock(&self.entries).keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        lock(&self.entries).len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deept_nn::transformer::{LayerNormKind, TransformerConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_model(seed: u64) -> TransformerClassifier {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        TransformerClassifier::new(
            TransformerConfig {
                vocab_size: 8,
                max_len: 4,
                embed_dim: 8,
                num_heads: 2,
                hidden_dim: 8,
                num_layers: 1,
                num_classes: 2,
                layer_norm: LayerNormKind::NoStd,
            },
            &mut rng,
        )
    }

    #[test]
    fn insert_and_get() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let fp = reg.insert("toy", tiny_model(0)).unwrap();
        let entry = reg.get("toy").expect("registered");
        assert_eq!(entry.fingerprint, fp);
        assert_eq!(entry.net.num_classes, 2);
        assert!(reg.get("other").is_none());
    }

    #[test]
    fn load_from_checkpoint_preserves_fingerprint() {
        let dir = std::env::temp_dir().join(format!("deept-reg-{}", std::process::id()));
        let path = dir.join("toy.json");
        let model = tiny_model(1);
        let saved_fp = checkpoint::save(&model, &path).unwrap();
        let reg = ModelRegistry::new();
        let fp = reg.load_from_path("toy", &path).unwrap();
        assert_eq!(fp, saved_fp);
        assert_eq!(reg.get("toy").unwrap().model, model);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rebinding_replaces_and_list_is_sorted() {
        let reg = ModelRegistry::new();
        let fp0 = reg.insert("b", tiny_model(0)).unwrap();
        reg.insert("a", tiny_model(1)).unwrap();
        let fp2 = reg.insert("b", tiny_model(2)).unwrap();
        assert_ne!(fp0, fp2);
        assert_eq!(reg.get("b").unwrap().fingerprint, fp2);
        assert_eq!(reg.list(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn missing_checkpoint_errors() {
        let reg = ModelRegistry::new();
        assert!(reg
            .load_from_path("x", "/definitely/not/here.json")
            .is_err());
    }
}
