//! LRU cache for certification results.
//!
//! Certification is deterministic — the same model, input and verifier
//! configuration always produce the same bounds — so results can be cached
//! and replayed bit for bit. The key captures everything the result
//! depends on: the model's *content fingerprint* (not its registry name,
//! which can be rebound), the token sequence, the perturbed position, the
//! norm, the verifier variant and the query itself with radii compared by
//! their exact bit patterns ([`f64::to_bits`]), so `0.1` and
//! `0.1 + 1e-18` are distinct keys rather than silently aliased.
//!
//! The cache is a plain `HashMap` with logical-clock stamps: `get`
//! freshens the entry's stamp, and inserting beyond capacity evicts the
//! stalest entry with an `O(n)` scan. At serving-cache sizes (hundreds of
//! entries, each guarding seconds of verifier work) the scan is noise; a
//! doubly-linked list would buy nothing but index juggling.

use std::collections::HashMap;
use std::hash::Hash;

use deept_core::PNorm;

use crate::protocol::Variant;

/// What a cached certification result depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content fingerprint of the model (from its checkpoint).
    pub fingerprint: String,
    /// Token ids of the certified sequence.
    pub tokens: Vec<usize>,
    /// Perturbed position.
    pub position: usize,
    /// Perturbation norm.
    pub norm: PNorm,
    /// Verifier variant.
    pub variant: Variant,
    /// The query: fixed ε or a radius search, radii keyed by bit pattern.
    pub query: QueryKey,
}

/// The query half of a [`CacheKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKey {
    /// Fixed-radius certification; the payload is `eps.to_bits()`.
    Eps(u64),
    /// Radius search with `(start.to_bits(), iters)`.
    RadiusSearch(u64, usize),
    /// T2 synonym sweep with `(dist.to_bits(), k)` — the synonym-set
    /// parameters fully determine the sets for a given checkpoint, and
    /// the fingerprint is already part of the key.
    Synonyms(u64, usize),
}

struct Entry<V> {
    value: V,
    stamp: u64,
}

/// A least-recently-used map with a fixed capacity.
pub struct LruCache<K, V> {
    entries: HashMap<K, Entry<V>>,
    capacity: usize,
    clock: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// A cache holding at most `capacity` entries; zero capacity caches
    /// nothing (every `get` misses, every `insert` is dropped).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            entries: HashMap::new(),
            capacity,
            clock: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up `key`, freshening it on a hit. The value is *cloned* —
    /// fine for the small result payloads this cache holds, wrong for
    /// multi-megabyte layer snapshots, which live in the `Arc`-sharing
    /// [`crate::state_cache::StateCache`] instead.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let stamp = self.tick();
        let entry = self.entries.get_mut(key)?;
        entry.stamp = stamp;
        Some(entry.value.clone())
    }

    /// Inserts or replaces `key`, evicting the least recently used entry
    /// if the cache would overflow.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.tick();
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            let stalest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            if let Some(stalest) = stalest {
                self.entries.remove(&stalest);
            }
        }
        self.entries.insert(key, Entry { value, stamp });
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(eps: f64) -> CacheKey {
        CacheKey {
            fingerprint: "f".into(),
            tokens: vec![1, 2],
            position: 0,
            norm: PNorm::L2,
            variant: Variant::Fast,
            query: QueryKey::Eps(eps.to_bits()),
        }
    }

    #[test]
    fn hit_returns_inserted_value() {
        let mut c = LruCache::new(4);
        c.insert(key(0.1), 42u32);
        assert_eq!(c.get(&key(0.1)), Some(42));
        assert_eq!(c.get(&key(0.2)), None);
    }

    #[test]
    fn bit_distinct_radii_are_distinct_keys() {
        let mut c = LruCache::new(4);
        let eps = 0.1f64;
        let nudged = f64::from_bits(eps.to_bits() + 1);
        c.insert(key(eps), 1u32);
        assert_eq!(c.get(&key(nudged)), None);
        assert_eq!(c.get(&key(eps)), Some(1));
    }

    #[test]
    fn fingerprint_and_variant_partition_the_cache() {
        let mut c = LruCache::new(8);
        let mut other_model = key(0.1);
        other_model.fingerprint = "g".into();
        let mut other_variant = key(0.1);
        other_variant.variant = Variant::Precise;
        c.insert(key(0.1), 1u32);
        c.insert(other_model.clone(), 2);
        c.insert(other_variant.clone(), 3);
        assert_eq!(c.get(&key(0.1)), Some(1));
        assert_eq!(c.get(&other_model), Some(2));
        assert_eq!(c.get(&other_variant), Some(3));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1u32);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // freshen a; b is now stalest
        c.insert("c", 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
    }

    #[test]
    fn replacing_existing_key_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert("a", 1u32);
        c.insert("b", 2);
        c.insert("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(10));
        assert_eq!(c.get(&"b"), Some(2));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        c.insert("a", 1u32);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }
}
