//! Cross-request zonotope state cache: per-layer propagation snapshots,
//! keyed by `(checkpoint fingerprint, input-region hash, DeepTConfig hash,
//! norm, layer index)`, held in a byte-budgeted LRU.
//!
//! A warm query whose input region, config, norm and checkpoint *exactly*
//! match a cached cold run resumes propagation after the deepest cached
//! layer instead of from layer 0 — retried queries (deadline retries,
//! escalations, synonym sweeps over the same base sentence) reuse the
//! shared prefix for free, and the resumed result is bitwise identical to
//! a cold start (pinned by `resume_identity` tests and the
//! `fuzz-soundness` resume family).
//!
//! # Soundness discipline
//!
//! The key embeds *hashes* of the region and config, but a hash match is
//! never trusted: every entry stores the exact input region and config it
//! was computed from, and [`StateCache::get`] re-checks both with
//! `PartialEq` before handing out a snapshot. A collision is a miss, not
//! a wrong certificate. There is deliberately **no** token-prefix reuse:
//! self-attention mixes all positions at the first encoder layer, so a
//! snapshot is only valid for a query whose *entire* input region is
//! identical (see DESIGN.md, "Resume soundness").
//!
//! # Sharing discipline
//!
//! Entries are [`Arc`]-shared: a hit clones the `Arc`, never the
//! multi-megabyte snapshot itself (the regression test below pins this —
//! the general-purpose [`crate::cache::LruCache`] clones values on `get`,
//! which is fine for small results and wrong here).

use std::collections::HashMap;
use std::sync::Arc;

use deept_core::{PNorm, Zonotope};
use deept_verifier::deept::DeepTConfig;
use deept_verifier::statehash::{config_hash, region_hash};

/// Cache key of one layer-boundary snapshot. `region` and `cfg` are
/// content hashes; exact equality against the entry's witnesses is
/// re-checked on every hit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateKey {
    /// Checkpoint content fingerprint (pins weights and architecture).
    pub fingerprint: String,
    /// Perturbation norm of the input region.
    pub norm: PNorm,
    /// [`config_hash`] of the verifier configuration.
    pub cfg_hash: u64,
    /// [`region_hash`] of the input region.
    pub region_hash: u64,
    /// The snapshot is the abstract state *after* encoder layer `layer`;
    /// propagation resumes at `layer + 1`.
    pub layer: usize,
}

impl StateKey {
    /// Builds the key for layer `layer` of a run over `region` with `cfg`.
    pub fn for_layer(
        fingerprint: &str,
        norm: PNorm,
        region: &Zonotope,
        cfg: &DeepTConfig,
        layer: usize,
    ) -> StateKey {
        StateKey {
            fingerprint: fingerprint.to_string(),
            norm,
            cfg_hash: config_hash(cfg),
            region_hash: region_hash(region),
            layer,
        }
    }
}

/// One cached snapshot plus the exact-match witnesses that make resuming
/// from it sound.
#[derive(Debug)]
pub struct StateEntry {
    /// The input region the cold run started from (witness, compared with
    /// `PartialEq` on every hit).
    pub region: Zonotope,
    /// The verifier configuration of the cold run (witness).
    pub cfg: DeepTConfig,
    /// The abstract state after encoder layer `key.layer`.
    pub state: Zonotope,
}

impl StateEntry {
    /// Resident bytes of the payload (snapshot + witness region).
    fn bytes(&self) -> usize {
        self.state.resident_bytes() + self.region.resident_bytes()
    }
}

struct Slot {
    entry: Arc<StateEntry>,
    bytes: usize,
    /// Logical timestamp of the last hit or insert (LRU victim = min).
    stamp: u64,
}

/// Byte-budgeted LRU of [`Arc`]-shared layer snapshots. Not synchronized;
/// the server wraps it in a `Mutex`.
pub struct StateCache {
    entries: HashMap<StateKey, Slot>,
    budget: usize,
    resident: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl StateCache {
    /// A cache that holds at most `budget` resident bytes; `0` disables
    /// caching entirely (every `get` misses, every `insert` is dropped).
    pub fn new(budget: usize) -> StateCache {
        StateCache {
            entries: HashMap::new(),
            budget,
            resident: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up the snapshot for `key`, verifying the entry's witnesses
    /// against the *exact* region and config of the new query. Returns an
    /// `Arc` clone — the snapshot itself is never copied.
    pub fn get(
        &mut self,
        key: &StateKey,
        region: &Zonotope,
        cfg: &DeepTConfig,
    ) -> Option<Arc<StateEntry>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(key) {
            // Hash equality got us here; only full equality of the
            // witnesses permits a resume.
            Some(slot) if slot.entry.cfg == *cfg && slot.entry.region == *region => {
                slot.stamp = clock;
                self.hits += 1;
                Some(Arc::clone(&slot.entry))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a snapshot, evicting least-recently-used entries until the
    /// payload fits the byte budget. Snapshots larger than the whole
    /// budget are dropped (never evict the world for one entry).
    pub fn insert(&mut self, key: StateKey, entry: Arc<StateEntry>) {
        let bytes = entry.bytes();
        if bytes > self.budget {
            return;
        }
        self.clock += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.resident -= old.bytes;
        }
        while self.resident + bytes > self.budget {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.stamp)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(slot) = self.entries.remove(&victim) {
                self.resident -= slot.bytes;
                self.evictions += 1;
            }
        }
        self.resident += bytes;
        self.entries.insert(
            key,
            Slot {
                entry,
                bytes,
                stamp: self.clock,
            },
        );
    }

    /// Resident payload bytes currently held.
    pub fn resident_bytes(&self) -> usize {
        self.resident
    }

    /// Number of cached snapshots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deept_tensor::Matrix;

    fn region(seed: f64) -> Zonotope {
        let center = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f64 * 0.1 + seed);
        Zonotope::from_lp_ball(&center, 0.05, PNorm::L2, &[1])
    }

    fn entry(seed: f64, cfg: DeepTConfig) -> Arc<StateEntry> {
        let r = region(seed);
        Arc::new(StateEntry {
            state: r.clone(),
            region: r,
            cfg,
        })
    }

    fn key(seed: f64, cfg: &DeepTConfig, layer: usize) -> StateKey {
        StateKey::for_layer("fp", PNorm::L2, &region(seed), cfg, layer)
    }

    #[test]
    fn hit_shares_the_arc_instead_of_deep_copying() {
        // The satellite-6 regression: `LruCache::get` clones the value on
        // every hit; the state cache must hand out the same allocation.
        let cfg = DeepTConfig::fast(100);
        let mut cache = StateCache::new(1 << 20);
        let e = entry(0.0, cfg);
        cache.insert(key(0.0, &cfg, 0), Arc::clone(&e));
        let hit = cache
            .get(&key(0.0, &cfg, 0), &region(0.0), &cfg)
            .expect("hit");
        assert!(Arc::ptr_eq(&hit, &e), "hit must share the cached Arc");
        // Original + cache slot + hit: no hidden deep copies.
        assert_eq!(Arc::strong_count(&e), 3);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn hash_match_without_exact_equality_is_a_miss() {
        // Force the collision case: same StateKey, different witness
        // region. The exact-equality check must refuse the resume.
        let cfg = DeepTConfig::fast(100);
        let mut cache = StateCache::new(1 << 20);
        let k = key(0.0, &cfg, 0);
        cache.insert(k.clone(), entry(0.0, cfg));
        assert!(
            cache.get(&k, &region(1.0), &cfg).is_none(),
            "colliding key with a different region must miss"
        );
        // Different config under the same key must miss too.
        let other = DeepTConfig::precise(100);
        assert!(cache.get(&k, &region(0.0), &other).is_none());
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let cfg = DeepTConfig::fast(100);
        let one = entry(0.0, cfg).bytes();
        // Room for exactly two entries.
        let mut cache = StateCache::new(2 * one + one / 2);
        cache.insert(key(0.0, &cfg, 0), entry(0.0, cfg));
        cache.insert(key(0.0, &cfg, 1), entry(0.0, cfg));
        assert_eq!(cache.len(), 2);
        // Touch layer 0 so layer 1 is the LRU victim.
        assert!(cache.get(&key(0.0, &cfg, 0), &region(0.0), &cfg).is_some());
        cache.insert(key(0.0, &cfg, 2), entry(0.0, cfg));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&key(0.0, &cfg, 0), &region(0.0), &cfg).is_some());
        assert!(cache.get(&key(0.0, &cfg, 1), &region(0.0), &cfg).is_none());
        assert!(cache.get(&key(0.0, &cfg, 2), &region(0.0), &cfg).is_some());
        assert!(cache.resident_bytes() <= 2 * one + one / 2);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let cfg = DeepTConfig::fast(100);
        let mut cache = StateCache::new(0);
        cache.insert(key(0.0, &cfg, 0), entry(0.0, cfg));
        assert!(cache.is_empty());
        assert!(cache.get(&key(0.0, &cfg, 0), &region(0.0), &cfg).is_none());
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_double_accounting() {
        let cfg = DeepTConfig::fast(100);
        let mut cache = StateCache::new(1 << 20);
        cache.insert(key(0.0, &cfg, 0), entry(0.0, cfg));
        let before = cache.resident_bytes();
        cache.insert(key(0.0, &cfg, 0), entry(0.0, cfg));
        assert_eq!(cache.resident_bytes(), before);
        assert_eq!(cache.len(), 1);
    }
}
