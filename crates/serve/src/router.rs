//! A thin, stateless shard router speaking the JSON-lines protocol.
//!
//! `deept serve --shards N` forks `N` worker processes, each a full
//! [`Server`](crate::server::Server) owning the models routed to it, and
//! runs a [`Router`] in front. The router holds **no model state**: a
//! checkpoint belongs to the shard selected by
//! [`shard_for`]`(fingerprint, N)` — an FNV-1a 64 hash of the content
//! fingerprint modulo the shard count — so a given model always lands on
//! the same shard regardless of load order, and repeated requests for
//! one model hit one result cache.
//!
//! Clients speak the unchanged protocol to the router:
//!
//! * `load_model` — the router peeks the checkpoint envelope for its
//!   fingerprint (without deserializing the weights), forwards the load
//!   to the owning shard and records the `model_id → shard` assignment;
//! * `certify` — forwarded to the assigned shard over a persistent
//!   connection;
//! * `status` / `metrics` — aggregated across every shard: counters are
//!   summed, per-shard metric families are relabeled with a `shard`
//!   label and merged, so one Prometheus scrape of the router sees the
//!   whole fleet;
//! * `shutdown` — broadcast to every shard; each drains its queue, then
//!   the router itself drains and exits.
//!
//! The router reuses the nonblocking [`event_loop`] front end: one I/O
//! thread multiplexes client connections while a small pool of forwarder
//! threads does the blocking shard round-trips. Per-shard queue-depth
//! gauges and latency histograms (`deept_router_shard_*{shard="i"}`)
//! expose routing imbalance.

use std::collections::HashMap;
use std::io::{self};
use std::net::{SocketAddr, TcpListener};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use deept_metrics::{Counter, Gauge, Histogram, Registry, RegistrySnapshot};
use serde::Deserialize;

use crate::client::Client;
use crate::event_loop::{self, ReplyHandle};
use crate::protocol::{ErrorCode, Request, Response, StatusReport};
use crate::queue::{JobQueue, SubmitError};
use crate::server::{error, spawn_scrape_listener, ReplySink, ScrapeSource};
use crate::sync::lock;

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Shard addresses (`host:port`), one per worker process. The shard
    /// index in this vector is the routing target of [`shard_for`].
    pub shards: Vec<String>,
    /// Forwarder threads doing the blocking shard round-trips.
    pub forwarders: usize,
    /// Bounded forward-queue capacity; submissions beyond it are
    /// rejected with `overloaded`, mirroring the single-server queue.
    pub queue_capacity: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: Vec::new(),
            forwarders: 4,
            queue_capacity: 64,
        }
    }
}

/// The shard owning `fingerprint` among `shards` workers: FNV-1a 64 of
/// the fingerprint string, modulo the shard count. Deterministic, so a
/// checkpoint always routes to the same shard.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn shard_for(fingerprint: &str, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    (deept_nn::checkpoint::fnv1a_64(fingerprint.as_bytes()) % shards as u64) as usize
}

/// The checkpoint envelope's cheap prefix: format tag and fingerprint,
/// with the (large) model payload parsed but not materialized.
#[derive(Deserialize)]
struct EnvelopePeek {
    format: String,
    fingerprint: String,
}

/// Reads just the routing fingerprint out of a checkpoint file.
///
/// # Errors
///
/// Returns an error when the file is unreadable, not JSON, or not a
/// `deept-checkpoint-v1` envelope.
pub fn peek_fingerprint(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(Path::new(path))
        .map_err(|e| format!("could not read checkpoint {path}: {e}"))?;
    let peek: EnvelopePeek = serde_json::from_str(&text)
        .map_err(|e| format!("checkpoint {path} is not a valid envelope: {e}"))?;
    if peek.format != "deept-checkpoint-v1" {
        return Err(format!(
            "checkpoint {path} has format tag {:?}, expected \"deept-checkpoint-v1\"",
            peek.format
        ));
    }
    Ok(peek.fingerprint)
}

/// Where a forwarded request goes.
enum Target {
    /// One shard, by index.
    Shard(usize),
    /// Every shard, aggregating the responses (status/metrics/shutdown).
    Broadcast,
}

struct ForwardJob {
    target: Target,
    request: Request,
    request_id: u64,
    arrival: Instant,
    reply: ReplySink,
}

struct RouterMetrics {
    registry: Registry,
    started: Instant,
    received: Counter,
    forwarded: Counter,
    forward_errors: Counter,
    overloaded: Counter,
    /// Per-shard jobs queued or in flight toward that shard.
    shard_depth: Vec<Gauge>,
    /// Per-shard round-trip latency (send → response).
    shard_latency: Vec<Histogram>,
}

impl RouterMetrics {
    fn new(shards: usize) -> RouterMetrics {
        let registry = Registry::new();
        let received = registry.counter(
            "deept_router_requests_total",
            "Requests read off router connections.",
        );
        let forwarded = registry.counter(
            "deept_router_forwarded_total",
            "Requests forwarded to a shard (broadcasts count once per shard).",
        );
        let forward_errors = registry.counter(
            "deept_router_forward_errors_total",
            "Shard round-trips that failed after one reconnect attempt.",
        );
        let overloaded = registry.counter(
            "deept_router_overloaded_total",
            "Requests rejected because the forward queue was full.",
        );
        let mut shard_depth = Vec::with_capacity(shards);
        let mut shard_latency = Vec::with_capacity(shards);
        for i in 0..shards {
            let label = i.to_string();
            shard_depth.push(registry.gauge_with(
                "deept_router_shard_queue_depth",
                &[("shard", &label)],
                "Requests queued or in flight toward this shard.",
            ));
            shard_latency.push(registry.histogram_with(
                "deept_router_shard_latency_seconds",
                &[("shard", &label)],
                "Shard round-trip latency, send to response.",
            ));
        }
        RouterMetrics {
            registry,
            started: Instant::now(),
            received,
            forwarded,
            forward_errors,
            overloaded,
            shard_depth,
            shard_latency,
        }
    }
}

struct RouterInner {
    cfg: RouterConfig,
    /// `model_id → shard index`, recorded on successful `load_model`.
    assignments: Mutex<HashMap<String, usize>>,
    queue: JobQueue<ForwardJob>,
    metrics: RouterMetrics,
    next_request_id: AtomicU64,
    shutdown: AtomicBool,
    forwarders: Mutex<Vec<JoinHandle<()>>>,
    service_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A running shard router; clones share the same instance.
pub struct Router {
    inner: Arc<RouterInner>,
}

impl Clone for Router {
    fn clone(&self) -> Self {
        Router {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Router {
    /// Starts the forwarder pool and returns the router.
    ///
    /// Like the worker pool, forwarders that fail to spawn degrade the
    /// pool instead of panicking; with zero forwarders the queue is
    /// closed so requests fail fast instead of hanging.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards` is empty — a router with nothing behind it
    /// is a configuration error, not a runtime state.
    pub fn new(cfg: RouterConfig) -> Router {
        assert!(!cfg.shards.is_empty(), "router needs at least one shard");
        let forwarders = cfg.forwarders.max(1);
        let queue_capacity = cfg.queue_capacity.max(1);
        let shards = cfg.shards.len();
        let router = Router {
            inner: Arc::new(RouterInner {
                assignments: Mutex::new(HashMap::new()),
                queue: JobQueue::new(queue_capacity),
                metrics: RouterMetrics::new(shards),
                next_request_id: AtomicU64::new(1),
                shutdown: AtomicBool::new(false),
                forwarders: Mutex::new(Vec::new()),
                service_threads: Mutex::new(Vec::new()),
                cfg,
            }),
        };
        let mut handles = Vec::with_capacity(forwarders);
        for i in 0..forwarders {
            let inner = Arc::clone(&router.inner);
            match thread::Builder::new()
                .name(format!("deept-forward-{i}"))
                .spawn(move || forwarder_loop(&inner))
            {
                Ok(handle) => handles.push(handle),
                Err(e) => deept_telemetry::warn!(
                    "router",
                    "could not spawn forwarder {i}: {e}; continuing with {} forwarder(s)",
                    handles.len()
                ),
            }
        }
        if handles.is_empty() {
            deept_telemetry::warn!(
                "router",
                "no forwarder threads could be spawned; requests will be refused"
            );
            router.inner.queue.close();
        }
        *lock(&router.inner.forwarders) = handles;
        router
    }

    /// Shard addresses this router fronts, in index order.
    pub fn shards(&self) -> &[String] {
        &self.inner.cfg.shards
    }

    /// The shard index a model id is currently assigned to, if loaded.
    pub fn assignment(&self, model_id: &str) -> Option<usize> {
        lock(&self.inner.assignments).get(model_id).copied()
    }

    /// Whether a shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// The router's own registry snapshot (no shard contact); the
    /// `metrics` request additionally merges relabeled shard snapshots.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.inner.metrics.registry.snapshot()
    }

    /// Handles one request synchronously (used by tests and stdio).
    pub fn handle(&self, req: Request) -> Response {
        let id = self.inner.next_request_id.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.received.inc();
        let (tx, rx) = mpsc::channel();
        let mut response = match self.route(req, id, ReplySink::Sync(tx)) {
            Some(inline) => inline,
            None => match rx.recv() {
                Ok(response) => response,
                Err(_) => error(ErrorCode::Internal, "forwarder dropped the reply channel"),
            },
        };
        response.set_request_id(id);
        response
    }

    /// Routes one request: `Some` when answered inline (validation
    /// failures, overload), `None` when queued for a forwarder.
    fn route(&self, req: Request, request_id: u64, reply: ReplySink) -> Option<Response> {
        if self.shutting_down() && !matches!(req, Request::Shutdown) {
            return Some(error(ErrorCode::ShuttingDown, "router is draining"));
        }
        let target = match &req {
            Request::Certify(c) => match self.assignment(&c.model_id) {
                Some(shard) => Target::Shard(shard),
                None => {
                    return Some(error(
                        ErrorCode::UnknownModel,
                        &format!("no model {:?} loaded through this router", c.model_id),
                    ));
                }
            },
            Request::LoadModel { path, .. } => match peek_fingerprint(path) {
                Ok(fingerprint) => {
                    let shard = shard_for(&fingerprint, self.inner.cfg.shards.len());
                    deept_telemetry::debug!(
                        "router",
                        "req-{request_id}: fingerprint {fingerprint} routes to shard {shard}"
                    );
                    Target::Shard(shard)
                }
                Err(e) => return Some(error(ErrorCode::BadRequest, &e)),
            },
            Request::Status | Request::Metrics | Request::Shutdown => Target::Broadcast,
        };
        if matches!(req, Request::Shutdown) {
            // Start draining immediately: the event loop stops accepting
            // while the broadcast job tells every shard to drain.
            self.inner.shutdown.store(true, Ordering::SeqCst);
        }
        let depth_shard = match target {
            Target::Shard(shard) => Some(shard),
            Target::Broadcast => None,
        };
        if let Some(shard) = depth_shard {
            self.inner.metrics.shard_depth[shard].add(1.0);
        }
        let job = ForwardJob {
            target,
            request: req,
            request_id,
            arrival: Instant::now(),
            reply,
        };
        match self.inner.queue.submit(job) {
            Ok(()) => None,
            Err(e) => {
                // Undo the depth bump for refused jobs.
                if let Some(shard) = depth_shard {
                    self.inner.metrics.shard_depth[shard].sub(1.0);
                }
                Some(match e {
                    SubmitError::Overloaded => {
                        self.inner.metrics.overloaded.inc();
                        error(
                            ErrorCode::Overloaded,
                            "router forward queue is full; retry later",
                        )
                    }
                    SubmitError::Closed => error(ErrorCode::ShuttingDown, "router is draining"),
                })
            }
        }
    }

    /// Serves an already-bound listener with the nonblocking event loop
    /// until a `shutdown` request has been broadcast, then drains.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if polling fails; the router is
    /// drained either way.
    pub fn serve_listener(&self, listener: TcpListener) -> io::Result<()> {
        let result = event_loop::run(self, listener);
        self.drain();
        result
    }

    /// Binds `addr` and serves until shutdown.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if binding or polling fails.
    pub fn serve_tcp(&self, addr: &str) -> io::Result<()> {
        self.serve_listener(TcpListener::bind(addr)?)
    }

    /// Stops intake and joins the forwarder pool. Idempotent.
    pub fn drain(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue.close();
        let forwarders = std::mem::take(&mut *lock(&self.inner.forwarders));
        for handle in forwarders {
            let _ = handle.join();
        }
        let service = std::mem::take(&mut *lock(&self.inner.service_threads));
        for handle in service {
            let _ = handle.join();
        }
    }

    /// Binds an HTTP/1.0 scrape listener that exposes the aggregated
    /// fleet metrics (`GET /metrics`) — the router's own registry merged
    /// with every shard's snapshot relabeled by shard index.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if binding or spawning fails.
    pub fn spawn_metrics_listener(&self, addr: &str) -> io::Result<SocketAddr> {
        let done = {
            let router = self.clone();
            move || router.shutting_down()
        };
        let metrics = {
            let router = self.clone();
            move || router.aggregate_metrics().to_prometheus()
        };
        let source = ScrapeSource {
            done: Box::new(done),
            metrics: Box::new(metrics),
            profile: Box::new(String::new),
        };
        let (bound, handle) = spawn_scrape_listener(addr, source)?;
        let mut handles = lock(&self.inner.service_threads);
        handles.retain(|h| !h.is_finished());
        handles.push(handle);
        Ok(bound)
    }

    /// The router registry merged with every reachable shard's snapshot,
    /// each shard's samples relabeled with `shard="<index>"`. Uses its
    /// own transient shard connections (scrapes are infrequent) so it
    /// never contends with the forwarder pool.
    pub fn aggregate_metrics(&self) -> RegistrySnapshot {
        let mut conns = ShardConns::new();
        self.inner
            .metrics
            .registry
            .snapshot()
            .merge_shards(&self.inner, &mut conns)
    }
}

impl event_loop::Frontend for Router {
    fn dispatch(&self, req: Request, reply: ReplyHandle) -> Option<Response> {
        let id = self.inner.next_request_id.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.received.inc();
        self.route(req, id, ReplySink::Async(reply)).map(|mut r| {
            r.set_request_id(id);
            r
        })
    }

    fn shutting_down(&self) -> bool {
        Router::shutting_down(self)
    }
}

/// Merge helper so `aggregate_metrics` reads naturally.
trait MergeShards {
    fn merge_shards(self, inner: &RouterInner, conns: &mut ShardConns) -> RegistrySnapshot;
}

impl MergeShards for RegistrySnapshot {
    fn merge_shards(mut self, inner: &RouterInner, conns: &mut ShardConns) -> RegistrySnapshot {
        for shard in 0..inner.cfg.shards.len() {
            match exchange(inner, conns, shard, &Request::Metrics) {
                Ok(Response::Metrics { snapshot, .. }) => {
                    self.merge(snapshot.with_label("shard", &shard.to_string()));
                }
                Ok(_) | Err(_) => {
                    inner.metrics.forward_errors.inc();
                }
            }
        }
        self
    }
}

/// Per-caller persistent shard connections, keyed by shard index. Each
/// forwarder thread owns its own set, so round-trips to one shard from
/// different forwarders overlap instead of serializing on a shared
/// connection — that overlap is what lets identical in-flight requests
/// actually collide (and coalesce) at the shard.
type ShardConns = HashMap<usize, Client>;

/// One round-trip to `shard` over the caller's persistent connection,
/// lazily connecting and retrying once with a fresh connection on I/O
/// failure (the previous one may have idled out).
fn exchange(
    inner: &RouterInner,
    conns: &mut ShardConns,
    shard: usize,
    request: &Request,
) -> io::Result<Response> {
    let started = Instant::now();
    let mut last_err: Option<io::Error> = None;
    for _attempt in 0..2 {
        let client = match conns.entry(shard) {
            std::collections::hash_map::Entry::Occupied(slot) => slot.into_mut(),
            std::collections::hash_map::Entry::Vacant(slot) => {
                match Client::connect(&inner.cfg.shards[shard]) {
                    Ok(client) => slot.insert(client),
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                }
            }
        };
        match client.send(request) {
            Ok(response) => {
                inner.metrics.forwarded.inc();
                inner.metrics.shard_latency[shard].observe(started.elapsed().as_secs_f64());
                return Ok(response);
            }
            Err(e) => {
                // Drop the broken connection; the next attempt redials.
                conns.remove(&shard);
                last_err = Some(e);
            }
        }
    }
    inner.metrics.forward_errors.inc();
    Err(last_err.unwrap_or_else(|| io::Error::other("shard exchange failed")))
}

fn forwarder_loop(inner: &RouterInner) {
    let mut conns = ShardConns::new();
    while let Some(job) = inner.queue.next() {
        let response = match job.target {
            Target::Shard(shard) => {
                let response = match exchange(inner, &mut conns, shard, &job.request) {
                    Ok(response) => response,
                    Err(e) => error(
                        ErrorCode::Internal,
                        &format!("shard {shard} unreachable: {e}"),
                    ),
                };
                inner.metrics.shard_depth[shard].sub(1.0);
                // Record a fresh assignment on successful loads.
                if let (Request::LoadModel { model_id, .. }, Response::ModelLoaded { .. }) =
                    (&job.request, &response)
                {
                    lock(&inner.assignments).insert(model_id.clone(), shard);
                    deept_telemetry::info!(
                        "router",
                        "req-{}: model {model_id:?} assigned to shard {shard}",
                        job.request_id
                    );
                }
                response
            }
            Target::Broadcast => broadcast(inner, &mut conns, &job),
        };
        deept_telemetry::debug!(
            "router",
            "req-{}: forwarded in {:.1} ms",
            job.request_id,
            job.arrival.elapsed().as_secs_f64() * 1e3
        );
        let mut response = response;
        response.set_request_id(job.request_id);
        job.reply.send(response);
    }
}

/// Fans a status/metrics/shutdown request out to every shard and folds
/// the responses into one.
fn broadcast(inner: &RouterInner, conns: &mut ShardConns, job: &ForwardJob) -> Response {
    match &job.request {
        Request::Status => {
            let mut report = StatusReport {
                workers: 0,
                queue_capacity: inner.queue.capacity(),
                uptime_seconds: inner.metrics.started.elapsed().as_secs_f64(),
                received: inner.metrics.received.value(),
                overloaded: inner.metrics.overloaded.value(),
                ..StatusReport::default()
            };
            for shard in 0..inner.cfg.shards.len() {
                match exchange(inner, conns, shard, &Request::Status) {
                    Ok(Response::Status(s)) => {
                        report.completed += s.completed;
                        report.cache_hits += s.cache_hits;
                        report.cache_misses += s.cache_misses;
                        report.deadline_aborts += s.deadline_aborts;
                        report.overloaded += s.overloaded;
                        report.queue_depth += s.queue_depth;
                        report.in_flight += s.in_flight;
                        report.workers += s.workers;
                        report.models.extend(s.models);
                    }
                    Ok(_) | Err(_) => inner.metrics.forward_errors.inc(),
                }
            }
            report.models.sort();
            Response::Status(report)
        }
        Request::Metrics => Response::Metrics {
            snapshot: inner.metrics.registry.snapshot().merge_shards(inner, conns),
            request_id: None,
        },
        Request::Shutdown => {
            let mut pending = inner.queue.len() as u64;
            for shard in 0..inner.cfg.shards.len() {
                match exchange(inner, conns, shard, &Request::Shutdown) {
                    Ok(Response::ShuttingDown { pending: p, .. }) => pending += p,
                    Ok(_) | Err(_) => inner.metrics.forward_errors.inc(),
                }
            }
            // Close after the broadcast: queued jobs still drain, new
            // submissions bounce with `shutting_down`.
            inner.queue.close();
            deept_telemetry::info!(
                "router",
                "req-{}: shutdown broadcast to {} shard(s)",
                job.request_id,
                inner.cfg.shards.len()
            );
            Response::ShuttingDown {
                pending,
                request_id: None,
            }
        }
        _ => error(ErrorCode::Internal, "unexpected broadcast request"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_for_is_deterministic_and_in_range() {
        for shards in 1..8 {
            for fp in ["91ab", "0000000000000000", "deadbeefdeadbeef"] {
                let s = shard_for(fp, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(fp, shards));
            }
        }
    }

    #[test]
    fn shard_for_spreads_distinct_fingerprints() {
        // Not a uniformity proof — just that routing is not constant.
        let hits: std::collections::HashSet<usize> = (0..64)
            .map(|i| shard_for(&format!("{i:016x}"), 4))
            .collect();
        assert!(hits.len() > 1, "all fingerprints routed to one shard");
    }

    #[test]
    fn peek_fingerprint_rejects_non_checkpoints() {
        assert!(peek_fingerprint("/nonexistent/path.json").is_err());
        let dir = std::env::temp_dir().join("deept-router-peek-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"format\":\"other\",\"fingerprint\":\"ab\"}").unwrap();
        let err = peek_fingerprint(bad.to_str().unwrap()).unwrap_err();
        assert!(err.contains("format tag"), "unexpected error: {err}");
    }
}
