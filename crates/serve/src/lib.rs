//! `deept-serve` — a long-running certification service for DeepT-rs.
//!
//! The crate turns the one-shot verifier into a server suitable for
//! batched certification campaigns:
//!
//! * [`protocol`] — a JSON-lines request/response protocol (`certify`,
//!   `load_model`, `status`, `shutdown`) spoken over TCP or stdio;
//! * [`queue`] — a bounded job queue with backpressure: when full, new
//!   certification requests are rejected with a structured `overloaded`
//!   error instead of queueing without bound;
//! * [`cache`] — an LRU result cache keyed by (model fingerprint, tokens,
//!   ε, norm, verifier variant, position); hits reproduce the original
//!   result bit for bit;
//! * [`state_cache`] — a byte-budgeted LRU of per-layer zonotope
//!   snapshots keyed by (fingerprint, input-region hash, config hash,
//!   norm, layer): a warm query whose region *exactly* matches a cached
//!   cold run resumes propagation mid-stack, bitwise identical to a cold
//!   start;
//! * [`registry`] — named models loaded from fingerprinted checkpoints
//!   ([`deept_nn::checkpoint`]);
//! * [`server`] — the worker pool and connection loops, with per-request
//!   [`deept_verifier::Deadline`]s threaded through the radius-search and
//!   certification loops so a request can time out cooperatively instead
//!   of hanging. Every request gets a server-unique `request_id`, echoed
//!   in the response and in `DEEPT_LOG` lines while in flight;
//! * [`client`] — a minimal blocking client for the CLI and tests;
//! * [`loadgen`] — a closed-loop / fixed-rate load generator producing
//!   latency and throughput reports against a live server.
//!
//! Observability: each server owns a [`deept_metrics`] registry of request
//! lifecycle counters and latency histograms (queue wait, cache lookup,
//! propagation, end-to-end), merged with the process-global hot-path
//! registry on demand. The `metrics` request returns the merged snapshot
//! as JSON; [`server::Server::spawn_metrics_listener`] additionally serves
//! it as Prometheus text exposition over plain HTTP (`GET /metrics`),
//! alongside a collapsed-stack self-profile (`GET /profile`).
//!
//! Transport is `std::net` only; the wire format is one JSON object per
//! line. Determinism is preserved end to end: the worker pool runs the
//! same `deept_tensor::parallel` kernels as the offline harness, so a
//! served result equals the CLI result bitwise, and a cache hit equals
//! the miss that populated it.
//!
//! # Example (in-process, stdio framing)
//!
//! ```
//! use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
//! use deept_serve::server::{ServeConfig, Server};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let model = TransformerClassifier::new(
//!     TransformerConfig {
//!         vocab_size: 8, max_len: 4, embed_dim: 8, num_heads: 2,
//!         hidden_dim: 8, num_layers: 1, num_classes: 2,
//!         layer_norm: LayerNormKind::NoStd,
//!     },
//!     &mut rng,
//! );
//! let server = Server::new(ServeConfig::default());
//! server.registry().insert("toy", model).unwrap();
//! let input = "{\"type\":\"certify\",\"model_id\":\"toy\",\"tokens\":[1,2,3],\"eps\":1e-5}\n";
//! let mut out = Vec::new();
//! server.serve_stdio(input.as_bytes(), &mut out).unwrap();
//! server.drain();
//! assert!(String::from_utf8(out).unwrap().contains("\"type\":\"certify\""));
//! ```

#![deny(clippy::print_stdout)]

pub mod cache;
pub mod client;
mod event_loop;
pub mod loadgen;
mod metrics;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod router;
pub mod server;
pub mod state_cache;
mod sync;
mod synonyms;

pub use cache::{CacheKey, LruCache};
pub use client::Client;
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use protocol::{CertifyRequest, ErrorCode, Request, Response, Variant};
pub use queue::{JobQueue, SubmitError};
pub use registry::ModelRegistry;
pub use server::{ServeConfig, Server};
pub use state_cache::{StateCache, StateEntry, StateKey};
