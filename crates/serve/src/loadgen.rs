//! Load generator for a live certification server.
//!
//! Drives `certify` requests over TCP from `concurrency` client threads in
//! one of two modes:
//!
//! * **closed-loop** (default): every thread keeps exactly one request in
//!   flight — send, wait for the reply, send again — so the offered load
//!   adapts to the server's capacity;
//! * **fixed-rate** (`rate` set): threads pace submissions to a target
//!   aggregate rate in requests/second, measuring what latency looks like
//!   under a fixed offered load (queueing delay shows up instead of being
//!   absorbed by the closed loop).
//!
//! Each request perturbs the base ε in its last mantissa bits (a
//! process-unique counter added to the ε bit pattern), so every query is a
//! distinct cache key and the generator exercises the full verification
//! path rather than the result cache. Pass `unique_eps: false` to measure
//! cache-hit serving instead. `wave > 1` divides the counter by the wave
//! size, so groups of `wave` consecutive requests share one ε and collide
//! as identical *in-flight* keys — the workload that exercises the
//! server's request coalescing and batch fusion (concurrent clients issue
//! the same query before any of them has a cached result).
//!
//! **Edit-stream mode** (`edit_stream: true`) replays the workload of an
//! interactive editing session instead: requests cycle through blocks of
//! eight — four fresh ε queries, three retries of ε values issued earlier
//! in the same block, and one T2 synonym sweep. The sequence is a pure
//! function of the shared request counter, so two identical invocations
//! issue byte-identical request streams: the first run populates the
//! server's zonotope state cache cold, the second resumes every query
//! from cached layer snapshots — the cold-vs-warm comparison behind
//! `BENCH_10.json`. `unique_eps` and `wave` are ignored in this mode.
//!
//! Latency is measured client-side per request (send → parsed reply).
//! Around the run, the generator issues `metrics` requests and differences
//! the server's histograms, yielding the per-phase decomposition (queue
//! wait, cache lookup, propagation, end-to-end) for exactly the requests
//! this run produced. The whole report serializes to JSON for
//! `BENCH_6.json`.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::client::Client;
use crate::protocol::{CertifyRequest, RadiusSearchSpec, Request, Response};

/// What to run against which server.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Registry id of the (already loaded) model to certify against.
    pub model_id: String,
    /// Token sequence for every request.
    pub tokens: Vec<usize>,
    /// Perturbed position.
    pub position: usize,
    /// Base perturbation radius.
    pub eps: f64,
    /// Norm name on the wire (`"l2"`, `"linf"`, ...).
    pub norm: String,
    /// Verifier variant on the wire (`"fast"`, ...).
    pub variant: String,
    /// Client threads, each with its own connection.
    pub concurrency: usize,
    /// Stop after this long (whichever of duration/requests hits first).
    pub duration: Option<Duration>,
    /// Stop after this many requests in total.
    pub requests: Option<u64>,
    /// Fixed-rate mode: aggregate target in requests/second. `None` runs
    /// closed-loop.
    pub rate: Option<f64>,
    /// Make every request a distinct cache key (see the module docs).
    pub unique_eps: bool,
    /// Consecutive requests sharing one ε (and hence one cache key);
    /// `<= 1` keeps every request distinct. Only meaningful with
    /// `unique_eps`.
    pub wave: usize,
    /// Replay an interactive editing session (fresh queries, retries and
    /// synonym sweeps in a deterministic mix — see the module docs).
    /// Overrides `unique_eps` / `wave`.
    pub edit_stream: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".to_string(),
            model_id: "default".to_string(),
            tokens: vec![1, 2, 3],
            position: 0,
            eps: 1e-3,
            norm: "l2".to_string(),
            variant: "fast".to_string(),
            concurrency: 2,
            duration: Some(Duration::from_secs(5)),
            requests: None,
            rate: None,
            unique_eps: true,
            wave: 1,
            edit_stream: false,
        }
    }
}

/// Quantiles of one latency distribution, in seconds.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LatencySummary {
    /// Samples the quantiles are over.
    pub count: u64,
    /// Mean latency in seconds.
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Fastest observed.
    pub min_s: f64,
    /// Slowest observed.
    pub max_s: f64,
}

impl LatencySummary {
    /// Exact quantiles over client-side samples. Returns `None` when empty.
    fn from_samples(mut samples: Vec<f64>) -> Option<LatencySummary> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(f64::total_cmp);
        let count = samples.len() as u64;
        let q = |p: f64| {
            let rank = ((p * count as f64).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1]
        };
        Some(LatencySummary {
            count,
            mean_s: samples.iter().sum::<f64>() / count as f64,
            p50_s: q(0.50),
            p95_s: q(0.95),
            p99_s: q(0.99),
            min_s: samples[0],
            max_s: samples[samples.len() - 1],
        })
    }

    /// Quantiles from a server-side histogram delta (log-linear buckets;
    /// relative error bounded by
    /// [`deept_metrics::hist::QUANTILE_RELATIVE_ERROR`]).
    fn from_histogram(h: &deept_metrics::HistogramSnapshot) -> Option<LatencySummary> {
        if h.count == 0 {
            return None;
        }
        Some(LatencySummary {
            count: h.count,
            mean_s: h.mean().unwrap_or(0.0),
            p50_s: h.quantile(0.50).unwrap_or(0.0),
            p95_s: h.quantile(0.95).unwrap_or(0.0),
            p99_s: h.quantile(0.99).unwrap_or(0.0),
            min_s: h.min().unwrap_or(0.0),
            max_s: h.max().unwrap_or(0.0),
        })
    }
}

/// Server-side per-phase latency decomposition for this run (histogram
/// deltas between the pre- and post-run `metrics` snapshots).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// `deept_serve_queue_wait_seconds`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub queue_wait: Option<LatencySummary>,
    /// `deept_serve_cache_lookup_seconds`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cache_lookup: Option<LatencySummary>,
    /// `deept_serve_propagation_seconds`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub propagation: Option<LatencySummary>,
    /// `deept_serve_request_seconds` (server-side end-to-end).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub total: Option<LatencySummary>,
}

/// Everything a load-generation run produced; serializes to `BENCH_6.json`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LoadgenReport {
    /// `"closed_loop"` or `"fixed_rate"`.
    pub mode: String,
    /// Client threads used.
    pub concurrency: usize,
    /// Target rate in requests/second (fixed-rate mode only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub target_rate: Option<f64>,
    /// Wall-clock length of the measurement window in seconds.
    pub duration_s: f64,
    /// Requests sent.
    pub sent: u64,
    /// `certify` responses (certified or not) received.
    pub ok: u64,
    /// Responses served from the result cache.
    pub cached: u64,
    /// `overloaded` rejections.
    pub overloaded: u64,
    /// `timeout` errors.
    pub timeouts: u64,
    /// Other error responses or transport failures.
    pub errors: u64,
    /// Successfully certified-or-refuted queries per second of wall clock.
    pub certified_queries_per_sec: f64,
    /// Client-observed end-to-end latency.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub latency: Option<LatencySummary>,
    /// Server-side per-phase decomposition for this run.
    pub phases: PhaseBreakdown,
}

/// Per-thread tallies folded into the report.
#[derive(Default)]
struct ThreadOutcome {
    sent: u64,
    ok: u64,
    cached: u64,
    overloaded: u64,
    timeouts: u64,
    errors: u64,
    latencies: Vec<f64>,
}

/// Fetches the merged metrics snapshot from the server.
fn fetch_snapshot(addr: &str) -> io::Result<deept_metrics::RegistrySnapshot> {
    match Client::connect(addr)?.send(&Request::Metrics)? {
        Response::Metrics { snapshot, .. } => Ok(snapshot),
        other => Err(io::Error::other(format!(
            "expected a metrics response, got {other:?}"
        ))),
    }
}

/// Histogram delta between two snapshots, `None` when nothing landed.
fn phase_delta(
    before: &deept_metrics::RegistrySnapshot,
    after: &deept_metrics::RegistrySnapshot,
    name: &str,
) -> Option<LatencySummary> {
    let after_h = after.histogram(name)?;
    let delta = match before.histogram(name) {
        Some(before_h) => after_h.delta_since(before_h),
        None => after_h.clone(),
    };
    LatencySummary::from_histogram(&delta)
}

/// Runs the load against a live server and reports.
///
/// # Errors
///
/// Returns an I/O error if the server cannot be reached at all (individual
/// request failures during the run are tallied as `errors` instead).
///
/// # Panics
///
/// Panics if `concurrency` is 0.
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    assert!(cfg.concurrency > 0, "loadgen needs at least one thread");
    // Fail fast (and snapshot the baseline) before spawning anything.
    let before = fetch_snapshot(&cfg.addr)?;
    let stop = Arc::new(AtomicBool::new(false));
    let remaining = Arc::new(AtomicU64::new(cfg.requests.unwrap_or(u64::MAX)));
    let eps_nonce = Arc::new(AtomicU64::new(0));
    let per_thread_interval = cfg.rate.map(|r| {
        let per_thread = (r / cfg.concurrency as f64).max(1e-6);
        Duration::from_secs_f64(1.0 / per_thread)
    });
    let started = Instant::now();
    let handles: Vec<thread::JoinHandle<ThreadOutcome>> = (0..cfg.concurrency)
        .map(|i| {
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            let remaining = Arc::clone(&remaining);
            let eps_nonce = Arc::clone(&eps_nonce);
            thread::Builder::new()
                .name(format!("deept-loadgen-{i}"))
                .spawn(move || {
                    loadgen_thread(&cfg, &stop, &remaining, &eps_nonce, per_thread_interval)
                })
                .expect("spawn loadgen thread")
        })
        .collect();
    if let Some(d) = cfg.duration {
        // The stop flag ends duration-bounded runs; request-bounded runs
        // drain `remaining` and the threads exit on their own.
        thread::sleep(d);
        stop.store(true, Ordering::SeqCst);
    }
    let mut totals = ThreadOutcome::default();
    for handle in handles {
        let outcome = handle.join().expect("loadgen thread panicked");
        totals.sent += outcome.sent;
        totals.ok += outcome.ok;
        totals.cached += outcome.cached;
        totals.overloaded += outcome.overloaded;
        totals.timeouts += outcome.timeouts;
        totals.errors += outcome.errors;
        totals.latencies.extend(outcome.latencies);
    }
    let duration_s = started.elapsed().as_secs_f64();
    let after = fetch_snapshot(&cfg.addr)?;
    Ok(LoadgenReport {
        mode: if cfg.rate.is_some() {
            "fixed_rate".to_string()
        } else {
            "closed_loop".to_string()
        },
        concurrency: cfg.concurrency,
        target_rate: cfg.rate,
        duration_s,
        sent: totals.sent,
        ok: totals.ok,
        cached: totals.cached,
        overloaded: totals.overloaded,
        timeouts: totals.timeouts,
        errors: totals.errors,
        certified_queries_per_sec: if duration_s > 0.0 {
            totals.ok as f64 / duration_s
        } else {
            0.0
        },
        latency: LatencySummary::from_samples(totals.latencies),
        phases: PhaseBreakdown {
            queue_wait: phase_delta(&before, &after, "deept_serve_queue_wait_seconds"),
            cache_lookup: phase_delta(&before, &after, "deept_serve_cache_lookup_seconds"),
            propagation: phase_delta(&before, &after, "deept_serve_propagation_seconds"),
            total: phase_delta(&before, &after, "deept_serve_request_seconds"),
        },
    })
}

/// The next request a loadgen thread should issue.
#[derive(Debug, PartialEq)]
enum PlannedQuery {
    Eps(f64),
    Synonyms,
}

/// Derives the next request from the shared counter. Pure in the counter
/// value, so two identical invocations replay identical request streams
/// (the property the cold-vs-warm edit-stream bench relies on).
fn plan_request(cfg: &LoadgenConfig, eps_nonce: &AtomicU64) -> PlannedQuery {
    let nonce = eps_nonce.fetch_add(1, Ordering::Relaxed);
    if cfg.edit_stream {
        // Blocks of 8: four fresh ε queries, three retries of this
        // block's first three ε values, one synonym sweep.
        let block = nonce / 8;
        let kind = nonce % 8;
        return match kind {
            7 => PlannedQuery::Synonyms,
            4..=6 => PlannedQuery::Eps(f64::from_bits(cfg.eps.to_bits() + block * 4 + (kind - 4))),
            k => PlannedQuery::Eps(f64::from_bits(cfg.eps.to_bits() + block * 4 + k)),
        };
    }
    let eps = if cfg.unique_eps {
        let group = if cfg.wave > 1 {
            nonce / cfg.wave as u64
        } else {
            nonce
        };
        f64::from_bits(cfg.eps.to_bits() + group)
    } else {
        cfg.eps
    };
    PlannedQuery::Eps(eps)
}

fn loadgen_thread(
    cfg: &LoadgenConfig,
    stop: &AtomicBool,
    remaining: &AtomicU64,
    eps_nonce: &AtomicU64,
    interval: Option<Duration>,
) -> ThreadOutcome {
    let mut out = ThreadOutcome::default();
    let Ok(mut client) = Client::connect(&cfg.addr) else {
        out.errors += 1;
        return out;
    };
    let mut next_send = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        // Claim a request slot; 0 left means another thread took the last.
        if remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_err()
        {
            break;
        }
        if let Some(interval) = interval {
            // Fixed-rate pacing against the schedule, not the last reply,
            // so a slow response doesn't silently lower the offered rate.
            let now = Instant::now();
            if next_send > now {
                thread::sleep(next_send - now);
            }
            next_send += interval;
        }
        let req = Request::Certify(match plan_request(cfg, eps_nonce) {
            PlannedQuery::Eps(eps) => CertifyRequest {
                model_id: cfg.model_id.clone(),
                tokens: cfg.tokens.clone(),
                position: cfg.position,
                norm: cfg.norm.clone(),
                variant: cfg.variant.clone(),
                eps: Some(eps),
                radius_search: None::<RadiusSearchSpec>,
                synonyms: None,
                deadline_ms: None,
                trace: false,
            },
            PlannedQuery::Synonyms => CertifyRequest {
                model_id: cfg.model_id.clone(),
                tokens: cfg.tokens.clone(),
                position: cfg.position,
                norm: cfg.norm.clone(),
                variant: "synonyms".to_string(),
                eps: None,
                radius_search: None::<RadiusSearchSpec>,
                synonyms: None, // server applies the default (k, dist)
                deadline_ms: None,
                trace: false,
            },
        });
        let sent_at = Instant::now();
        out.sent += 1;
        match client.send(&req) {
            Ok(Response::Certify { cached, .. }) => {
                out.ok += 1;
                out.cached += u64::from(cached);
                out.latencies.push(sent_at.elapsed().as_secs_f64());
            }
            Ok(Response::Error { code, .. }) => match code {
                crate::protocol::ErrorCode::Overloaded => out.overloaded += 1,
                crate::protocol::ErrorCode::Timeout => out.timeouts += 1,
                _ => out.errors += 1,
            },
            Ok(_) => out.errors += 1,
            Err(_) => {
                out.errors += 1;
                // The connection may be gone (e.g. server drained); try a
                // fresh one, and bail if the server is unreachable.
                match Client::connect(&cfg.addr) {
                    Ok(c) => client = c,
                    Err(_) => break,
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_quantiles_are_exact_order_statistics() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencySummary::from_samples(samples).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.min_s, 1.0);
        assert_eq!(s.max_s, 100.0);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
    }

    #[test]
    fn empty_samples_yield_no_summary() {
        assert_eq!(LatencySummary::from_samples(Vec::new()), None);
    }

    #[test]
    fn edit_stream_plan_replays_and_mixes() {
        let cfg = LoadgenConfig {
            edit_stream: true,
            ..Default::default()
        };
        let counter = AtomicU64::new(0);
        let first: Vec<_> = (0..16).map(|_| plan_request(&cfg, &counter)).collect();
        let counter = AtomicU64::new(0);
        let replay: Vec<_> = (0..16).map(|_| plan_request(&cfg, &counter)).collect();
        // Identical invocations issue byte-identical request streams.
        assert_eq!(first, replay);
        for block in [0usize, 8] {
            // Kinds 4..=6 retry this block's first three ε values.
            assert_eq!(first[block + 4], first[block]);
            assert_eq!(first[block + 5], first[block + 1]);
            assert_eq!(first[block + 6], first[block + 2]);
            assert_eq!(first[block + 7], PlannedQuery::Synonyms);
            // The four fresh ε values are pairwise distinct.
            for i in 0..4 {
                for j in (i + 1)..4 {
                    assert_ne!(first[block + i], first[block + j]);
                }
            }
        }
        // Fresh values never repeat across blocks.
        assert_ne!(first[0], first[8]);
    }

    #[test]
    fn report_serializes_round_trip() {
        let report = LoadgenReport {
            mode: "closed_loop".to_string(),
            concurrency: 4,
            target_rate: None,
            duration_s: 5.0,
            sent: 10,
            ok: 9,
            cached: 0,
            overloaded: 1,
            timeouts: 0,
            errors: 0,
            certified_queries_per_sec: 1.8,
            latency: LatencySummary::from_samples(vec![0.1, 0.2, 0.3]),
            phases: PhaseBreakdown::default(),
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: LoadgenReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
