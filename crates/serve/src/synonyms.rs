//! Serve-side synonym-set catalog: [`SynonymSets`] memoized per
//! `(checkpoint fingerprint, k, dist)` so a T2 request never pays the
//! O(V²) embedding scan of [`SynonymSets::from_embeddings`] itself.
//!
//! Resolution order: in-memory memo → persisted [`SynonymArtifact`] in the
//! configured directory (as exported by `deept synonyms` /
//! `deept export-synonyms`) → compute from the checkpoint's embedding
//! table and, when a directory is configured, persist for the next
//! process. Entries are `Arc`-shared; concurrent first requests may race
//! the computation, but `from_embeddings` is deterministic so the loser's
//! result is identical and simply dropped.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use deept_data::{SynonymArtifact, SynonymSets};

use crate::registry::ModelEntry;
use crate::sync::lock;

/// Memo key: checkpoint fingerprint plus the construction parameters
/// (`dist` by bit pattern, like every radius key in the serve layer).
type CatalogKey = (String, usize, u64);

pub(crate) struct SynonymCatalog {
    /// Directory of persisted artifacts; `None` disables load/persist.
    dir: Option<PathBuf>,
    entries: Mutex<HashMap<CatalogKey, Arc<SynonymSets>>>,
}

impl SynonymCatalog {
    pub fn new(dir: Option<PathBuf>) -> Self {
        SynonymCatalog {
            dir,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// The synonym sets for `entry`'s checkpoint under `(k, dist)`,
    /// computing and memoizing them on first use.
    pub fn get_or_build(&self, entry: &ModelEntry, k: usize, dist: f64) -> Arc<SynonymSets> {
        let key: CatalogKey = (entry.fingerprint.clone(), k, dist.to_bits());
        if let Some(sets) = lock(&self.entries).get(&key) {
            return Arc::clone(sets);
        }
        // Compute (or load) outside the lock: the scan is O(V²) and must
        // not block unrelated requests resolving their own sets.
        let sets = Arc::new(self.load_or_compute(entry, k, dist));
        lock(&self.entries)
            .entry(key)
            .or_insert_with(|| Arc::clone(&sets))
            .clone()
    }

    fn load_or_compute(&self, entry: &ModelEntry, k: usize, dist: f64) -> SynonymSets {
        if let Some(dir) = &self.dir {
            if let Some(artifact) = SynonymArtifact::load(dir, &entry.fingerprint, k, dist) {
                deept_telemetry::debug!(
                    "serve",
                    "synonym sets for {} (k={k}, dist={dist}) loaded from {}",
                    entry.fingerprint,
                    dir.display()
                );
                return artifact.sets;
            }
        }
        let sets = SynonymSets::from_embeddings(&entry.model.token_embed, k, dist);
        deept_telemetry::debug!(
            "serve",
            "synonym sets for {} (k={k}, dist={dist}) computed from embeddings",
            entry.fingerprint
        );
        if let Some(dir) = &self.dir {
            let artifact = SynonymArtifact {
                fingerprint: entry.fingerprint.clone(),
                k,
                dist,
                sets: sets.clone(),
            };
            if let Err(e) = artifact.save(dir) {
                deept_telemetry::warn!(
                    "serve",
                    "could not persist synonym sets to {}: {e}",
                    dir.display()
                );
            }
        }
        sets
    }
}
