//! A minimal blocking client for the JSON-lines protocol.
//!
//! One request in, one response out, in order, over a single TCP
//! connection. This is all the CLI (`deept request`) and the integration
//! tests need; concurrency comes from opening multiple clients.

use std::io::{self, BufRead, BufReader};
use std::net::TcpStream;

use crate::protocol::{self, Request, Response};

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server at `addr` (e.g. `127.0.0.1:7878`).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the connection fails.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the transport fails or the server closes
    /// the connection before responding; a malformed response surfaces as
    /// [`io::ErrorKind::InvalidData`].
    pub fn send(&mut self, request: &Request) -> io::Result<Response> {
        protocol::write_line(&mut self.writer, request)?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        protocol::parse_response(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Connects, sends one request, and returns the response.
///
/// # Errors
///
/// See [`Client::connect`] and [`Client::send`].
pub fn request_once(addr: &str, request: &Request) -> io::Result<Response> {
    Client::connect(addr)?.send(request)
}
