//! A bounded multi-producer multi-consumer job queue with backpressure.
//!
//! Connection threads [`submit`](JobQueue::submit) jobs; worker threads
//! block in [`next`](JobQueue::next). Submission never blocks: when the
//! queue is at capacity the caller gets [`SubmitError::Overloaded`]
//! immediately and surfaces it as a structured protocol error, which is
//! the server's backpressure mechanism. [`close`](JobQueue::close) starts
//! the drain: submissions are refused but queued jobs keep flowing to
//! workers until the queue empties, at which point `next` returns `None`
//! and workers exit.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use crate::sync::{lock, wait};

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry later.
    Overloaded,
    /// The queue is draining for shutdown.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "job queue is full"),
            SubmitError::Closed => write!(f, "job queue is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct State<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

/// A bounded MPMC queue; clones share the same queue.
pub struct JobQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for JobQueue<T> {
    fn clone(&self) -> Self {
        JobQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `capacity` waiting jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — such a queue could never admit work.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        JobQueue {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    jobs: VecDeque::new(),
                    closed: false,
                }),
                available: Condvar::new(),
                capacity,
            }),
        }
    }

    /// Enqueues `job` without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] once [`close`](Self::close) has been
    /// called, [`SubmitError::Overloaded`] when at capacity.
    pub fn submit(&self, job: T) -> Result<(), SubmitError> {
        let mut state = lock(&self.inner.state);
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.jobs.len() >= self.inner.capacity {
            return Err(SubmitError::Overloaded);
        }
        state.jobs.push_back(job);
        drop(state);
        self.inner.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained, which is a worker's signal to exit.
    pub fn next(&self) -> Option<T> {
        let mut state = lock(&self.inner.state);
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = wait(&self.inner.available, state);
        }
    }

    /// Removes and returns up to `max` waiting jobs matching `pred`,
    /// preserving the relative order of both the taken and the remaining
    /// jobs. Used by workers to drain fusible siblings of a job they just
    /// dequeued into one batched propagation.
    pub fn take_matching<F: FnMut(&T) -> bool>(&self, max: usize, mut pred: F) -> Vec<T> {
        let mut taken = Vec::new();
        if max == 0 {
            return taken;
        }
        let mut state = lock(&self.inner.state);
        let mut rest = VecDeque::with_capacity(state.jobs.len());
        while let Some(job) = state.jobs.pop_front() {
            if taken.len() < max && pred(&job) {
                taken.push(job);
            } else {
                rest.push_back(job);
            }
        }
        state.jobs = rest;
        taken
    }

    /// Re-admits an already-accepted job at the back of the queue,
    /// bypassing both the capacity check and the closed flag: a request
    /// that was admitted once must drain to a worker even during shutdown
    /// (used when a coalesced straggler is re-dispatched after its fused
    /// leader timed out). Only workers call this, from inside their own
    /// dequeue loop, so the job is always picked up again.
    pub fn requeue(&self, job: T) {
        let mut state = lock(&self.inner.state);
        state.jobs.push_back(job);
        drop(state);
        self.inner.available.notify_one();
    }

    /// Refuses new submissions; queued jobs still drain through
    /// [`next`](Self::next). Idempotent.
    pub fn close(&self) {
        let mut state = lock(&self.inner.state);
        state.closed = true;
        drop(state);
        self.inner.available.notify_all();
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        lock(&self.inner.state).jobs.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        lock(&self.inner.state).closed
    }

    /// Maximum number of waiting jobs.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let q = JobQueue::new(4);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        q.submit(3).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.next(), Some(1));
        assert_eq!(q.next(), Some(2));
        assert_eq!(q.next(), Some(3));
    }

    #[test]
    fn overload_at_capacity() {
        let q = JobQueue::new(2);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        assert_eq!(q.submit(3), Err(SubmitError::Overloaded));
        // Draining one slot re-admits.
        assert_eq!(q.next(), Some(1));
        q.submit(3).unwrap();
    }

    #[test]
    fn close_refuses_submissions_but_drains() {
        let q = JobQueue::new(4);
        q.submit(1).unwrap();
        q.submit(2).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.submit(3), Err(SubmitError::Closed));
        assert_eq!(q.next(), Some(1));
        assert_eq!(q.next(), Some(2));
        assert_eq!(q.next(), None);
        assert_eq!(q.next(), None); // stays terminated
    }

    #[test]
    fn take_matching_preserves_order_and_caps() {
        let q = JobQueue::new(8);
        for j in [1u32, 12, 2, 13, 3, 14, 15] {
            q.submit(j).unwrap();
        }
        // Take at most two jobs >= 10; the rest keep their relative order.
        assert_eq!(q.take_matching(2, |&j| j >= 10), vec![12, 13]);
        assert_eq!(q.next(), Some(1));
        assert_eq!(q.next(), Some(2));
        assert_eq!(q.next(), Some(3));
        assert_eq!(q.next(), Some(14));
        assert_eq!(q.next(), Some(15));
        assert_eq!(q.take_matching(0, |_| true), Vec::<u32>::new());
    }

    #[test]
    fn requeue_bypasses_capacity_and_close() {
        let q = JobQueue::new(1);
        q.submit(1).unwrap();
        assert_eq!(q.submit(2), Err(SubmitError::Overloaded));
        q.requeue(2); // over capacity, still admitted
        q.close();
        q.requeue(3); // closed, still admitted: accepted work must drain
        assert_eq!(q.next(), Some(1));
        assert_eq!(q.next(), Some(2));
        assert_eq!(q.next(), Some(3));
        assert_eq!(q.next(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q: JobQueue<u32> = JobQueue::new(1);
        let worker = {
            let q = q.clone();
            thread::spawn(move || q.next())
        };
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_see_every_job() {
        let q = JobQueue::new(64);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(j) = q.next() {
                        got.push(j);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..16 {
                        loop {
                            match q.submit(p * 100 + i) {
                                Ok(()) => break,
                                Err(SubmitError::Overloaded) => thread::yield_now(),
                                Err(SubmitError::Closed) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u32> = (0..4)
            .flat_map(|p| (0..16).map(move |i| p * 100 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
