//! Poison-tolerant locking helpers.
//!
//! A worker or connection thread that panics while holding a mutex
//! poisons it; with bare `lock().unwrap()` every later lock attempt then
//! panics too, cascading one request's failure into a dead server. All
//! state guarded by these locks (queue contents, registry map, cache,
//! join-handle lists) stays structurally valid across a panic at any
//! await-free point — the worst outcome is a lost cache entry or an
//! abandoned job, both of which the protocol already tolerates — so the
//! server recovers the guard and keeps serving instead of amplifying the
//! panic.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Acquires `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on `cv`, recovering the guard if the mutex was poisoned while
/// waiting.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_recovers_from_poison() {
        let m = Mutex::new(7u32);
        // Poison the mutex by panicking while holding it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7);
        *lock(&m) = 8;
        assert_eq!(*lock(&m), 8);
    }
}
