//! A nonblocking, poll-based connection front end: **one** I/O thread
//! multiplexes every client connection, so the server spends zero threads
//! per connection and never busy-sleeps in an accept loop.
//!
//! # Shape
//!
//! The loop owns the listener and all connection sockets, all in
//! nonblocking mode, and blocks in `poll(2)` until something is ready
//! (`std` already links the platform libc, so the raw `extern "C"`
//! declaration adds no dependency; non-unix builds fall back to a short
//! timed sleep with the same level-triggered semantics). Three event
//! sources feed it:
//!
//! * the **listener** — accepted sockets become [`Conn`] entries;
//! * **connection sockets** — readable bytes are split into JSON lines and
//!   dispatched through [`Frontend::dispatch`]; writable sockets drain
//!   their output buffer;
//! * the **self-pipe** — worker threads finishing a queued job send a
//!   [`Completion`] over an mpsc channel and write one byte into the pipe,
//!   which wakes the loop out of `poll` immediately.
//!
//! # Ordering and backpressure
//!
//! Responses go back in request order per connection: every parsed request
//! claims a FIFO slot, inline answers fill their slot immediately, queued
//! certifications fill it whenever their worker finishes, and only the
//! filled prefix is serialized to the socket. All per-connection buffers
//! are bounded: an unterminated request line beyond [`MAX_LINE_BYTES`]
//! answers `bad_request` and closes, more than [`MAX_PIPELINE`] pipelined
//! requests answer `overloaded`, and a connection whose unflushed output
//! exceeds [`WRITE_BACKPRESSURE_BYTES`] stops being *read* until the peer
//! drains — a slow consumer throttles itself, not the server.
//!
//! # Shutdown
//!
//! Once [`Frontend::shutting_down`] turns true the loop stops accepting
//! and stops reading, finishes every pending slot (queued jobs drain to
//! workers and complete), flushes, closes all connections and returns.

use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;

use crate::protocol::{self, ErrorCode, Request, Response};

/// Bound on a single buffered request line (bytes without a newline).
const MAX_LINE_BYTES: usize = 1 << 20;
/// Bound on requests awaiting a response per connection (pipeline depth).
const MAX_PIPELINE: usize = 128;
/// Stop reading a connection whose unflushed output exceeds this.
const WRITE_BACKPRESSURE_BYTES: usize = 256 << 10;
/// Poll timeout: only a safety net for noticing an externally initiated
/// drain; all normal work is readiness- or waker-driven.
const POLL_TIMEOUT_MS: i32 = 100;

/// What the event loop needs from a request handler. Implemented by
/// [`crate::server::Server`] and [`crate::router::Router`].
pub(crate) trait Frontend {
    /// Handles one request. `Some(response)` answers inline (cache hits,
    /// status, errors); `None` means the response arrives later through
    /// `reply`.
    fn dispatch(&self, req: Request, reply: ReplyHandle) -> Option<Response>;
    /// When true the loop drains: no new connections, no new reads.
    fn shutting_down(&self) -> bool;
}

/// A finished asynchronous response, addressed to one request slot of one
/// connection.
pub(crate) struct Completion {
    conn: u64,
    seq: u64,
    response: Response,
}

/// Write end of the loop's self-pipe; waking is cheap and idempotent.
#[derive(Clone)]
pub(crate) struct Waker {
    #[cfg(unix)]
    pipe: std::sync::Arc<std::os::unix::net::UnixStream>,
}

impl Waker {
    pub fn wake(&self) {
        // A full pipe means a wake is already pending — dropping the byte
        // (or any error here) is fine.
        #[cfg(unix)]
        {
            let _ = (&*self.pipe).write(&[1u8]);
        }
    }
}

/// Where a worker delivers the response for a queued request. Cloneable so
/// coalesced waiters can each hold their own slot address.
#[derive(Clone)]
pub(crate) struct ReplyHandle {
    tx: mpsc::Sender<Completion>,
    waker: Waker,
    conn: u64,
    seq: u64,
}

impl ReplyHandle {
    /// Delivers the response to its slot and wakes the loop. Infallible
    /// from the caller's view: a gone loop or connection just drops it.
    pub fn send(&self, response: Response) {
        let _ = self.tx.send(Completion {
            conn: self.conn,
            seq: self.seq,
            response,
        });
        self.waker.wake();
    }
}

// ---------------------------------------------------------------------------
// poll(2) plumbing
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    pub type Fd = std::os::fd::RawFd;

    #[repr(C)]
    pub struct PollFd {
        pub fd: Fd,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        /// POSIX `poll(2)`; `std` links libc already, so no new dependency.
        pub fn poll(
            fds: *mut PollFd,
            nfds: core::ffi::c_ulong,
            timeout: core::ffi::c_int,
        ) -> core::ffi::c_int;
    }
}

#[cfg(not(unix))]
mod sys {
    pub type Fd = i32;

    #[repr(C)]
    pub struct PollFd {
        pub fd: Fd,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;
}

/// Blocks until a registered fd is ready or `timeout_ms` elapses, filling
/// `revents`. The non-unix fallback sleeps briefly and reports everything
/// ready — level-triggered semantics plus `WouldBlock` handling keep that
/// correct, just less efficient.
fn poll_readiness(fds: &mut [sys::PollFd], timeout_ms: i32) -> io::Result<()> {
    #[cfg(unix)]
    {
        loop {
            let rc = unsafe {
                sys::poll(
                    fds.as_mut_ptr(),
                    fds.len() as core::ffi::c_ulong,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
    #[cfg(not(unix))]
    {
        std::thread::sleep(std::time::Duration::from_millis(
            2.min(timeout_ms.max(0) as u64),
        ));
        for f in fds.iter_mut() {
            f.revents = f.events;
        }
        Ok(())
    }
}

#[cfg(unix)]
fn raw_fd<T: std::os::fd::AsRawFd>(s: &T) -> sys::Fd {
    s.as_raw_fd()
}

fn readable(revents: i16) -> bool {
    revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0
}

fn writable(revents: i16) -> bool {
    revents & (sys::POLLOUT | sys::POLLERR | sys::POLLHUP) != 0
}

fn errored(revents: i16) -> bool {
    revents & sys::POLLNVAL != 0
}

/// Waits up to `timeout_ms` for `listener` to have an acceptable
/// connection. Used by the metrics scrape listener so it blocks in the
/// kernel instead of busy-polling accept with a sleep.
pub(crate) fn wait_acceptable(listener: &TcpListener, timeout_ms: i32) -> io::Result<bool> {
    #[cfg(unix)]
    {
        let mut fds = [sys::PollFd {
            fd: raw_fd(listener),
            events: sys::POLLIN,
            revents: 0,
        }];
        poll_readiness(&mut fds, timeout_ms)?;
        Ok(readable(fds[0].revents))
    }
    #[cfg(not(unix))]
    {
        let _ = listener;
        std::thread::sleep(std::time::Duration::from_millis(timeout_ms.max(1) as u64));
        Ok(true)
    }
}

/// The self-pipe: read end polled by the loop, write end shared by workers
/// through [`Waker`].
struct WakePipe {
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
    waker: Waker,
}

impl WakePipe {
    fn new() -> io::Result<WakePipe> {
        #[cfg(unix)]
        {
            let (rx, tx) = std::os::unix::net::UnixStream::pair()?;
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            Ok(WakePipe {
                rx,
                waker: Waker {
                    pipe: std::sync::Arc::new(tx),
                },
            })
        }
        #[cfg(not(unix))]
        {
            Ok(WakePipe { waker: Waker {} })
        }
    }

    fn drain(&mut self) {
        #[cfg(unix)]
        {
            let mut buf = [0u8; 64];
            while matches!(self.rx.read(&mut buf), Ok(n) if n > 0) {}
        }
    }
}

// ---------------------------------------------------------------------------
// Per-connection state
// ---------------------------------------------------------------------------

/// A response slot; filled slots at the front of the queue serialize out.
struct Slot {
    seq: u64,
    response: Option<Response>,
}

struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes (at most one partial line).
    inbuf: Vec<u8>,
    /// Serialized responses not yet accepted by the socket.
    outbuf: Vec<u8>,
    out_pos: usize,
    /// In-order response slots for requests read off this connection.
    pending: VecDeque<Slot>,
    next_seq: u64,
    /// Peer sent EOF (or we decided to close after flushing).
    eof: bool,
    /// Socket failed; close without flushing.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            next_seq: 0,
            eof: false,
            dead: false,
        }
    }

    fn unflushed(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }

    fn wants_read(&self, draining: bool) -> bool {
        !self.dead
            && !self.eof
            && !draining
            && self.pending.len() < MAX_PIPELINE
            && self.unflushed() < WRITE_BACKPRESSURE_BYTES
    }

    fn wants_write(&self) -> bool {
        !self.dead && self.unflushed() > 0
    }

    /// Whether the connection is finished and can be dropped.
    fn closed(&self, draining: bool) -> bool {
        self.dead || ((self.eof || draining) && self.pending.is_empty() && self.unflushed() == 0)
    }

    /// Fills the slot `seq` and serializes any now-complete prefix.
    fn complete(&mut self, seq: u64, response: Response) {
        if let Some(slot) = self.pending.iter_mut().find(|s| s.seq == seq) {
            slot.response = Some(response);
        }
        self.flush_ready();
    }

    fn flush_ready(&mut self) {
        while matches!(self.pending.front(), Some(slot) if slot.response.is_some()) {
            let slot = self.pending.pop_front().expect("front checked");
            let response = slot.response.expect("response checked");
            // Vec<u8> writes are infallible.
            let _ = protocol::write_line(&mut self.outbuf, &response);
        }
    }

    /// Pulls everything readable off the socket and dispatches complete
    /// lines.
    fn read_ready<F: Frontend>(
        &mut self,
        frontend: &F,
        tx: &mpsc::Sender<Completion>,
        waker: &Waker,
        conn_id: u64,
    ) {
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&buf[..n]);
                    self.dispatch_lines(frontend, tx, waker, conn_id, false);
                    if self.eof
                        || self.pending.len() >= MAX_PIPELINE
                        || self.unflushed() >= WRITE_BACKPRESSURE_BYTES
                    {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.eof && !self.dead {
            // A missing trailing newline still forms a final request,
            // matching the blocking front end's EOF behaviour.
            self.dispatch_lines(frontend, tx, waker, conn_id, true);
        }
    }

    fn dispatch_lines<F: Frontend>(
        &mut self,
        frontend: &F,
        tx: &mpsc::Sender<Completion>,
        waker: &Waker,
        conn_id: u64,
        at_eof: bool,
    ) {
        while let Some(end) = self.inbuf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.inbuf.drain(..=end).collect();
            self.dispatch_line(&line, frontend, tx, waker, conn_id);
        }
        if at_eof && !self.inbuf.is_empty() {
            let line = std::mem::take(&mut self.inbuf);
            self.dispatch_line(&line, frontend, tx, waker, conn_id);
        } else if self.inbuf.len() > MAX_LINE_BYTES {
            self.inline_response(protocol_error(
                ErrorCode::BadRequest,
                &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            ));
            self.inbuf = Vec::new();
            self.eof = true; // close after the error flushes
        }
    }

    fn dispatch_line<F: Frontend>(
        &mut self,
        line: &[u8],
        frontend: &F,
        tx: &mpsc::Sender<Completion>,
        waker: &Waker,
        conn_id: u64,
    ) {
        if line.iter().all(|b| b.is_ascii_whitespace()) {
            return;
        }
        if self.pending.len() >= MAX_PIPELINE {
            self.inline_response(protocol_error(
                ErrorCode::Overloaded,
                &format!("more than {MAX_PIPELINE} pipelined requests"),
            ));
            return;
        }
        let text = String::from_utf8_lossy(line);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back(Slot {
            seq,
            response: None,
        });
        match protocol::parse_request(&text) {
            Ok(req) => {
                let reply = ReplyHandle {
                    tx: tx.clone(),
                    waker: waker.clone(),
                    conn: conn_id,
                    seq,
                };
                if let Some(response) = frontend.dispatch(req, reply) {
                    self.complete(seq, response);
                }
            }
            Err(e) => {
                self.complete(
                    seq,
                    protocol_error(ErrorCode::BadRequest, &format!("malformed request: {e}")),
                );
            }
        }
    }

    /// Appends a loop-generated response in arrival order (its own slot).
    fn inline_response(&mut self, response: Response) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back(Slot {
            seq,
            response: None,
        });
        self.complete(seq, response);
    }

    /// Pushes buffered output into the socket without blocking.
    fn write_ready(&mut self) {
        while self.out_pos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_pos >= self.outbuf.len() {
            self.outbuf.clear();
            self.out_pos = 0;
        }
    }
}

fn protocol_error(code: ErrorCode, message: &str) -> Response {
    Response::Error {
        code,
        message: message.to_string(),
        request_id: None,
    }
}

// ---------------------------------------------------------------------------
// The loop
// ---------------------------------------------------------------------------

/// Runs the event loop on `listener` until `frontend` starts shutting
/// down, then drains pending responses, closes every connection and
/// returns. Does **not** call any drain/join on the frontend — the caller
/// owns that.
pub(crate) fn run<F: Frontend>(frontend: &F, listener: TcpListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    if let Ok(addr) = listener.local_addr() {
        deept_telemetry::info!("serve", "event loop listening on {addr}");
    }
    let (tx, completions) = mpsc::channel::<Completion>();
    let mut wake = WakePipe::new()?;
    let waker = wake.waker.clone();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn_id: u64 = 0;
    loop {
        let draining = frontend.shutting_down();
        if draining && conns.is_empty() {
            break;
        }

        // Register interest. fds[0] = self-pipe, fds[1] = listener (while
        // accepting), then one entry per connection (aligned with `order`).
        let mut fds: Vec<sys::PollFd> = Vec::with_capacity(conns.len() + 2);
        #[cfg(unix)]
        fds.push(sys::PollFd {
            fd: raw_fd(&wake.rx),
            events: sys::POLLIN,
            revents: 0,
        });
        #[cfg(not(unix))]
        fds.push(sys::PollFd {
            fd: 0,
            events: 0,
            revents: 0,
        });
        let listener_idx = if draining {
            None
        } else {
            #[cfg(unix)]
            fds.push(sys::PollFd {
                fd: raw_fd(&listener),
                events: sys::POLLIN,
                revents: 0,
            });
            #[cfg(not(unix))]
            fds.push(sys::PollFd {
                fd: 0,
                events: sys::POLLIN,
                revents: 0,
            });
            Some(fds.len() - 1)
        };
        let conn_base = fds.len();
        let mut order: Vec<u64> = Vec::with_capacity(conns.len());
        for (&id, conn) in conns.iter() {
            let mut events = 0i16;
            if conn.wants_read(draining) {
                events |= sys::POLLIN;
            }
            if conn.wants_write() {
                events |= sys::POLLOUT;
            }
            #[cfg(unix)]
            fds.push(sys::PollFd {
                fd: raw_fd(&conn.stream),
                events,
                revents: 0,
            });
            #[cfg(not(unix))]
            fds.push(sys::PollFd {
                fd: 0,
                events,
                revents: 0,
            });
            order.push(id);
        }

        poll_readiness(&mut fds, POLL_TIMEOUT_MS)?;

        if readable(fds[0].revents) {
            wake.drain();
        }
        // Deliver finished jobs into their slots (channel is drained every
        // iteration regardless of the wake byte, so nothing is ever lost).
        while let Ok(done) = completions.try_recv() {
            if let Some(conn) = conns.get_mut(&done.conn) {
                conn.complete(done.seq, done.response);
            }
        }

        if let Some(i) = listener_idx {
            if readable(fds[i].revents) {
                accept_ready(&listener, &mut conns, &mut next_conn_id);
            }
        }

        for (i, &id) in order.iter().enumerate() {
            let revents = fds[conn_base + i].revents;
            let conn = conns.get_mut(&id).expect("conn ids are stable");
            if errored(revents) {
                conn.dead = true;
                continue;
            }
            if readable(revents) && conn.wants_read(draining) {
                conn.read_ready(frontend, &tx, &waker, id);
            } else if revents & sys::POLLHUP != 0 {
                conn.eof = true;
            }
            if conn.wants_write() && (writable(revents) || conn.unflushed() > 0) {
                conn.write_ready();
            }
        }
        conns.retain(|_, c| !c.closed(draining));
    }
    Ok(())
}

fn accept_ready(listener: &TcpListener, conns: &mut HashMap<u64, Conn>, next_id: &mut u64) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                conns.insert(*next_id, Conn::new(stream));
                *next_id += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                // Transient accept failures (fd exhaustion and friends)
                // must not kill the server; keep serving live connections.
                deept_telemetry::warn!("serve", "accept failed: {e}");
                break;
            }
        }
    }
}
