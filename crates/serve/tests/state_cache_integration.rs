//! End-to-end tests of the cross-request zonotope state cache and the
//! first-class T2 synonym variant: warm requests must be bitwise
//! identical to cold starts, the `status`/scrape counters must record the
//! resume, and a served synonym sweep must agree with the offline
//! `synonym::certify_deept` certifier.

use std::net::{SocketAddr, TcpListener};
use std::thread;

use deept_data::SynonymSets;
use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_serve::client::Client;
use deept_serve::protocol::{CertifyRequest, CertifyResult, Request, Response, SynonymSpec};
use deept_serve::server::{ServeConfig, Server};
use deept_verifier::deept::DeepTConfig;
use deept_verifier::synonym;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const LAYERS: usize = 2;

fn tiny_model(seed: u64) -> TransformerClassifier {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 12,
            max_len: 6,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 16,
            num_layers: LAYERS,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    )
}

/// A server with the *result* cache off, so a repeated request exercises
/// the state cache instead of replaying a stored payload.
fn start_server(cfg: ServeConfig) -> (Server, SocketAddr, thread::JoinHandle<()>) {
    let server = Server::new(cfg);
    server
        .registry()
        .insert("toy", tiny_model(0))
        .expect("register model");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let acceptor = server.clone();
    let handle = thread::spawn(move || acceptor.serve_listener(listener).expect("serve"));
    (server, addr, handle)
}

fn no_result_cache() -> ServeConfig {
    ServeConfig {
        cache_capacity: 0,
        ..ServeConfig::default()
    }
}

fn eps_request(eps: f64, trace: bool) -> Request {
    Request::Certify(CertifyRequest {
        model_id: "toy".into(),
        tokens: vec![1, 2, 3, 4],
        position: 1,
        norm: "l2".into(),
        variant: "fast".into(),
        eps: Some(eps),
        radius_search: None,
        synonyms: None,
        deadline_ms: None,
        trace,
    })
}

fn synonyms_request(spec: Option<SynonymSpec>) -> Request {
    Request::Certify(CertifyRequest {
        model_id: "toy".into(),
        tokens: vec![1, 2, 3, 4],
        position: 0,
        norm: "l2".into(), // ignored: synonym sweeps are ℓ∞ by construction
        variant: "synonyms".into(),
        eps: None,
        radius_search: None,
        synonyms: spec,
        deadline_ms: None,
        trace: false,
    })
}

fn result_json(resp: &Response) -> String {
    match resp {
        Response::Certify { result, .. } => serde_json::to_string(result).expect("serialize"),
        other => panic!("expected certify response, got {other:?}"),
    }
}

fn shutdown(addr: SocketAddr, handle: thread::JoinHandle<()>) {
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let _ = client.send(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn warm_resume_is_bitwise_identical_and_counted() {
    let (server, addr, handle) = start_server(no_result_cache());
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    let cold = client.send(&eps_request(1e-3, false)).expect("cold");
    let warm = client.send(&eps_request(1e-3, false)).expect("warm");
    // Both ran the verifier (the result cache is off)…
    assert!(!matches!(cold, Response::Certify { cached: true, .. }));
    assert!(!matches!(warm, Response::Certify { cached: true, .. }));
    // …and the warm result is bitwise identical to the cold one.
    assert_eq!(result_json(&cold), result_json(&warm));

    let stats = server.stats();
    assert_eq!(stats.state_cache_misses, 1, "first request is cold");
    assert_eq!(stats.state_cache_hits, 1, "second request resumes");
    assert_eq!(
        stats.state_cache_resumed_layers, LAYERS as u64,
        "the deepest snapshot skips the whole encoder stack"
    );
    assert!(stats.state_cache_resident_bytes > 0);

    // A traced warm request records where it resumed from.
    let traced = client.send(&eps_request(1e-3, true)).expect("traced");
    let Response::Certify {
        trace: Some(trace), ..
    } = &traced
    else {
        panic!("expected a traced certify response, got {traced:?}");
    };
    assert_eq!(
        trace["meta"]["resumed_from_layer"],
        serde_json::Value::Str(LAYERS.to_string())
    );
    // A different ε is a different region: cold again, no false sharing.
    let other = client.send(&eps_request(2e-3, false)).expect("other eps");
    assert_ne!(result_json(&cold), result_json(&other));
    let stats = server.stats();
    assert_eq!(stats.state_cache_misses, 2);

    shutdown(addr, handle);
}

#[test]
fn state_cache_counters_reach_the_prometheus_scrape() {
    let (server, addr, handle) = start_server(no_result_cache());
    let scrape_addr = server
        .spawn_metrics_listener("127.0.0.1:0")
        .expect("bind scrape listener");
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let _ = client.send(&eps_request(1e-3, false)).expect("cold");
    let _ = client.send(&eps_request(1e-3, false)).expect("warm");

    use std::io::{Read as _, Write as _};
    let mut http = std::net::TcpStream::connect(scrape_addr).expect("connect scrape");
    http.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("GET");
    let mut body = String::new();
    http.read_to_string(&mut body).expect("read scrape");
    for metric in [
        "deept_state_cache_hits_total 1",
        "deept_state_cache_misses_total 1",
        "deept_state_cache_evictions_total 0",
        "deept_state_cache_resumed_layers_total 2",
    ] {
        assert!(
            body.contains(metric),
            "scrape is missing {metric:?}:\n{body}"
        );
    }
    assert!(body.contains("deept_state_cache_resident_bytes"));

    shutdown(addr, handle);
}

#[test]
fn zero_budget_disables_resume_without_changing_results() {
    let (server, addr, handle) = start_server(ServeConfig {
        cache_capacity: 0,
        state_cache_bytes: 0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let cold = client.send(&eps_request(1e-3, false)).expect("cold");
    let again = client.send(&eps_request(1e-3, false)).expect("again");
    assert_eq!(result_json(&cold), result_json(&again));
    let stats = server.stats();
    assert_eq!(stats.state_cache_hits, 0);
    assert_eq!(stats.state_cache_misses, 0, "a disabled cache never probes");
    assert_eq!(stats.state_cache_resident_bytes, 0);
    shutdown(addr, handle);
}

#[test]
fn synonym_sweep_matches_offline_certifier_and_resumes_warm() {
    let cfg = no_result_cache();
    let budget = cfg.reduction_budget;
    let (server, addr, handle) = start_server(cfg);
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    let spec = SynonymSpec { k: 3, dist: 1.5 };
    let first = client
        .send(&synonyms_request(Some(spec)))
        .expect("synonyms");
    let Response::Certify {
        result:
            CertifyResult::Synonyms {
                certified,
                positions,
                margins,
                combinations,
            },
        label,
        ..
    } = &first
    else {
        panic!("expected a synonyms result, got {first:?}");
    };

    // The served verdict must agree with the offline T2 certifier over
    // the same synonym sets and verifier configuration.
    let model = tiny_model(0);
    let tokens = vec![1usize, 2, 3, 4];
    let sets = SynonymSets::from_embeddings(&model.token_embed, spec.k, spec.dist);
    let offline = synonym::certify_deept(
        &model,
        &tokens,
        &sets,
        model.predict(&tokens),
        &DeepTConfig::fast(budget),
    );
    assert_eq!(*label, model.predict(&tokens));
    assert_eq!(*certified, offline.certified);
    assert_eq!(margins, &offline.margins, "full-region margins are bitwise");
    assert_eq!(positions.len(), tokens.len());
    assert_eq!(*combinations, sets.combinations(&tokens).to_string());
    // The full verdict can never be certified while a position fails.
    if *certified {
        assert!(positions.iter().all(|&p| p));
    }

    // Replaying the sweep resumes every member from cached snapshots and
    // reproduces the result bitwise.
    let replay = client
        .send(&synonyms_request(Some(spec)))
        .expect("synonyms replay");
    assert_eq!(result_json(&first), result_json(&replay));
    let stats = server.stats();
    assert!(
        stats.state_cache_hits > 0,
        "replayed sweep must resume from the state cache: {stats:?}"
    );

    // The default spec (k = 4, dist = 0.8) also round-trips.
    let defaulted = client.send(&synonyms_request(None)).expect("default spec");
    assert!(matches!(
        defaulted,
        Response::Certify {
            result: CertifyResult::Synonyms { .. },
            ..
        }
    ));

    shutdown(addr, handle);
}
