//! End-to-end tests of the certification server: TCP and stdio framing,
//! cache hits, backpressure, deadlines, and graceful shutdown.

use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_serve::client::Client;
use deept_serve::protocol::{
    parse_response, CertifyRequest, CertifyResult, ErrorCode, RadiusSearchSpec, Request, Response,
};
use deept_serve::server::{ServeConfig, Server};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_model(seed: u64, num_layers: usize) -> TransformerClassifier {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 12,
            max_len: 6,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 16,
            num_layers,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    )
}

fn start_server(
    cfg: ServeConfig,
    num_layers: usize,
) -> (Server, SocketAddr, thread::JoinHandle<()>) {
    let server = Server::new(cfg);
    server
        .registry()
        .insert("toy", tiny_model(0, num_layers))
        .expect("register model");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let acceptor = server.clone();
    let handle = thread::spawn(move || acceptor.serve_listener(listener).expect("serve"));
    (server, addr, handle)
}

fn eps_request(eps: f64) -> Request {
    Request::Certify(CertifyRequest {
        model_id: "toy".into(),
        tokens: vec![1, 2, 3],
        position: 0,
        norm: "l2".into(),
        variant: "fast".into(),
        eps: Some(eps),
        radius_search: None,
        synonyms: None,
        deadline_ms: None,
        trace: false,
    })
}

fn radius_request(start: f64, iters: usize, deadline_ms: Option<u64>) -> Request {
    Request::Certify(CertifyRequest {
        model_id: "toy".into(),
        tokens: vec![1, 2, 3, 4, 5, 6],
        position: 1,
        norm: "l2".into(),
        variant: "precise".into(),
        eps: None,
        radius_search: Some(RadiusSearchSpec { start, iters }),
        synonyms: None,
        deadline_ms,
        trace: false,
    })
}

fn refine_request(eps: f64, deadline_ms: Option<u64>) -> Request {
    Request::Certify(CertifyRequest {
        model_id: "toy".into(),
        tokens: vec![1, 2, 3],
        position: 0,
        norm: "inf".into(),
        variant: "refine".into(),
        eps: Some(eps),
        radius_search: None,
        synonyms: None,
        deadline_ms,
        trace: false,
    })
}

/// The `result` payload serialized, for bitwise-identity assertions.
fn result_json(resp: &Response) -> String {
    match resp {
        Response::Certify { result, .. } => serde_json::to_string(result).expect("serialize"),
        other => panic!("expected certify response, got {other:?}"),
    }
}

fn is_cached(resp: &Response) -> bool {
    match resp {
        Response::Certify { cached, .. } => *cached,
        other => panic!("expected certify response, got {other:?}"),
    }
}

#[test]
fn concurrent_clients_get_identical_results_and_cache_replays_bitwise() {
    let (server, addr, handle) = start_server(ServeConfig::default(), 1);
    let addr_str = addr.to_string();

    // Four clients fire the same query concurrently.
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr_str.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                client.send(&eps_request(1e-4)).expect("certify")
            })
        })
        .collect();
    let responses: Vec<Response> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    let first = result_json(&responses[0]);
    for resp in &responses {
        assert_eq!(
            result_json(resp),
            first,
            "concurrent identical queries must agree bitwise"
        );
    }

    // By now the result is cached: a repeat answers from the cache with a
    // bitwise-identical payload.
    let mut client = Client::connect(&addr_str).expect("connect");
    let repeat = client.send(&eps_request(1e-4)).expect("certify");
    assert!(is_cached(&repeat), "expected a cache hit");
    assert_eq!(result_json(&repeat), first);

    // A bit-distinct radius is a different key, not a stale hit.
    let nudged = f64::from_bits(1e-4_f64.to_bits() + 1);
    let fresh = client.send(&eps_request(nudged)).expect("certify");
    assert!(!is_cached(&fresh));

    match client.send(&Request::Status).expect("status") {
        Response::Status(report) => {
            assert!(report.cache_hits >= 1, "cache hits: {}", report.cache_hits);
            assert!(report.cache_misses >= 2);
            assert_eq!(report.models, vec!["toy".to_string()]);
            assert_eq!(report.overloaded, 0);
        }
        other => panic!("expected status, got {other:?}"),
    }

    match client.send(&Request::Shutdown).expect("shutdown") {
        Response::ShuttingDown { .. } => {}
        other => panic!("expected shutting_down, got {other:?}"),
    }
    handle.join().expect("server thread");
    assert!(server.stats().completed >= 2);
}

#[test]
fn queue_overflow_rejects_with_overloaded_and_server_survives() {
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let (_server, addr, handle) = start_server(cfg, 2);
    let addr_str = addr.to_string();

    // Six slow radius searches released simultaneously against one worker
    // and one queue slot: at least one must be rejected with backpressure.
    let n = 6;
    let barrier = Arc::new(Barrier::new(n));
    let clients: Vec<_> = (0..n)
        .map(|i| {
            let addr = addr_str.clone();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                // Distinct start radii keep the requests out of each
                // other's cache entries.
                let mut client = Client::connect(&addr).expect("connect");
                let req = radius_request(0.01 + 0.001 * i as f64, 24, None);
                barrier.wait();
                client.send(&req).expect("send")
            })
        })
        .collect();
    let responses: Vec<Response> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    let overloaded = responses
        .iter()
        .filter(|r| {
            matches!(
                r,
                Response::Error {
                    code: ErrorCode::Overloaded,
                    ..
                }
            )
        })
        .count();
    let succeeded = responses
        .iter()
        .filter(|r| matches!(r, Response::Certify { .. }))
        .count();
    assert_eq!(
        overloaded + succeeded,
        n,
        "unexpected responses: {responses:?}"
    );
    assert!(overloaded >= 1, "expected backpressure, got {responses:?}");
    // At least one request is accepted and an accepted job always runs to
    // completion. Two successes are *likely* (the worker usually dequeues
    // the first job before the stragglers are rejected, freeing the queue
    // slot) but not guaranteed: on a single-CPU host all five remaining
    // submissions can be rejected before the worker thread gets a slice.
    assert!(
        succeeded >= 1,
        "expected some completions, got {responses:?}"
    );

    // The server is still healthy after shedding load.
    let mut client = Client::connect(&addr_str).expect("connect");
    match client.send(&Request::Status).expect("status") {
        Response::Status(report) => {
            assert_eq!(report.overloaded, overloaded as u64);
            assert!(report.completed >= succeeded as u64);
        }
        other => panic!("expected status, got {other:?}"),
    }
    let healthy = client.send(&eps_request(1e-4)).expect("certify");
    assert!(matches!(healthy, Response::Certify { .. }));

    client.send(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn expired_deadline_times_out_without_hanging() {
    let (server, addr, handle) = start_server(ServeConfig::default(), 2);
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    // A 1 ms budget cannot finish a precise radius search; the server must
    // answer with a structured timeout, not hang the worker.
    let resp = client
        .send(&radius_request(0.01, 30, Some(1)))
        .expect("send");
    match &resp {
        Response::Error { code, message, .. } => {
            assert_eq!(*code, ErrorCode::Timeout, "{message}");
            assert!(message.contains("deadline"), "{message}");
        }
        other => panic!("expected timeout, got {other:?}"),
    }

    // Timeouts are not cached; the same connection keeps working.
    let ok = client.send(&eps_request(1e-4)).expect("certify");
    assert!(matches!(ok, Response::Certify { cached: false, .. }));
    assert!(server.stats().deadline_aborts >= 1);

    client.send(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
}

/// Regression (soundness hardening): the cache key is
/// `(fingerprint, tokens, position, norm, variant, query)` — it does *not*
/// include the deadline. If a radius search interrupted mid-iteration ever
/// cached its partial lower bound, a later identical request with a generous
/// (or no) deadline would replay the partial radius as the final answer.
/// Timeouts must therefore never populate the cache: after a timed-out
/// search, the same query must be recomputed in full, and only the complete
/// result may be cached and replayed.
#[test]
fn timed_out_radius_search_is_never_cached_as_final() {
    let (server, addr, handle) = start_server(ServeConfig::default(), 2);
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    // A 25 ms budget expires inside the radius iterations of this precise
    // search (the radius-0 sanity check and possibly a few bracket queries
    // complete first, so a partial lower bound exists to leak).
    let bounded = client
        .send(&radius_request(0.01, 24, Some(25)))
        .expect("send");
    match &bounded {
        Response::Error { code, message, .. } => {
            assert_eq!(*code, ErrorCode::Timeout, "{message}");
        }
        // On a fast machine the search may finish inside the budget; then
        // there is nothing partial to leak and the test is vacuous but
        // still checks cache coherence below.
        Response::Certify { .. } => {}
        other => panic!("expected timeout or completion, got {other:?}"),
    }
    let timed_out = matches!(bounded, Response::Error { .. });

    // The identical query without a deadline: if the timeout had been
    // cached, this would be a (partial!) cache hit — it must be a fresh,
    // complete computation instead.
    let full = client.send(&radius_request(0.01, 24, None)).expect("send");
    match &full {
        Response::Certify { cached, result, .. } => {
            if timed_out {
                assert!(!cached, "timed-out search must not have been cached");
            }
            match result {
                CertifyResult::Radius { queries, .. } => {
                    // A complete 24-iteration search: sanity check + bracket
                    // growth + 24 bisections.
                    assert!(*queries >= 25, "suspiciously few queries: {queries}");
                }
                other => panic!("expected radius result, got {other:?}"),
            }
        }
        other => panic!("expected certify response, got {other:?}"),
    }

    // Only the complete result is cached, and it replays bitwise.
    let replay = client.send(&radius_request(0.01, 24, None)).expect("send");
    assert!(is_cached(&replay), "complete result must be cached");
    assert_eq!(result_json(&replay), result_json(&full));
    if timed_out {
        assert!(server.stats().deadline_aborts >= 1);
    }

    client.send(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn refine_variant_round_trips_and_caches_final_verdicts() {
    let (_server, addr, handle) = start_server(ServeConfig::default(), 2);
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    // A tiny ℓ∞ ball certifies at the fast level of the ladder.
    let first = client.send(&refine_request(1e-4, None)).expect("send");
    match &first {
        Response::Certify { result, cached, .. } => {
            assert!(!cached, "first refine answer must be a fresh computation");
            match result {
                CertifyResult::Refined {
                    verdict,
                    margin,
                    level,
                    ..
                } => {
                    assert_eq!(verdict, "certified");
                    assert_eq!(level, "fast");
                    assert!(margin.expect("certified margin") > 0.0);
                }
                other => panic!("expected refined result, got {other:?}"),
            }
        }
        other => panic!("expected certify response, got {other:?}"),
    }

    // The final verdict is cached and replays bitwise.
    let replay = client.send(&refine_request(1e-4, None)).expect("send");
    assert!(is_cached(&replay), "final refine verdict must be cached");
    assert_eq!(result_json(&replay), result_json(&first));

    // The ladder answers eps queries only; radius searches are rejected.
    let rejected = client
        .send(&Request::Certify(CertifyRequest {
            model_id: "toy".into(),
            tokens: vec![1, 2, 3],
            position: 0,
            norm: "inf".into(),
            variant: "refine".into(),
            eps: None,
            radius_search: Some(RadiusSearchSpec {
                start: 0.01,
                iters: 4,
            }),
            synonyms: None,
            deadline_ms: None,
            trace: false,
        }))
        .expect("send");
    match rejected {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected bad-request error, got {other:?}"),
    }

    client.send(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
}

/// The PR 3 deadline/cache rule carried over to the refinement ladder: a
/// refine request cut short by its deadline yields a timeout error, and
/// its partial verdict must never be cached as final.
#[test]
fn timed_out_refine_is_never_cached_as_final() {
    let (server, addr, handle) = start_server(ServeConfig::default(), 2);
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    // A zero budget is already expired when the worker picks the job up,
    // so the ladder times out deterministically inside the fast pass.
    let bounded = client.send(&refine_request(1e-4, Some(0))).expect("send");
    match &bounded {
        Response::Error { code, message, .. } => {
            assert_eq!(*code, ErrorCode::Timeout, "{message}");
        }
        other => panic!("expected timeout, got {other:?}"),
    }
    assert!(server.stats().deadline_aborts >= 1);

    // The identical query without a deadline: had the timeout been cached,
    // this would be a (partial!) cache hit — it must be a fresh, complete
    // computation instead.
    let full = client.send(&refine_request(1e-4, None)).expect("send");
    match &full {
        Response::Certify { cached, result, .. } => {
            assert!(!cached, "timed-out refine query must not have been cached");
            assert!(
                matches!(result, CertifyResult::Refined { .. }),
                "expected refined result, got {result:?}"
            );
        }
        other => panic!("expected certify response, got {other:?}"),
    }

    // Only the complete verdict is cached, and it replays bitwise.
    let replay = client.send(&refine_request(1e-4, None)).expect("send");
    assert!(is_cached(&replay), "complete refine verdict must be cached");
    assert_eq!(result_json(&replay), result_json(&full));

    client.send(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn graceful_shutdown_drains_in_flight_jobs() {
    let cfg = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let (server, addr, handle) = start_server(cfg, 2);
    let addr_str = addr.to_string();

    let worker_client = {
        let addr = addr_str.clone();
        thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.send(&radius_request(0.01, 20, None)).expect("send")
        })
    };
    // Let the job reach the queue, then ask for shutdown from a second
    // connection.
    thread::sleep(Duration::from_millis(150));
    let mut client = Client::connect(&addr_str).expect("connect");
    let ack = client.send(&Request::Shutdown).expect("shutdown");
    assert!(matches!(ack, Response::ShuttingDown { .. }));

    // The in-flight job still completes with a real result.
    let resp = worker_client.join().unwrap();
    assert!(
        matches!(resp, Response::Certify { .. }),
        "in-flight job must drain, got {resp:?}"
    );
    handle.join().expect("server thread");
    assert!(server.stats().completed >= 1);
}

#[test]
fn stdio_mode_speaks_the_same_protocol() {
    let server = Server::new(ServeConfig::default());
    server.registry().insert("toy", tiny_model(0, 1)).unwrap();

    let input = concat!(
        r#"{"type":"status"}"#,
        "\n",
        r#"{"type":"certify","model_id":"toy","tokens":[1,2,3],"eps":1e-4}"#,
        "\n",
        r#"{"type":"certify","model_id":"toy","tokens":[1,2,3],"eps":1e-4}"#,
        "\n",
        r#"{"type":"certify","model_id":"nope","tokens":[1],"eps":1e-4}"#,
        "\n",
        "this is not json\n",
        r#"{"type":"shutdown"}"#,
        "\n",
        r#"{"type":"status"}"#,
        "\n",
    );
    let mut output = Vec::new();
    server
        .serve_stdio(input.as_bytes(), &mut output)
        .expect("serve stdio");

    let lines: Vec<Response> = String::from_utf8(output)
        .expect("utf8 output")
        .lines()
        .map(|l| parse_response(l).expect("parse response"))
        .collect();
    // The post-shutdown status is never processed: the session ends at
    // the shutdown acknowledgement.
    assert_eq!(lines.len(), 6, "{lines:?}");
    assert!(matches!(lines[0], Response::Status(_)));
    let first = result_json(&lines[1]);
    assert!(!is_cached(&lines[1]));
    assert!(is_cached(&lines[2]), "second identical query must hit");
    assert_eq!(result_json(&lines[2]), first);
    assert!(matches!(
        lines[3],
        Response::Error {
            code: ErrorCode::UnknownModel,
            ..
        }
    ));
    assert!(matches!(
        lines[4],
        Response::Error {
            code: ErrorCode::BadRequest,
            ..
        }
    ));
    assert!(matches!(lines[5], Response::ShuttingDown { .. }));
}

#[test]
fn stdio_eof_drains_gracefully() {
    let server = Server::new(ServeConfig::default());
    server.registry().insert("toy", tiny_model(0, 1)).unwrap();
    let input = concat!(
        r#"{"type":"certify","model_id":"toy","tokens":[1,2],"eps":1e-4}"#,
        "\n"
    );
    let mut output = Vec::new();
    server.serve_stdio(input.as_bytes(), &mut output).unwrap();
    let text = String::from_utf8(output).unwrap();
    assert_eq!(text.lines().count(), 1);
    assert!(matches!(
        parse_response(text.lines().next().unwrap()).unwrap(),
        Response::Certify { .. }
    ));
    // EOF drained the server; the worker pool is gone but the object is
    // still safe to query.
    assert!(server.shutting_down());
    assert_eq!(server.stats().completed, 1);
}

#[test]
fn bad_requests_are_rejected_with_structure() {
    let server = Server::new(ServeConfig::default());
    server.registry().insert("toy", tiny_model(0, 1)).unwrap();
    let cases: Vec<(Request, &str)> = vec![
        (
            Request::Certify(CertifyRequest {
                norm: "l7".into(),
                ..base_certify()
            }),
            "norm",
        ),
        (
            Request::Certify(CertifyRequest {
                variant: "turbo".into(),
                ..base_certify()
            }),
            "variant",
        ),
        (
            Request::Certify(CertifyRequest {
                eps: None,
                ..base_certify()
            }),
            "exactly one",
        ),
        (
            Request::Certify(CertifyRequest {
                eps: Some(f64::NAN),
                ..base_certify()
            }),
            "finite",
        ),
        (
            Request::Certify(CertifyRequest {
                tokens: vec![],
                ..base_certify()
            }),
            "token count",
        ),
        (
            Request::Certify(CertifyRequest {
                tokens: vec![999],
                ..base_certify()
            }),
            "vocabulary",
        ),
        (
            Request::Certify(CertifyRequest {
                position: 9,
                ..base_certify()
            }),
            "position",
        ),
    ];
    for (req, needle) in cases {
        match server.handle(req) {
            Response::Error {
                code,
                message,
                request_id,
            } => {
                assert_eq!(code, ErrorCode::BadRequest, "{message}");
                assert!(message.contains(needle), "{message:?} missing {needle:?}");
                assert!(request_id.is_some(), "errors must echo the request id");
            }
            other => panic!("expected bad_request, got {other:?}"),
        }
    }
    server.drain();
}

fn base_certify() -> CertifyRequest {
    CertifyRequest {
        model_id: "toy".into(),
        tokens: vec![1, 2, 3],
        position: 0,
        norm: "l2".into(),
        variant: "fast".into(),
        eps: Some(1e-4),
        radius_search: None,
        synonyms: None,
        deadline_ms: None,
        trace: false,
    }
}

#[test]
fn request_ids_are_unique_monotonic_and_echoed_everywhere() {
    let (server, addr, handle) = start_server(ServeConfig::default(), 1);
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    let mut seen = Vec::new();
    let first = client.send(&eps_request(1e-4)).expect("certify");
    assert!(matches!(first, Response::Certify { .. }));
    seen.push(first.request_id().expect("certify echoes request_id"));

    // Cache hits and error replies carry ids too.
    let hit = client.send(&eps_request(1e-4)).expect("certify");
    assert!(is_cached(&hit));
    seen.push(hit.request_id().expect("cache hit echoes request_id"));
    let err = client
        .send(&Request::Certify(CertifyRequest {
            model_id: "nope".into(),
            ..base_certify()
        }))
        .expect("send");
    assert!(matches!(err, Response::Error { .. }));
    seen.push(err.request_id().expect("error echoes request_id"));
    match client.send(&Request::Status).expect("status") {
        Response::Status(report) => seen.push(report.request_id.expect("status echoes id")),
        other => panic!("expected status, got {other:?}"),
    }

    for pair in seen.windows(2) {
        assert!(pair[0] < pair[1], "ids must be monotonic: {seen:?}");
    }

    client.send(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
    drop(server);
}

#[test]
fn metrics_request_reports_lifecycle_counters_and_phase_histograms() {
    let (server, addr, handle) = start_server(ServeConfig::default(), 1);
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    let miss = client.send(&eps_request(2e-4)).expect("certify");
    assert!(!is_cached(&miss));
    let hit = client.send(&eps_request(2e-4)).expect("certify");
    assert!(is_cached(&hit));

    let snapshot = match client.send(&Request::Metrics).expect("metrics") {
        Response::Metrics { snapshot, .. } => snapshot,
        other => panic!("expected metrics, got {other:?}"),
    };
    assert_eq!(
        snapshot.counter_value("deept_serve_cache_hits_total"),
        Some(1)
    );
    assert_eq!(
        snapshot.counter_value("deept_serve_cache_misses_total"),
        Some(1)
    );
    // One uncached request flowed through the whole pipeline, so each
    // phase histogram holds at least one sample and the phases nest
    // inside the end-to-end time.
    let total = snapshot
        .histogram("deept_serve_request_seconds")
        .expect("request histogram");
    assert_eq!(total.count, 2, "miss + hit both observe end-to-end");
    let queue_wait = snapshot
        .histogram("deept_serve_queue_wait_seconds")
        .expect("queue-wait histogram");
    let propagation = snapshot
        .histogram("deept_serve_propagation_seconds")
        .expect("propagation histogram");
    assert_eq!(queue_wait.count, 1);
    assert_eq!(propagation.count, 1);
    assert!(
        propagation.sum() <= total.sum() * 1.001,
        "propagation ({}) cannot exceed end-to-end ({})",
        propagation.sum(),
        total.sum()
    );
    assert_eq!(
        snapshot.counter_value("deept_serve_model_requests_total"),
        Some(2),
        "per-model counter tracks certify requests"
    );
    // Uptime is stamped at snapshot time.
    assert!(snapshot.gauge_value("deept_serve_uptime_seconds").unwrap() >= 0.0);

    client.send(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
    drop(server);
}

#[test]
fn metrics_listener_serves_prometheus_text_and_profile() {
    use std::io::{Read as _, Write as _};

    let (server, addr, handle) = start_server(ServeConfig::default(), 1);
    let scrape_addr = server
        .spawn_metrics_listener("127.0.0.1:0")
        .expect("bind metrics listener");

    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let resp = client.send(&eps_request(3e-4)).expect("certify");
    assert!(matches!(resp, Response::Certify { .. }));

    let scrape = |path: &str| -> String {
        let mut stream = std::net::TcpStream::connect(scrape_addr).expect("connect scrape");
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("write request");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("read response");
        body
    };

    let metrics = scrape("/metrics");
    assert!(metrics.starts_with("HTTP/1.0 200 OK"), "{metrics}");
    assert!(
        metrics.contains("text/plain; version=0.0.4"),
        "missing exposition content type: {metrics}"
    );
    for needle in [
        "# TYPE deept_serve_requests_received_total counter",
        "# TYPE deept_serve_queue_wait_seconds histogram",
        "deept_serve_queue_wait_seconds_bucket{le=\"+Inf\"}",
        "deept_serve_request_seconds_sum",
        "deept_serve_queue_depth 0",
    ] {
        assert!(
            metrics.contains(needle),
            "missing {needle:?} in:\n{metrics}"
        );
    }
    // Under the SIMD kernel rung the certify above must have recorded at
    // least one dispatch, labeled with the runtime-detected ISA, and the
    // merged scrape must surface it. (A `DEEPT_KERNEL=naive|blocked` CI
    // axis legitimately records none, so only assert when SIMD is active.)
    if deept_tensor::parallel::kernel_mode() == deept_tensor::parallel::KernelMode::Simd
        && deept_metrics::enabled()
    {
        let isa = deept_tensor::simd::active_isa().label();
        let needle = format!("deept_simd_dispatch_total{{isa=\"{isa}\"}}");
        assert!(
            metrics.contains(&needle),
            "missing SIMD dispatch counter {needle:?} in:\n{metrics}"
        );
    }

    let not_found = scrape("/nope");
    assert!(not_found.starts_with("HTTP/1.0 404"), "{not_found}");

    // The profile endpoint answers (collapsed-stack lines appear only when
    // the global metrics gate is on, so just check it serves).
    let profile = scrape("/profile");
    assert!(profile.starts_with("HTTP/1.0 200 OK"), "{profile}");

    client.send(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
}

#[test]
fn trace_attaches_to_uncached_responses_only() {
    let server = Server::new(ServeConfig::default());
    server.registry().insert("toy", tiny_model(0, 1)).unwrap();
    let req = Request::Certify(CertifyRequest {
        trace: true,
        ..base_certify()
    });
    match server.handle(req.clone()) {
        Response::Certify { trace, cached, .. } => {
            assert!(!cached);
            let trace = trace.expect("trace requested");
            assert!(trace.get("spans").is_some(), "trace missing spans: {trace}");
        }
        other => panic!("expected certify, got {other:?}"),
    }
    match server.handle(req) {
        Response::Certify { trace, cached, .. } => {
            assert!(cached);
            assert!(trace.is_none(), "cache hits carry no trace");
        }
        other => panic!("expected certify, got {other:?}"),
    }
    server.drain();
}
