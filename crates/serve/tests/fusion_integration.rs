//! Batch-fusion and event-loop integration tests: fused lockstep batches
//! must be bitwise identical to serial certification at every thread
//! count, identical in-flight queries must coalesce onto one
//! propagation, and connection churn must not accumulate threads.

use std::net::{SocketAddr, TcpListener};
use std::thread;
use std::time::Duration;

use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_serve::client::Client;
use deept_serve::protocol::{CertifyRequest, RadiusSearchSpec, Request, Response};
use deept_serve::server::{ServeConfig, Server};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_model(seed: u64) -> TransformerClassifier {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 12,
            max_len: 6,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 16,
            num_layers: 2,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    )
}

fn start_server(cfg: ServeConfig) -> (Server, SocketAddr, thread::JoinHandle<()>) {
    let server = Server::new(cfg);
    server
        .registry()
        .insert("toy", tiny_model(0))
        .expect("register model");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let acceptor = server.clone();
    let handle = thread::spawn(move || acceptor.serve_listener(listener).expect("serve"));
    (server, addr, handle)
}

fn eps_request(eps: f64) -> Request {
    Request::Certify(CertifyRequest {
        model_id: "toy".into(),
        tokens: vec![1, 2, 3],
        position: 0,
        norm: "l2".into(),
        variant: "fast".into(),
        eps: Some(eps),
        radius_search: None,
        synonyms: None,
        deadline_ms: None,
        trace: false,
    })
}

/// A slow radius search used to pin the single worker while fusible jobs
/// pile up behind it in the queue.
fn slow_request() -> Request {
    Request::Certify(CertifyRequest {
        model_id: "toy".into(),
        tokens: vec![1, 2, 3, 4, 5, 6],
        position: 1,
        norm: "l2".into(),
        variant: "precise".into(),
        eps: None,
        radius_search: Some(RadiusSearchSpec {
            start: 0.01,
            iters: 40,
        }),
        synonyms: None,
        deadline_ms: None,
        trace: false,
    })
}

fn result_json(resp: &Response) -> String {
    match resp {
        Response::Certify { result, .. } => serde_json::to_string(result).expect("serialize"),
        other => panic!("expected certify response, got {other:?}"),
    }
}

fn counter(server: &Server, name: &str) -> u64 {
    match server.handle(Request::Metrics) {
        Response::Metrics { snapshot, .. } => snapshot.counter_value(name).unwrap_or(0),
        other => panic!("expected metrics, got {other:?}"),
    }
}

/// Fires `eps_list` concurrently against a single-worker fused server
/// whose worker is pinned by a slow job, so the fusible jobs queue up and
/// dequeue as one lockstep batch. Returns the result payloads in
/// submission order.
fn run_fused(eps_list: &[f64]) -> (Vec<String>, u64) {
    let (server, addr, handle) = start_server(ServeConfig {
        workers: 1,
        queue_capacity: 32,
        fuse_max: 8,
        ..ServeConfig::default()
    });
    let addr_str = addr.to_string();

    // Pin the worker, then let the slow job reach it before queueing the
    // fusible batch behind it.
    let pin = {
        let addr = addr_str.clone();
        thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.send(&slow_request()).expect("slow certify")
        })
    };
    thread::sleep(Duration::from_millis(150));

    let members: Vec<_> = eps_list
        .iter()
        .map(|&eps| {
            let addr = addr_str.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                client.send(&eps_request(eps)).expect("certify")
            })
        })
        .collect();
    let payloads: Vec<String> = members
        .into_iter()
        .map(|m| result_json(&m.join().unwrap()))
        .collect();
    assert!(matches!(pin.join().unwrap(), Response::Certify { .. }));

    let fused_members = counter(&server, "deept_serve_fused_members_total");
    let mut client = Client::connect(&addr_str).expect("connect");
    client.send(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
    (payloads, fused_members)
}

/// The same queries, one at a time, with fusion and coalescing disabled:
/// the serial reference the fused batch must match bitwise.
fn run_serial(eps_list: &[f64]) -> Vec<String> {
    let (server, addr, handle) = start_server(ServeConfig {
        workers: 1,
        fuse_max: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let payloads = eps_list
        .iter()
        .map(|&eps| result_json(&client.send(&eps_request(eps)).expect("certify")))
        .collect();
    client.send(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
    drop(server);
    payloads
}

/// The soundness contract of batch fusion: a fused lockstep batch runs
/// the members through the *same* per-member math as serial
/// certification, so the payloads are bitwise identical — at one worker
/// thread and at four.
#[test]
fn fused_batches_match_serial_bitwise_at_one_and_four_threads() {
    let eps_list = [1e-4, 2e-4, 3e-4, 4e-4];
    for threads in [1usize, 4] {
        let _guard = deept_tensor::parallel::test_lock();
        deept_tensor::parallel::set_thread_override(Some(threads));
        let (fused, fused_members) = run_fused(&eps_list);
        let serial = run_serial(&eps_list);
        deept_tensor::parallel::set_thread_override(None);
        assert_eq!(
            fused, serial,
            "fused batch diverged from serial at {threads} thread(s)"
        );
        // The timing-dependent part is *how many* jobs fused (the worker
        // may dequeue before every member arrived); at least two must
        // have shared a batch for the equivalence check to mean anything.
        assert!(
            fused_members >= 2,
            "expected a fused batch of >= 2 members at {threads} thread(s), got {fused_members}"
        );
    }
}

/// Identical queries in flight at the same time coalesce: one leader
/// propagates, the waiters share its bitwise-identical result.
#[test]
fn identical_inflight_queries_coalesce_onto_one_propagation() {
    let (server, addr, handle) = start_server(ServeConfig {
        workers: 1,
        queue_capacity: 32,
        fuse_max: 8,
        ..ServeConfig::default()
    });
    let addr_str = addr.to_string();

    let pin = {
        let addr = addr_str.clone();
        thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.send(&slow_request()).expect("slow certify")
        })
    };
    thread::sleep(Duration::from_millis(150));

    let same: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr_str.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                client.send(&eps_request(5e-4)).expect("certify")
            })
        })
        .collect();
    let payloads: Vec<String> = same
        .into_iter()
        .map(|m| result_json(&m.join().unwrap()))
        .collect();
    pin.join().unwrap();

    for p in &payloads {
        assert_eq!(p, &payloads[0], "coalesced waiters must share bitwise");
    }
    assert!(
        counter(&server, "deept_serve_coalesced_total") >= 1,
        "no request coalesced"
    );

    let mut client = Client::connect(&addr_str).expect("connect");
    client.send(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
}

/// Regression for the serve-layer resource leak: a thousand short-lived
/// connections must not accumulate per-connection threads (the event
/// loop multiplexes them on one poller) or leak finished service
/// handles, and the server must stay responsive throughout.
#[test]
fn connection_churn_leaves_no_thread_residue() {
    let (server, addr, handle) = start_server(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr_str = addr.to_string();

    for i in 0..1000 {
        let mut stream = std::net::TcpStream::connect(&addr_str).expect("connect");
        if i % 3 == 0 {
            // Some connections speak before hanging up; the rest just
            // connect and vanish.
            use std::io::Write as _;
            stream.write_all(b"{\"type\":\"status\"}\n").expect("write");
        }
        drop(stream);
    }

    // No per-connection threads: only long-lived service threads (like a
    // metrics listener, none here) are ever tracked.
    assert_eq!(
        server.tracked_thread_handles(),
        0,
        "connection churn must not accumulate thread handles"
    );

    // Still healthy after the churn.
    let mut client = Client::connect(&addr_str).expect("connect");
    let resp = client.send(&eps_request(7e-4)).expect("certify");
    assert!(matches!(resp, Response::Certify { .. }), "{resp:?}");

    client.send(&Request::Shutdown).expect("shutdown");
    handle.join().expect("server thread");
}
