//! Router integration: two in-process shard servers behind a `Router`,
//! fingerprint-hash routing of `load_model`, certify forwarding to the
//! owning shard, fleet-wide aggregation, and a shutdown broadcast that
//! drains both shards.

use std::net::{SocketAddr, TcpListener};
use std::thread;

use deept_nn::transformer::{LayerNormKind, TransformerClassifier, TransformerConfig};
use deept_serve::protocol::{CertifyRequest, ErrorCode, Request, Response};
use deept_serve::router::{peek_fingerprint, shard_for, Router, RouterConfig};
use deept_serve::server::{ServeConfig, Server};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_model(seed: u64) -> TransformerClassifier {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    TransformerClassifier::new(
        TransformerConfig {
            vocab_size: 12,
            max_len: 6,
            embed_dim: 8,
            num_heads: 2,
            hidden_dim: 16,
            num_layers: 1,
            num_classes: 2,
            layer_norm: LayerNormKind::NoStd,
        },
        &mut rng,
    )
}

fn start_shard() -> (Server, SocketAddr, thread::JoinHandle<()>) {
    let server = Server::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let acceptor = server.clone();
    let handle = thread::spawn(move || acceptor.serve_listener(listener).expect("serve"));
    (server, addr, handle)
}

fn certify_request(model_id: &str) -> Request {
    Request::Certify(CertifyRequest {
        model_id: model_id.into(),
        tokens: vec![1, 2, 3],
        position: 0,
        norm: "l2".into(),
        variant: "fast".into(),
        eps: Some(1e-4),
        radius_search: None,
        synonyms: None,
        deadline_ms: None,
        trace: false,
    })
}

#[test]
fn two_shard_router_routes_by_fingerprint_and_drains_on_shutdown() {
    // A real checkpoint on disk: the router peeks its fingerprint without
    // loading the weights.
    let dir = std::env::temp_dir().join(format!("deept-router-int-{}", std::process::id()));
    let path = dir.join("toy.json");
    let saved_fp = deept_nn::checkpoint::save(&tiny_model(3), &path).expect("save checkpoint");
    let path_str = path.to_string_lossy().into_owned();
    assert_eq!(peek_fingerprint(&path_str).expect("peek"), saved_fp);

    let (shard_a, addr_a, handle_a) = start_shard();
    let (shard_b, addr_b, handle_b) = start_shard();
    let shards = [shard_a, shard_b];
    let router = Router::new(RouterConfig {
        shards: vec![addr_a.to_string(), addr_b.to_string()],
        forwarders: 2,
        queue_capacity: 16,
    });

    // Certify before load: the router knows no assignment yet.
    match router.handle(certify_request("toy")) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownModel),
        other => panic!("expected unknown_model, got {other:?}"),
    }

    // Load routes to shard_for(fingerprint, 2) and records the assignment.
    let expected_shard = shard_for(&saved_fp, 2);
    match router.handle(Request::LoadModel {
        model_id: "toy".into(),
        path: path_str.clone(),
    }) {
        Response::ModelLoaded { fingerprint, .. } => assert_eq!(fingerprint, saved_fp),
        other => panic!("expected model_loaded, got {other:?}"),
    }
    assert_eq!(router.assignment("toy"), Some(expected_shard));

    // Certifies now forward to the owning shard — and only to it.
    for _ in 0..3 {
        match router.handle(certify_request("toy")) {
            Response::Certify { .. } => {}
            other => panic!("expected certify, got {other:?}"),
        }
    }
    assert!(shards[expected_shard].stats().completed >= 1);
    assert_eq!(
        shards[1 - expected_shard].stats().completed,
        0,
        "the non-owning shard must see no certify traffic"
    );

    // Status aggregates the fleet: worker counts sum, models union.
    match router.handle(Request::Status) {
        Response::Status(report) => {
            assert_eq!(report.workers, 2, "1 worker per shard, summed");
            assert_eq!(report.models, vec!["toy".to_string()]);
            assert!(report.cache_hits + report.cache_misses >= 3);
        }
        other => panic!("expected status, got {other:?}"),
    }

    // The aggregated scrape carries both shards' samples, relabeled.
    let fleet = router.aggregate_metrics().to_prometheus();
    assert!(fleet.contains("shard=\"0\""), "missing shard 0:\n{fleet}");
    assert!(fleet.contains("shard=\"1\""), "missing shard 1:\n{fleet}");
    assert!(
        fleet.contains("deept_router_forwarded_total"),
        "missing router counters:\n{fleet}"
    );

    // Shutdown broadcasts to every shard; both event loops drain and the
    // serve threads join.
    match router.handle(Request::Shutdown) {
        Response::ShuttingDown { .. } => {}
        other => panic!("expected shutting_down, got {other:?}"),
    }
    handle_a.join().expect("shard 0 serve thread");
    handle_b.join().expect("shard 1 serve thread");
    for shard in &shards {
        assert!(shard.shutting_down(), "shard did not drain");
    }

    // The router itself refuses new work while draining, then joins.
    match router.handle(certify_request("toy")) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("expected shutting_down error, got {other:?}"),
    }
    router.drain();
    let _ = std::fs::remove_dir_all(dir);
}
