//! Property tests of the fundamental domain invariant: every concrete point
//! reachable from a valid noise instantiation stays inside the abstract
//! output of every transformer.

use deept_core::dot::{reference, zono_matmul, DotConfig};
use deept_core::softmax::{softmax_rows, SoftmaxConfig};
use deept_core::{NormOrder, PNorm, Zonotope};
use deept_tensor::{parallel, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn norm_of(i: u8) -> PNorm {
    [PNorm::L1, PNorm::L2, PNorm::Linf][(i % 3) as usize]
}

fn zono_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Zonotope> {
    let n = rows * cols;
    (
        proptest::collection::vec(-2.0f64..2.0, n),
        proptest::collection::vec(-0.4f64..0.4, n * 2),
        proptest::collection::vec(-0.4f64..0.4, n * 3),
        0u8..3,
    )
        .prop_map(move |(c, phi, eps, p)| {
            Zonotope::from_parts(
                rows,
                cols,
                c,
                Matrix::from_vec(n, 2, phi).expect("sized"),
                Matrix::from_vec(n, 3, eps).expect("sized"),
                norm_of(p),
            )
        })
}

/// Random zonotope product operands `(n×k) · (k×m)` with free dimensions, a
/// shared random p-norm and *different* ε symbol counts (the transformer
/// pads the narrower operand).
fn zono_pair() -> impl Strategy<Value = (Zonotope, Zonotope)> {
    (1usize..=3, 1usize..=4, 1usize..=3, 0u8..3).prop_flat_map(|(n, k, m, p)| {
        let (na, nb) = (n * k, k * m);
        (
            proptest::collection::vec(-2.0f64..2.0, na),
            proptest::collection::vec(-0.4f64..0.4, na * 2),
            proptest::collection::vec(-0.4f64..0.4, na * 5),
            proptest::collection::vec(-2.0f64..2.0, nb),
            proptest::collection::vec(-0.4f64..0.4, nb * 2),
            proptest::collection::vec(-0.4f64..0.4, nb * 4),
        )
            .prop_map(move |(ca, pa, ea, cb, pb, eb)| {
                let a = Zonotope::from_parts(
                    n,
                    k,
                    ca,
                    Matrix::from_vec(na, 2, pa).expect("sized"),
                    Matrix::from_vec(na, 5, ea).expect("sized"),
                    norm_of(p),
                );
                let b = Zonotope::from_parts(
                    k,
                    m,
                    cb,
                    Matrix::from_vec(nb, 2, pb).expect("sized"),
                    Matrix::from_vec(nb, 4, eb).expect("sized"),
                    norm_of(p),
                );
                (a, b)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bounds_contain_samples(z in zono_strategy(2, 3), seed in 0u64..500) {
        let (lo, hi) = z.bounds();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..50 {
            let (phi, eps) = z.sample_noise(&mut rng);
            for (k, v) in z.evaluate(&phi, &eps).iter().enumerate() {
                prop_assert!(*v >= lo[k] - 1e-10 && *v <= hi[k] + 1e-10);
            }
        }
    }

    #[test]
    fn relu_tanh_exp_chain_is_sound(z in zono_strategy(2, 2), seed in 0u64..500) {
        let out = z.relu().tanh().exp();
        let (lo, hi) = out.bounds();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..50 {
            let (phi, mut eps) = out.sample_noise(&mut rng);
            for e in eps.iter_mut().skip(z.num_eps()) {
                *e = 0.0;
            }
            let x = z.evaluate(&phi, &eps[..z.num_eps()]);
            for (k, &xv) in x.iter().enumerate() {
                let y = xv.max(0.0).tanh().exp();
                prop_assert!(
                    y >= lo[k] - 1e-8 && y <= hi[k] + 1e-8,
                    "chain output {} outside [{}, {}]", y, lo[k], hi[k]
                );
            }
        }
    }

    #[test]
    fn reduction_preserves_membership(z in zono_strategy(3, 2), budget in 1usize..3, seed in 0u64..500) {
        let reduced = z.reduced(budget, 0);
        let (lo, hi) = reduced.bounds();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..50 {
            let (phi, eps) = z.sample_noise(&mut rng);
            for (k, v) in z.evaluate(&phi, &eps).iter().enumerate() {
                prop_assert!(*v >= lo[k] - 1e-10 && *v <= hi[k] + 1e-10);
            }
        }
    }

    #[test]
    fn softmax_rows_sound_on_random_zonotopes(z in zono_strategy(2, 3), seed in 0u64..500) {
        let out = softmax_rows(&z, SoftmaxConfig::default());
        let (lo, hi) = out.bounds();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..30 {
            let (phi, eps) = z.sample_noise(&mut rng);
            let vals = z.evaluate(&phi, &eps);
            for i in 0..2 {
                let mut row = [vals[i * 3], vals[i * 3 + 1], vals[i * 3 + 2]];
                deept_tensor::ops::softmax_in_place(&mut row);
                for (j, &rj) in row.iter().enumerate() {
                    let k = i * 3 + j;
                    prop_assert!(rj >= lo[k] - 1e-8 && rj <= hi[k] + 1e-8);
                }
            }
        }
    }

    #[test]
    fn matmul_then_affine_chain_sound(
        a in zono_strategy(2, 3),
        b in zono_strategy(3, 2),
        seed in 0u64..500,
    ) {
        // Operands must share the φ norm; align b's onto a's.
        let b = Zonotope::from_parts(
            3,
            2,
            b.center().to_vec(),
            b.phi().clone(),
            b.eps_dense_matrix(),
            a.p(),
        );
        // a·b then a row bias then scaling: the composite must contain the
        // concrete composite.
        let prod = zono_matmul(&a, &b, DotConfig::fast());
        let out = prod.add_row_bias(&[0.5, -0.5]).scale(2.0);
        let (lo, hi) = out.bounds();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let width = a.num_eps().max(b.num_eps());
        for _ in 0..30 {
            let (phi, mut eps) = out.sample_noise(&mut rng);
            for e in eps.iter_mut().skip(width) {
                *e = 0.0;
            }
            let va = a.evaluate(&phi, &eps[..a.num_eps()]);
            let vb = b.evaluate(&phi, &eps[..b.num_eps()]);
            let am = Matrix::from_vec(2, 3, va).expect("sized");
            let bm = Matrix::from_vec(3, 2, vb).expect("sized");
            let exact = am.matmul(&bm).add_row_broadcast(&[0.5, -0.5]).scale(2.0);
            for (k, v) in exact.as_slice().iter().enumerate() {
                prop_assert!(*v >= lo[k] - 1e-8 && *v <= hi[k] + 1e-8);
            }
        }
    }

    #[test]
    fn zono_matmul_is_deterministic_and_matches_the_reference((a, b) in zono_pair()) {
        let _g = parallel::test_lock();
        // Fast path: the banded parallel loop with hoisted block norms must
        // reproduce the naive sequential reference bitwise, at any worker
        // count and under both dual-norm orders.
        for order in [NormOrder::InfFirst, NormOrder::PFirst] {
            let mut cfg = DotConfig::fast();
            cfg.order = order;
            let expect = reference::zono_matmul(&a, &b, cfg);
            let mut got = Vec::new();
            for threads in [1usize, 2, 8] {
                parallel::set_thread_override(Some(threads));
                got.push((threads, zono_matmul(&a, &b, cfg)));
            }
            parallel::set_thread_override(None);
            for (threads, z) in got {
                prop_assert_eq!(&z, &expect, "fast/{:?} differs at {} threads", order, threads);
            }
        }
        // Precise path: bitwise-deterministic across worker counts. Against
        // the reference, centers and bounds match only up to the rounding of
        // the regrouped ε–ε interval fold: the blocked path reduces the
        // interaction scan to per-row partials while the reference
        // accumulates flat across the E×E scan, and the interval midpoint
        // 0.5·(lo+hi) is folded into the center, so the center inherits the
        // same ulp-level regrouping difference as the bounds.
        let cfg = DotConfig::precise();
        let mut got = Vec::new();
        for threads in [1usize, 2, 8] {
            parallel::set_thread_override(Some(threads));
            got.push(zono_matmul(&a, &b, cfg));
        }
        parallel::set_thread_override(None);
        for z in &got[1..] {
            prop_assert_eq!(z, &got[0], "precise path varies with worker count");
        }
        let expect = reference::zono_matmul(&a, &b, cfg);
        for (c, rc) in got[0].center().iter().zip(expect.center()) {
            prop_assert!((c - rc).abs() <= 1e-9, "center {c} vs reference {rc}");
        }
        let (lo, hi) = got[0].bounds();
        let (rlo, rhi) = expect.bounds();
        for k in 0..lo.len() {
            prop_assert!((lo[k] - rlo[k]).abs() <= 1e-9 && (hi[k] - rhi[k]).abs() <= 1e-9);
        }
    }

    #[test]
    fn transpose_commutes_with_scale(z in zono_strategy(2, 3), s in -3.0f64..3.0) {
        prop_assert_eq!(z.transpose().scale(s), z.scale(s).transpose());
    }

    #[test]
    fn concat_then_select_is_identity(z in zono_strategy(2, 3)) {
        let stacked = Zonotope::concat_rows(&[z.clone(), z.scale(2.0)]);
        prop_assert_eq!(stacked.select_rows(&[0, 1]), z);
    }
}
