//! Pins the central guarantee of the block-structured ε store: with
//! `DEEPT_EPS=dense` every computation reproduces the historical dense
//! generator matrix **bitwise**, so interval bounds from the blocked layout
//! must be `==`-identical (not approximately equal) to the dense ones —
//! across p-norms, thread counts, compute-kernel modes
//! (`DEEPT_KERNEL=naive|blocked|simd`) and representative transformer
//! pipelines. The kernel axis rides along because the SIMD kernels promise
//! bitwise equality with the scalar ones at `f64`; running the full
//! kernel × ε-layout matrix through one reference pins both guarantees at
//! once.
//!
//! The whole file serializes on `parallel::test_lock()` because both the
//! ε mode and the thread override are process-global.

use deept_core::dot::{zono_matmul, DotConfig};
use deept_core::eps::set_force_dense;
use deept_core::reduce::reduce_eps;
use deept_core::softmax::{softmax_rows, SoftmaxConfig};
use deept_core::{PNorm, Zonotope};
use deept_tensor::parallel::KernelMode;
use deept_tensor::{parallel, Matrix};
use proptest::prelude::*;

const NORMS: [PNorm; 3] = [PNorm::L1, PNorm::L2, PNorm::Linf];
const THREADS: [usize; 2] = [1, 4];
const KERNELS: [KernelMode; 3] = [KernelMode::Naive, KernelMode::Blocked, KernelMode::Simd];

/// Observable outcome of one pipeline run: exact bounds at every stage plus
/// the final dense generator matrix.
#[derive(Debug, PartialEq)]
struct Outcome {
    stage_bounds: Vec<(Vec<f64>, Vec<f64>)>,
    final_eps: Matrix,
}

/// Runs `f` under every (kernel mode, ε layout, thread override)
/// combination, asserting all outcomes are bitwise identical.
fn assert_mode_invariant(mut f: impl FnMut() -> Outcome) {
    let _guard = parallel::test_lock();
    let mut reference: Option<Outcome> = None;
    for &kernel in &KERNELS {
        parallel::set_kernel_mode(Some(kernel));
        for &threads in &THREADS {
            parallel::set_thread_override(Some(threads));
            for dense in [true, false] {
                set_force_dense(Some(dense));
                let got = f();
                match &reference {
                    None => reference = Some(got),
                    Some(want) => assert_eq!(
                        want, &got,
                        "bounds diverged (kernel={kernel:?}, threads={threads}, dense={dense})"
                    ),
                }
            }
        }
    }
    set_force_dense(None);
    parallel::set_kernel_mode(None);
    parallel::set_thread_override(None);
}

/// A representative propagation: ℓp input ball → affine map → ReLU (appends
/// fresh diagonal symbols) → matmul with a second zonotope (row-mixing:
/// densifies lazily) → softmax (pads + concatenates) → reduction
/// (column selection + fresh diagonal).
fn pipeline(center: &[f64], weights: &[f64], p: PNorm, radius: f64) -> Outcome {
    let c = Matrix::from_vec(2, 3, center.to_vec()).expect("sized");
    let z = Zonotope::from_lp_ball(&c, radius, p, &[0, 1]);
    let mut stage_bounds = vec![z.bounds()];

    let w = Matrix::from_vec(3, 3, weights.to_vec()).expect("sized");
    let lin = z.matmul_right(&w).add_row_bias(&[0.1, -0.2, 0.05]);
    stage_bounds.push(lin.bounds());

    let act = lin.relu().tanh();
    stage_bounds.push(act.bounds());

    let prod = zono_matmul(&act, &act.transpose(), DotConfig::fast());
    stage_bounds.push(prod.bounds());

    let soft = softmax_rows(&prod, SoftmaxConfig::default());
    stage_bounds.push(soft.bounds());

    let (red, _) = reduce_eps(&soft, soft.num_eps().saturating_sub(3).max(1), 0);
    stage_bounds.push(red.bounds());

    Outcome {
        final_eps: red.eps_dense_matrix(),
        stage_bounds,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_bounds_bitwise_identical_across_modes(
        center in proptest::collection::vec(-1.5f64..1.5, 6),
        weights in proptest::collection::vec(-0.8f64..0.8, 9),
        p_idx in 0usize..3,
        radius in 0.01f64..0.2,
    ) {
        let p = NORMS[p_idx];
        assert_mode_invariant(|| pipeline(&center, &weights, p, radius));
    }

    #[test]
    fn mixed_affine_ops_bitwise_identical_across_modes(
        center in proptest::collection::vec(-2.0f64..2.0, 6),
        eps in proptest::collection::vec(-0.4f64..0.4, 24),
        scale in -1.5f64..1.5,
        p_idx in 0usize..3,
    ) {
        let p = NORMS[p_idx];
        assert_mode_invariant(|| {
            let z = Zonotope::from_parts(
                3,
                2,
                center.clone(),
                Matrix::zeros(6, 0),
                Matrix::from_vec(6, 4, eps.clone()).expect("sized"),
                p,
            );
            // Appends diagonal fresh symbols, then exercises the
            // column-local ops (scale, row weights, pad via add) and the
            // row-mixing ops (linear_vars, permute via transpose).
            let a = z.relu().scale(scale).mul_row_weights(&[0.5, -1.0]);
            let b = z.exp();
            let sum = a.add(&b);
            let l = Matrix::from_rows(&[
                &[1.0, -1.0, 0.0, 0.0, 0.5, 0.0],
                &[0.0, 0.3, 0.3, 0.3, 0.0, -1.0],
            ]);
            let mixed = sum.linear_vars(&l, 2, 1);
            let t = sum.transpose();
            let stacked = Zonotope::concat_rows(&[mixed.reshape(1, 2), mixed.reshape(1, 2)]);
            Outcome {
                stage_bounds: vec![a.bounds(), b.bounds(), sum.bounds(), mixed.bounds(), t.bounds(), stacked.bounds()],
                final_eps: stacked.eps_dense_matrix(),
            }
        });
    }
}

#[test]
fn certified_direction_widths_bitwise_identical() {
    // Margin-style functional (difference of variables) after a reduction:
    // the quantity radius certification keys on.
    let _guard = parallel::test_lock();
    let mut reference: Option<Vec<f64>> = None;
    for &kernel in &KERNELS {
        parallel::set_kernel_mode(Some(kernel));
        for &threads in &THREADS {
            parallel::set_thread_override(Some(threads));
            for dense in [true, false] {
                set_force_dense(Some(dense));
                let mut widths = Vec::new();
                for &p in &NORMS {
                    let c = Matrix::from_vec(1, 4, vec![0.3, -0.1, 0.7, 0.2]).expect("sized");
                    let z = Zonotope::from_lp_ball(&c, 0.05, p, &[0]);
                    let soft = softmax_rows(&z, SoftmaxConfig::default());
                    let (red, _) = reduce_eps(&soft, 6, 0);
                    let l = Matrix::from_rows(&[&[1.0, 0.0, -1.0, 0.0], &[0.0, 1.0, 0.0, -1.0]]);
                    let margins = red.linear_vars(&l, 2, 1);
                    let (lo, hi) = margins.bounds();
                    widths.extend(lo);
                    widths.extend(hi);
                }
                match &reference {
                    None => reference = Some(widths),
                    Some(want) => assert_eq!(
                        want, &widths,
                        "margins diverged (kernel={kernel:?}, threads={threads}, dense={dense})"
                    ),
                }
            }
        }
    }
    set_force_dense(None);
    parallel::set_kernel_mode(None);
    parallel::set_thread_override(None);
}
