//! Exact geometry of two-variable zonotope projections: vertex enumeration
//! and area.
//!
//! The paper's optimality results (Theorem 3) are stated in terms of the
//! *area* of the input–output relaxation; this module makes such areas
//! measurable so tightness can be asserted in tests rather than taken on
//! faith. It also powers the Figure 4 rendering.
//!
//! Only the classical (ε) symbols admit exact polytope geometry; for the
//! ℓp-bounded φ symbols (`p ∈ {1, 2}`) the projection is a Minkowski sum
//! with an ellipse/cross-polytope shadow, which we handle by support-function
//! sampling.

use crate::Zonotope;

#[cfg(test)]
use crate::PNorm;
#[cfg(test)]
use deept_tensor::Matrix;

/// The support function `h(d) = sup { d·(x, y) }` of the projection of `z`
/// onto variables `(i, j)` — exact for every direction.
pub fn support_2d(z: &Zonotope, i: usize, j: usize, dir: (f64, f64)) -> f64 {
    let (dx, dy) = dir;
    let c = dx * z.center()[i] + dy * z.center()[j];
    // Generator contributions: ε part is an ℓ∞ box over symbols (sum of
    // |coefficients|); φ part is bounded by the dual norm (Lemma 1).
    let mut eps_sum = 0.0;
    let (ei, ej) = (z.eps_row(i), z.eps_row(j));
    for (a, b) in ei.iter().zip(&ej) {
        eps_sum += (dx * a + dy * b).abs();
    }
    let phi_coeffs: Vec<f64> = z
        .phi()
        .row(i)
        .iter()
        .zip(z.phi().row(j))
        .map(|(a, b)| dx * a + dy * b)
        .collect();
    c + eps_sum + z.p().dual_norm(&phi_coeffs)
}

/// Vertices of the projection of a **classical** zonotope (no φ symbols)
/// onto variables `(i, j)`, in counter-clockwise order.
///
/// Uses the standard generator-angle sweep: a 2-D zonotope with `m`
/// generators is a centrally-symmetric polygon with at most `2m` vertices.
///
/// # Panics
///
/// Panics if the zonotope has φ symbols (project them away first or use
/// [`support_2d`] sampling).
pub fn vertices_2d(z: &Zonotope, i: usize, j: usize) -> Vec<(f64, f64)> {
    assert_eq!(
        z.num_phi(),
        0,
        "exact vertex enumeration requires a classical zonotope"
    );
    let cx = z.center()[i];
    let cy = z.center()[j];
    // Orient every generator into the upper half-plane and sort by angle.
    let (ei, ej) = (z.eps_row(i), z.eps_row(j));
    let mut gens: Vec<(f64, f64)> = ei
        .iter()
        .zip(&ej)
        .map(|(&a, &b)| {
            if b < 0.0 || (b == 0.0 && a < 0.0) {
                (-a, -b)
            } else {
                (a, b)
            }
        })
        .filter(|&(a, b)| a != 0.0 || b != 0.0)
        .collect();
    if gens.is_empty() {
        return vec![(cx, cy)];
    }
    gens.sort_by(|p, q| {
        p.1.atan2(p.0)
            .partial_cmp(&q.1.atan2(q.0))
            .expect("finite angles")
    });
    // Start at the vertex maximizing x (all generators at −1 for the
    // upper-halfplane orientation with positive x... construct by walking).
    let mut x = cx - gens.iter().map(|g| g.0).sum::<f64>();
    let mut y = cy - gens.iter().map(|g| g.1).sum::<f64>();
    let mut verts = Vec::with_capacity(2 * gens.len());
    verts.push((x, y));
    for &(a, b) in &gens {
        x += 2.0 * a;
        y += 2.0 * b;
        verts.push((x, y));
    }
    for &(a, b) in &gens {
        x -= 2.0 * a;
        y -= 2.0 * b;
        verts.push((x, y));
    }
    verts.pop(); // closes back on the start
    verts
}

/// Area of the projection of a classical zonotope onto `(i, j)` — the sum
/// of the generator cross products: `4 · Σ_{k<l} |g_k × g_l|`.
///
/// # Panics
///
/// Panics if the zonotope has φ symbols.
pub fn area_2d(z: &Zonotope, i: usize, j: usize) -> f64 {
    assert_eq!(z.num_phi(), 0, "exact area requires a classical zonotope");
    let gi = z.eps_row(i);
    let gj = z.eps_row(j);
    let m = gi.len();
    let mut area = 0.0;
    for k in 0..m {
        for l in k + 1..m {
            area += (gi[k] * gj[l] - gi[l] * gj[k]).abs();
        }
    }
    4.0 * area
}

/// Area of the polygon given by counter-clockwise vertices (shoelace).
pub fn polygon_area(verts: &[(f64, f64)]) -> f64 {
    if verts.len() < 3 {
        return 0.0;
    }
    let mut s = 0.0;
    for k in 0..verts.len() {
        let (x0, y0) = verts[k];
        let (x1, y1) = verts[(k + 1) % verts.len()];
        s += x0 * y1 - x1 * y0;
    }
    0.5 * s.abs()
}

/// Approximate area of an arbitrary Multi-norm Zonotope projection via
/// support-function sampling over `n` directions (an over-approximating
/// circumscribed polygon).
pub fn approx_area_2d(z: &Zonotope, i: usize, j: usize, n: usize) -> f64 {
    assert!(n >= 3, "need at least 3 directions");
    // Intersect the half-planes d·x ≤ h(d): for adjacent directions the
    // vertex is the intersection of consecutive support lines.
    let dirs: Vec<(f64, f64)> = (0..n)
        .map(|k| {
            let t = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            (t.cos(), t.sin())
        })
        .collect();
    let hs: Vec<f64> = dirs.iter().map(|&d| support_2d(z, i, j, d)).collect();
    let mut verts = Vec::with_capacity(n);
    for k in 0..n {
        let (a1, b1) = dirs[k];
        let (a2, b2) = dirs[(k + 1) % n];
        let (h1, h2) = (hs[k], hs[(k + 1) % n]);
        let det = a1 * b2 - a2 * b1;
        if det.abs() > 1e-12 {
            verts.push(((h1 * b2 - h2 * b1) / det, (a1 * h2 - a2 * h1) / det));
        }
    }
    polygon_area(&verts)
}

/// A rasterized membership test used by plots: `(x, y)` is inside the
/// projection iff it is inside every sampled support half-plane.
pub fn contains_2d(z: &Zonotope, i: usize, j: usize, point: (f64, f64), n_dirs: usize) -> bool {
    (0..n_dirs).all(|k| {
        let t = 2.0 * std::f64::consts::PI * k as f64 / n_dirs as f64;
        let d = (t.cos(), t.sin());
        d.0 * point.0 + d.1 * point.1 <= support_2d(z, i, j, d) + 1e-9
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn classical(i_coeffs: &[f64], j_coeffs: &[f64], cx: f64, cy: f64) -> Zonotope {
        let m = i_coeffs.len();
        let mut eps = Matrix::zeros(2, m);
        for (k, (&a, &b)) in i_coeffs.iter().zip(j_coeffs).enumerate() {
            eps.set(0, k, a);
            eps.set(1, k, b);
        }
        Zonotope::from_parts(2, 1, vec![cx, cy], Matrix::zeros(2, 0), eps, PNorm::Linf)
    }

    #[test]
    fn box_vertices_and_area() {
        // Two axis-aligned generators: a 2×4 rectangle centred at (1, 2).
        let z = classical(&[1.0, 0.0], &[0.0, 2.0], 1.0, 2.0);
        let verts = vertices_2d(&z, 0, 1);
        assert_eq!(verts.len(), 4);
        assert!((area_2d(&z, 0, 1) - 8.0).abs() < 1e-12);
        assert!((polygon_area(&verts) - 8.0).abs() < 1e-12);
        for (x, y) in verts {
            assert!((x - 1.0).abs() <= 1.0 + 1e-12 && (y - 2.0).abs() <= 2.0 + 1e-12);
        }
    }

    #[test]
    fn hexagon_from_three_generators() {
        let z = classical(&[1.0, 0.5, 0.0], &[0.0, 0.5, 1.0], 0.0, 0.0);
        let verts = vertices_2d(&z, 0, 1);
        assert_eq!(verts.len(), 6);
        assert!((polygon_area(&verts) - area_2d(&z, 0, 1)).abs() < 1e-9);
    }

    #[test]
    fn shoelace_matches_cross_product_formula_randomized() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        use rand::Rng;
        for _ in 0..30 {
            let m = rng.gen_range(1..6);
            let gi: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let gj: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let z = classical(&gi, &gj, rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0));
            let by_verts = polygon_area(&vertices_2d(&z, 0, 1));
            let by_cross = area_2d(&z, 0, 1);
            assert!(
                (by_verts - by_cross).abs() < 1e-9 * (1.0 + by_cross),
                "{by_verts} vs {by_cross}"
            );
        }
    }

    #[test]
    fn samples_lie_inside_support_halfplanes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let z = Zonotope::from_parts(
            2,
            1,
            vec![4.0, 3.0],
            Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]),
            Matrix::from_rows(&[&[-1.0, 2.0], &[1.0, 1.0]]),
            PNorm::L2,
        );
        for _ in 0..300 {
            let (phi, eps) = z.sample_noise(&mut rng);
            let v = z.evaluate(&phi, &eps);
            assert!(contains_2d(&z, 0, 1, (v[0], v[1]), 32));
        }
    }

    #[test]
    fn approx_area_over_approximates_and_converges() {
        // For a classical zonotope the support-sampled polygon circumscribes
        // the true polygon and converges to its area.
        let z = classical(&[1.0, 0.5], &[0.2, 0.8], 0.0, 0.0);
        let exact = area_2d(&z, 0, 1);
        let coarse = approx_area_2d(&z, 0, 1, 8);
        let fine = approx_area_2d(&z, 0, 1, 512);
        assert!(coarse >= exact - 1e-9);
        assert!(fine >= exact - 1e-9);
        assert!((fine - exact) < (coarse - exact) + 1e-12);
        assert!(
            (fine - exact) / exact < 0.01,
            "512 directions should be within 1%"
        );
    }

    #[test]
    fn multi_norm_shadow_is_larger_than_classical_part() {
        // Dropping the φ symbols shrinks the region (Figure 4's nesting).
        let full = Zonotope::from_parts(
            2,
            1,
            vec![0.0, 0.0],
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
            Matrix::from_rows(&[&[0.5], &[0.5]]),
            PNorm::L2,
        );
        let classical_only = Zonotope::from_parts(
            2,
            1,
            vec![0.0, 0.0],
            Matrix::zeros(2, 0),
            Matrix::from_rows(&[&[0.5], &[0.5]]),
            PNorm::L2,
        );
        let a_full = approx_area_2d(&full, 0, 1, 256);
        let a_classical = approx_area_2d(&classical_only, 0, 1, 256);
        assert!(a_full > a_classical);
    }

    #[test]
    fn degenerate_zonotope_is_a_point() {
        let z = classical(&[], &[], 3.0, -1.0);
        assert_eq!(vertices_2d(&z, 0, 1), vec![(3.0, -1.0)]);
        assert_eq!(area_2d(&z, 0, 1), 0.0);
    }
}
