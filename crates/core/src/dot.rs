//! The dot-product abstract transformer (§4.8) and the zonotope–zonotope
//! matrix product built from it.
//!
//! The product of two variables under perturbation is the one place where a
//! zonotope cannot stay exact: the noise–noise interaction term
//! `(A₁φ + B₁ε)·(A₂φ + B₂ε)` is quadratic in the noise symbols. DeepT
//! bounds it by an interval and folds the interval into the center plus one
//! fresh ℓ∞ symbol. Two bounding strategies are offered:
//!
//! * **Fast** (Eq. 5): a dual-norm/Hölder bound costing
//!   `O(K·(E_p + E_∞))` per output variable;
//! * **Precise** (Eq. 6): for the ε–ε term only, an interval analysis over
//!   all symbol pairs exploiting `ε_i² ∈ [0, 1]`, costing `O(K·E_∞²)`.
//!
//! The Fast bound is asymmetric in its two operands; §6.5 of the paper finds
//! that collapsing the ℓ∞ operand first is slightly better on average, which
//! is our [`NormOrder::InfFirst`] default.

use deept_telemetry::{NoopProbe, ParallelStats, Probe, SpanKind};
use deept_tensor::{arena, parallel, Matrix};

use crate::eps::EpsStore;
use crate::{eps, PNorm, Zonotope};

/// Minimum multiply-adds per worker task of the Precise ε–ε row scan;
/// smaller scans run inline on the calling thread.
const PRECISE_MIN_FLOPS: usize = 1 << 16;

/// Which ε–ε bounding strategy [`zono_matmul`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DotVariant {
    /// Dual-norm bound for all four noise-interaction terms (DeepT-Fast).
    #[default]
    Fast,
    /// Pairwise interval analysis for the ε–ε term (DeepT-Precise); the
    /// mixed and φ–φ terms still use the Fast bound, as in the paper.
    Precise,
}

/// Which operand of a mixed φ–ε term is collapsed by its dual norm first
/// (§6.5 ablation, Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NormOrder {
    /// Collapse the ℓ∞ (ε) operand first — the paper's recommended order.
    #[default]
    InfFirst,
    /// Collapse the ℓp (φ) operand first.
    PFirst,
}

/// Configuration of the dot-product transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DotConfig {
    /// ε–ε bounding strategy.
    pub variant: DotVariant,
    /// Dual-norm application order for mixed terms.
    pub order: NormOrder,
}

impl DotConfig {
    /// The DeepT-Fast configuration.
    pub fn fast() -> Self {
        DotConfig {
            variant: DotVariant::Fast,
            order: NormOrder::InfFirst,
        }
    }

    /// The DeepT-Precise configuration.
    pub fn precise() -> Self {
        DotConfig {
            variant: DotVariant::Precise,
            order: NormOrder::InfFirst,
        }
    }
}

/// Per-row dual norms of one operand block: `norms[r] = p.dual_norm(row r)`.
///
/// Eq. 5 collapses its `W` operand to exactly these norms. They depend only
/// on the block, not on the pairing, so [`zono_matmul`] hoists them out of
/// the per-output-pair loop — each block's norms are computed once and
/// reused by every pairing, where the naive path recomputes them per pair.
/// Values (and therefore bounds) are bit-for-bit those of the naive path.
fn row_dual_norms(w: &Matrix, p: PNorm) -> Vec<f64> {
    (0..w.rows()).map(|r| p.dual_norm(w.row(r))).collect()
}

/// Fast dual-norm bound of `|(V ξ₁)·(W ξ₂)|` where `‖ξ₁‖_{p1} ≤ 1` (Eq. 5),
/// with the collapsed operand `W` already reduced to its per-row ℓq₂ norms
/// by [`row_dual_norms`].
fn fast_bound_pre(v: &Matrix, p1: PNorm, w_norms: &[f64]) -> f64 {
    debug_assert_eq!(v.rows(), w_norms.len());
    let mut t = vec![0.0; v.cols()];
    if parallel::kernel_mode() == parallel::KernelMode::Simd {
        let mut batch = deept_tensor::simd::WabsAxpyBatch::new();
        for (row, &wn) in w_norms.iter().enumerate() {
            if wn == 0.0 {
                continue;
            }
            batch.push(&mut t, wn, v.row(row));
        }
        batch.flush(&mut t);
        return p1.dual_norm(&t);
    }
    for (row, &wn) in w_norms.iter().enumerate() {
        if wn == 0.0 {
            continue;
        }
        for (acc, &x) in t.iter_mut().zip(v.row(row)) {
            *acc += wn * x.abs();
        }
    }
    p1.dual_norm(&t)
}

/// Precise interval bound of `(Vε)·(Wε)` over shared ε symbols (Eq. 6):
/// `Σ_e (v_e·w_e) ε_e² + Σ_{e≠e'} (v_e·w_{e'}) ε_e ε_{e'}` with
/// `ε² ∈ [0,1]` and `ε_e ε_{e'} ∈ [−1,1]`.
///
/// Unlike the reference, this never materializes the E×E interaction
/// matrix: each of its rows is accumulated into a scratch buffer (same
/// per-element order as the materialized product), scanned, and reduced to
/// one `(lo, hi)` partial per row. Rows are distributed over workers and
/// the per-row partials are folded on the calling thread in ascending row
/// order — the fold granularity is fixed per row, never per chunk, so the
/// result is bitwise identical at every worker count.
fn precise_eps_bound(v: &Matrix, w: &Matrix) -> (f64, f64) {
    debug_assert_eq!(v.shape(), w.shape());
    let e = v.cols();
    let k = v.rows();
    let min_rows = (PRECISE_MIN_FLOPS / (k * e).max(1)).max(1);
    let simd = parallel::kernel_mode() == parallel::KernelMode::Simd;
    let partials = parallel::par_chunks(e, min_rows, |rows| {
        let mut out = Vec::with_capacity(rows.len());
        let mut buf = vec![0.0; e];
        for i in rows {
            buf.fill(0.0);
            if simd {
                let mut batch = deept_tensor::simd::AxpyBatch::new();
                for kk in 0..k {
                    let a = v.at(kk, i);
                    if a == 0.0 {
                        continue;
                    }
                    batch.push(&mut buf, a, w.row(kk));
                }
                batch.flush(&mut buf);
            } else {
                for kk in 0..k {
                    let a = v.at(kk, i);
                    if a == 0.0 {
                        continue;
                    }
                    for (acc, &b) in buf.iter_mut().zip(w.row(kk)) {
                        *acc += a * b;
                    }
                }
            }
            let (mut lo, mut hi) = (0.0, 0.0);
            for (j, &x) in buf.iter().enumerate() {
                if i == j {
                    lo += x.min(0.0);
                    hi += x.max(0.0);
                } else {
                    lo -= x.abs();
                    hi += x.abs();
                }
            }
            out.push((lo, hi));
        }
        out
    });
    let (mut lo, mut hi) = (0.0, 0.0);
    for (l, h) in partials.into_iter().flatten() {
        lo += l;
        hi += h;
    }
    (lo, hi)
}

/// The hoisted per-row dual norms of one operand block (one logical row of
/// `a` or one logical column of `b`), shared by every pairing the block
/// participates in.
struct BlockNorms {
    /// ℓq norms of the φ block's rows, `q` dual to the zonotope's `p`.
    phi_dual: Vec<f64>,
    /// ℓ1 norms of the ε block's rows (the dual of ℓ∞).
    eps_l1: Vec<f64>,
}

impl BlockNorms {
    fn of(phi: &Matrix, eps: &Matrix, p: PNorm) -> Self {
        BlockNorms {
            phi_dual: row_dual_norms(phi, p),
            eps_l1: row_dual_norms(eps, PNorm::Linf),
        }
    }
}

/// Interval bound of the full noise-interaction term
/// `(A₁φ + B₁ε)·(A₂φ + B₂ε)` for one output variable, with both operands'
/// per-row dual norms precomputed (`an` for the `a` block, `bn` for `b`).
#[allow(clippy::too_many_arguments)]
fn interaction_bound(
    a1: &Matrix,
    b1: &Matrix,
    a2: &Matrix,
    b2: &Matrix,
    an: &BlockNorms,
    bn: &BlockNorms,
    p: PNorm,
    cfg: DotConfig,
) -> (f64, f64) {
    // φ–φ term.
    let pp = fast_bound_pre(a1, p, &bn.phi_dual);
    // Mixed terms: §6.5 order choice decides which operand is collapsed
    // first (i.e. plays the `W` role in Eq. 5).
    let (pe, ep) = match cfg.order {
        NormOrder::InfFirst => (
            fast_bound_pre(a1, p, &bn.eps_l1),
            fast_bound_pre(a2, p, &an.eps_l1),
        ),
        NormOrder::PFirst => (
            fast_bound_pre(b2, PNorm::Linf, &an.phi_dual),
            fast_bound_pre(b1, PNorm::Linf, &bn.phi_dual),
        ),
    };
    // ε–ε term.
    let (ee_lo, ee_hi) = match cfg.variant {
        DotVariant::Fast => {
            let b = fast_bound_pre(b1, PNorm::Linf, &bn.eps_l1);
            (-b, b)
        }
        DotVariant::Precise => precise_eps_bound(b1, b2),
    };
    let sym = pp + pe + ep;
    (ee_lo - sym, ee_hi + sym)
}

/// Zonotope–zonotope matrix product: `a (N×K) · b (K×M) → (N×M)`.
///
/// Every output variable is the dot product of a row of `a` with a column
/// of `b` (§4.8): the center and the center–noise cross terms are exact
/// affine expressions; the noise–noise interaction is bounded by an interval
/// and folded into the center plus one fresh ℓ∞ symbol per output variable.
///
/// # Panics
///
/// Panics if the inner dimensions, `p`-norms or `φ` symbol sets disagree.
pub fn zono_matmul(a: &Zonotope, b: &Zonotope, cfg: DotConfig) -> Zonotope {
    zono_matmul_probed(a, b, cfg, &NoopProbe)
}

/// [`zono_matmul`] wrapped in a telemetry span: reports the duration, the
/// output-zonotope stats (probe enabled only) and the number of fresh ℓ∞
/// symbols introduced for the noise–noise interaction.
///
/// The probe only observes — the returned zonotope is bitwise identical to
/// the unprobed result.
pub fn zono_matmul_probed(
    a: &Zonotope,
    b: &Zonotope,
    cfg: DotConfig,
    probe: &dyn Probe,
) -> Zonotope {
    probe.span_enter(SpanKind::DotProduct);
    crate::hot::matmul_total().inc();
    let before = probe.enabled().then(parallel::snapshot);
    let before_eps = probe.enabled().then(eps::snapshot);
    let out = zono_matmul_impl(a, b, cfg);
    if let Some(before) = before {
        probe.parallel(parallel_stats_since(&before));
    }
    if let Some(before_eps) = before_eps {
        probe.eps_storage(eps::storage_stats_since(&before_eps, out.eps_store()));
    }
    let created = out.num_eps() - a.num_eps().max(b.num_eps());
    let stats = probe.enabled().then(|| out.telemetry_stats());
    probe.span_exit(SpanKind::DotProduct, stats, created);
    out
}

/// [`ParallelStats`] describing all parallel-layer work since `before`,
/// ready to attribute to the innermost open span via [`Probe::parallel`].
pub fn parallel_stats_since(before: &parallel::ParallelSnapshot) -> ParallelStats {
    let d = parallel::snapshot().since(before);
    ParallelStats {
        workers: parallel::num_threads(),
        invocations: d.invocations,
        tasks: d.tasks,
        busy_ns: d.busy_ns,
    }
}

fn zono_matmul_impl(a: &Zonotope, b: &Zonotope, cfg: DotConfig) -> Zonotope {
    assert_eq!(a.cols(), b.rows(), "zono_matmul inner dimension mismatch");
    assert_eq!(a.p(), b.p(), "zono_matmul p-norm mismatch");
    assert_eq!(a.num_phi(), b.num_phi(), "zono_matmul phi symbol mismatch");
    if parallel::force_naive() {
        return reference::zono_matmul(a, b, cfg);
    }
    let width = a.num_eps().max(b.num_eps());

    let (n, k, m) = (a.rows(), a.cols(), b.cols());
    let p = a.p();
    let e_phi = a.num_phi();
    let bt = b.transpose(); // columns of b become contiguous blocks

    let ca = a.center_matrix();
    let cb = b.center_matrix();
    let center_mat = ca.matmul(&cb);
    let cbt = cb.transpose(); // row j = column j of cb, hoisted out of the loop

    // Pre-slice the per-row blocks of a and per-column blocks of b, and
    // hoist each block's per-row dual norms out of the pairing loop (the
    // naive path recomputes them for every (i, j) pair — the bulk of the
    // Fast bound's cost). The ε blocks are gathered straight from the
    // block stores into arena-recycled dense buffers at the joint padded
    // width — no full padded ε matrix is ever materialized.
    let a_phi_blocks: Vec<Matrix> = (0..n)
        .map(|i| a.phi().slice_rows(i * k, (i + 1) * k))
        .collect();
    let a_eps_blocks: Vec<Matrix> = (0..n)
        .map(|i| a.eps_store().rows_dense_scratch(i * k, (i + 1) * k, width))
        .collect();
    let b_phi_blocks: Vec<Matrix> = (0..m)
        .map(|j| bt.phi().slice_rows(j * k, (j + 1) * k))
        .collect();
    let b_eps_blocks: Vec<Matrix> = (0..m)
        .map(|j| bt.eps_store().rows_dense_scratch(j * k, (j + 1) * k, width))
        .collect();
    let a_norms: Vec<BlockNorms> = (0..n)
        .map(|i| BlockNorms::of(&a_phi_blocks[i], &a_eps_blocks[i], p))
        .collect();
    let b_norms: Vec<BlockNorms> = (0..m)
        .map(|j| BlockNorms::of(&b_phi_blocks[j], &b_eps_blocks[j], p))
        .collect();

    // One worker per contiguous band of `a` rows. Each band owns its slice
    // of every output buffer and bands are reassembled in row order below,
    // so the output does not depend on the worker count.
    let bands = parallel::par_chunks(n, 1, |is| {
        let start = is.start;
        let rows = is.len() * m;
        let mut center = Vec::with_capacity(rows);
        let mut phi = vec![0.0; rows * e_phi];
        let mut eps = vec![0.0; rows * width];
        let mut fold = Vec::with_capacity(rows); // (shift, beta) per output var
        for i in is {
            let ca_row = ca.row(i);
            let base = (i - start) * m;
            for j in 0..m {
                let local = base + j;
                center.push(center_mat.at(i, j));
                let cb_col = cbt.row(j);
                // Cross terms: c_aᵀ·A_b + c_bᵀ·A_a (exact).
                {
                    let prow = &mut phi[local * e_phi..(local + 1) * e_phi];
                    accumulate_weighted_rows(prow, &b_phi_blocks[j], ca_row);
                    accumulate_weighted_rows(prow, &a_phi_blocks[i], cb_col);
                    let erow = &mut eps[local * width..(local + 1) * width];
                    accumulate_weighted_rows(erow, &b_eps_blocks[j], ca_row);
                    accumulate_weighted_rows(erow, &a_eps_blocks[i], cb_col);
                }
                // Noise–noise interaction interval.
                let (lo, hi) = interaction_bound(
                    &a_phi_blocks[i],
                    &a_eps_blocks[i],
                    &b_phi_blocks[j],
                    &b_eps_blocks[j],
                    &a_norms[i],
                    &b_norms[j],
                    p,
                    cfg,
                );
                fold.push((0.5 * (lo + hi), 0.5 * (hi - lo)));
            }
        }
        (center, phi, eps, fold)
    });

    let n_out = n * m;
    let mut center = Vec::with_capacity(n_out);
    let mut phi_data = Vec::with_capacity(n_out * e_phi);
    let mut eps_data = Vec::with_capacity(n_out * width);
    let mut fold = Vec::with_capacity(n_out);
    for (c, ph, ep, fo) in bands {
        center.extend(c);
        phi_data.extend(ph);
        eps_data.extend(ep);
        fold.extend(fo);
    }
    let phi = Matrix::from_vec(n_out, e_phi, phi_data).expect("bands cover all n*m output rows");
    let eps_mat =
        Matrix::from_vec(n_out, width, eps_data).expect("bands cover all n*m output rows");
    for block in a_eps_blocks.into_iter().chain(b_eps_blocks) {
        arena::give(block.into_vec());
    }

    for (out, &(shift, _)) in fold.iter().enumerate() {
        center[out] += shift;
    }
    let fresh: Vec<usize> = (0..n_out).filter(|&v| fold[v].1 > 0.0).collect();
    let betas: Vec<f64> = fresh.iter().map(|&v| fold[v].1).collect();
    // The interaction symbols stay a structural diagonal block.
    let mut eps_store = EpsStore::from_matrix(eps_mat);
    eps_store.append_diag(&fresh, &betas);
    Zonotope::from_parts_store(n, m, center, phi, eps_store, p)
}

/// `dst += Σ_row weights[row] * block[row, ·]`.
///
/// Each destination element is an independent sequential accumulator over
/// ascending rows (with the structural-zero skip), so the SIMD axpy rung is
/// bitwise-identical to the scalar one.
fn accumulate_weighted_rows(dst: &mut [f64], block: &Matrix, weights: &[f64]) {
    debug_assert_eq!(block.rows(), weights.len());
    debug_assert_eq!(block.cols(), dst.len());
    if parallel::kernel_mode() == parallel::KernelMode::Simd {
        let mut batch = deept_tensor::simd::AxpyBatch::new();
        for (row, &wgt) in weights.iter().enumerate() {
            if wgt == 0.0 {
                continue;
            }
            batch.push(dst, wgt, block.row(row));
        }
        batch.flush(dst);
        return;
    }
    for (row, &wgt) in weights.iter().enumerate() {
        if wgt == 0.0 {
            continue;
        }
        for (d, &x) in dst.iter_mut().zip(block.row(row)) {
            *d += wgt * x;
        }
    }
}

/// Element-wise product of two equal-shape zonotopes (the multiplication
/// abstract transformer, §4.9 — the K = 1 special case of the dot product).
///
/// # Panics
///
/// Panics on shape, norm or `φ`-set mismatch.
pub fn mul_elementwise(a: &Zonotope, b: &Zonotope, cfg: DotConfig) -> Zonotope {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "mul_elementwise shape mismatch"
    );
    let (r, c) = (a.rows(), a.cols());
    let n = a.n_vars();
    // View each operand as an (n × 1) stack and multiply variable-wise by
    // computing n independent 1×1·1×1 products. The products share nothing,
    // so variables are chunked over workers; results are concatenated in
    // variable order regardless of the worker count.
    let av = a.reshape(n, 1);
    let bv = b.reshape(n, 1);
    let parts: Vec<Zonotope> = parallel::par_chunks(n, 8, |range| {
        range
            .map(|k| {
                let ar = av.select_rows(&[k]);
                let br = bv.select_rows(&[k]).transpose();
                zono_matmul(&ar.reshape(1, 1), &br.reshape(1, 1), cfg)
            })
            .collect::<Vec<Zonotope>>()
    })
    .into_iter()
    .flatten()
    .collect();
    Zonotope::concat_rows(&parts).reshape(r, c)
}

/// The pre-optimization dot-product transformer, kept verbatim as the
/// differential oracle: [`zono_matmul`] routes here under
/// `DEEPT_KERNEL=naive` / [`deept_tensor::parallel::set_force_naive`], and
/// the determinism tests and before/after benches compare against it.
///
/// Per output pair it recomputes every per-row dual norm (Eq. 5) and
/// materializes the full E×E interaction matrix (Eq. 6), all on one thread.
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// Eq. 5 with the collapsed operand's norms recomputed on every call.
    fn fast_bound(v: &Matrix, p1: PNorm, w: &Matrix, p2: PNorm) -> f64 {
        debug_assert_eq!(v.rows(), w.rows());
        let k = v.rows();
        let mut t = vec![0.0; v.cols()];
        for row in 0..k {
            let wn = p2.dual_norm(w.row(row));
            if wn == 0.0 {
                continue;
            }
            for (acc, &x) in t.iter_mut().zip(v.row(row)) {
                *acc += wn * x.abs();
            }
        }
        p1.dual_norm(&t)
    }

    /// Eq. 6 via a materialized E×E interaction matrix.
    fn precise_eps_bound(v: &Matrix, w: &Matrix) -> (f64, f64) {
        debug_assert_eq!(v.shape(), w.shape());
        let m = v.transpose_a_matmul_naive(w); // E × E, m[e,e'] = v_col_e · w_col_e'
        let e = m.rows();
        let mut lo = 0.0;
        let mut hi = 0.0;
        for i in 0..e {
            for j in 0..e {
                let x = m.at(i, j);
                if i == j {
                    lo += x.min(0.0);
                    hi += x.max(0.0);
                } else {
                    lo -= x.abs();
                    hi += x.abs();
                }
            }
        }
        (lo, hi)
    }

    fn interaction_bound(
        a1: &Matrix,
        b1: &Matrix,
        a2: &Matrix,
        b2: &Matrix,
        p: PNorm,
        cfg: DotConfig,
    ) -> (f64, f64) {
        let pp = fast_bound(a1, p, a2, p);
        let (pe, ep) = match cfg.order {
            NormOrder::InfFirst => (
                fast_bound(a1, p, b2, PNorm::Linf),
                fast_bound(a2, p, b1, PNorm::Linf),
            ),
            NormOrder::PFirst => (
                fast_bound(b2, PNorm::Linf, a1, p),
                fast_bound(b1, PNorm::Linf, a2, p),
            ),
        };
        let (ee_lo, ee_hi) = match cfg.variant {
            DotVariant::Fast => {
                let b = fast_bound(b1, PNorm::Linf, b2, PNorm::Linf);
                (-b, b)
            }
            DotVariant::Precise => precise_eps_bound(b1, b2),
        };
        let sym = pp + pe + ep;
        (ee_lo - sym, ee_hi + sym)
    }

    /// Single-threaded per-pair zonotope–zonotope product (the original
    /// [`zono_matmul`](super::zono_matmul) implementation).
    pub fn zono_matmul(a: &Zonotope, b: &Zonotope, cfg: DotConfig) -> Zonotope {
        assert_eq!(a.cols(), b.rows(), "zono_matmul inner dimension mismatch");
        assert_eq!(a.p(), b.p(), "zono_matmul p-norm mismatch");
        assert_eq!(a.num_phi(), b.num_phi(), "zono_matmul phi symbol mismatch");
        let mut a = a.clone();
        let mut b = b.clone();
        let width = a.num_eps().max(b.num_eps());
        a.pad_eps(width);
        b.pad_eps(width);

        let (n, k, m) = (a.rows(), a.cols(), b.cols());
        let p = a.p();
        let e_phi = a.num_phi();
        let bt = b.transpose(); // columns of b become contiguous blocks
                                // The oracle works on verbatim dense ε matrices.
        let a_eps = a.eps_dense_matrix();
        let bt_eps = bt.eps_dense_matrix();

        let ca = a.center_matrix();
        let cb = b.center_matrix();
        let center_mat = ca.matmul_naive(&cb);

        let n_out = n * m;
        let mut center = Vec::with_capacity(n_out);
        let mut phi = Matrix::zeros(n_out, e_phi);
        let mut eps = Matrix::zeros(n_out, width);
        let mut fold = Vec::with_capacity(n_out); // (shift, beta) per output var

        // Pre-slice the per-row blocks of a and per-column blocks of b.
        let a_phi_blocks: Vec<Matrix> = (0..n)
            .map(|i| a.phi().slice_rows(i * k, (i + 1) * k))
            .collect();
        let a_eps_blocks: Vec<Matrix> = (0..n)
            .map(|i| a_eps.slice_rows(i * k, (i + 1) * k))
            .collect();
        let b_phi_blocks: Vec<Matrix> = (0..m)
            .map(|j| bt.phi().slice_rows(j * k, (j + 1) * k))
            .collect();
        let b_eps_blocks: Vec<Matrix> = (0..m)
            .map(|j| bt_eps.slice_rows(j * k, (j + 1) * k))
            .collect();

        for i in 0..n {
            let ca_row = ca.row(i);
            for j in 0..m {
                let out = i * m + j;
                center.push(center_mat.at(i, j));
                let cb_col: Vec<f64> = (0..k).map(|kk| cb.at(kk, j)).collect();
                // Cross terms: c_aᵀ·A_b + c_bᵀ·A_a (exact).
                {
                    let prow = phi.row_mut(out);
                    accumulate_weighted_rows(prow, &b_phi_blocks[j], ca_row);
                    accumulate_weighted_rows(prow, &a_phi_blocks[i], &cb_col);
                    let erow = eps.row_mut(out);
                    accumulate_weighted_rows(erow, &b_eps_blocks[j], ca_row);
                    accumulate_weighted_rows(erow, &a_eps_blocks[i], &cb_col);
                }
                // Noise–noise interaction interval.
                let (lo, hi) = interaction_bound(
                    &a_phi_blocks[i],
                    &a_eps_blocks[i],
                    &b_phi_blocks[j],
                    &b_eps_blocks[j],
                    p,
                    cfg,
                );
                fold.push((0.5 * (lo + hi), 0.5 * (hi - lo)));
            }
        }

        for (out, &(shift, _)) in fold.iter().enumerate() {
            center[out] += shift;
        }
        let fresh: Vec<usize> = (0..n_out).filter(|&v| fold[v].1 > 0.0).collect();
        let mut eps_new = Matrix::zeros(n_out, fresh.len());
        for (s, &v) in fresh.iter().enumerate() {
            eps_new.set(v, s, fold[v].1);
        }
        Zonotope::from_parts(n, m, center, phi, eps.hstack(&eps_new), p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_zono(
        rng: &mut impl rand::Rng,
        rows: usize,
        cols: usize,
        e_phi: usize,
        e_eps: usize,
        p: PNorm,
    ) -> Zonotope {
        let n = rows * cols;
        let center: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let phi = Matrix::from_fn(n, e_phi, |_, _| rng.gen_range(-0.5..0.5));
        let eps = Matrix::from_fn(n, e_eps, |_, _| rng.gen_range(-0.5..0.5));
        Zonotope::from_parts(rows, cols, center, phi, eps, p)
    }

    /// Checks that the concrete product of samples lies inside the abstract
    /// output for the *same* noise instantiation (new symbols free).
    fn check_matmul_sound(a: &Zonotope, b: &Zonotope, cfg: DotConfig, seed: u64) {
        let out = zono_matmul(a, b, cfg);
        let base_eps = a.num_eps().max(b.num_eps());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..200 {
            let (phi, mut eps) = out.sample_noise(&mut rng);
            for e in eps.iter_mut().skip(base_eps) {
                *e = 0.0; // fresh symbols: measure the allowed slack instead
            }
            let mut ea = eps[..a.num_eps()].to_vec();
            ea.truncate(a.num_eps());
            let va = a.evaluate(&phi, &ea);
            let vb = b.evaluate(&phi, &eps[..b.num_eps()]);
            let am = Matrix::from_vec(a.rows(), a.cols(), va)
                .expect("Zonotope::evaluate yields rows*cols values for a rows x cols zonotope");
            let bm = Matrix::from_vec(b.rows(), b.cols(), vb)
                .expect("Zonotope::evaluate yields rows*cols values for a rows x cols zonotope");
            let exact = am.matmul(&bm);
            let approx = out.evaluate(&phi, &eps);
            for (v, &av) in approx.iter().enumerate() {
                let slack = deept_tensor::l1_norm(&out.eps_row(v)[base_eps..]);
                let diff = (exact.as_slice()[v] - av).abs();
                assert!(
                    diff <= slack + 1e-9,
                    "var {v}: residual {diff} exceeds slack {slack}"
                );
            }
        }
    }

    #[test]
    fn matmul_sound_fast_all_norms() {
        let mut rng = ChaCha8Rng::seed_from_u64(100);
        for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
            let a = random_zono(&mut rng, 3, 4, 2, 3, p);
            let b = random_zono(&mut rng, 4, 2, 2, 5, p);
            check_matmul_sound(&a, &b, DotConfig::fast(), 7);
        }
    }

    #[test]
    fn matmul_sound_precise() {
        let mut rng = ChaCha8Rng::seed_from_u64(101);
        let a = random_zono(&mut rng, 2, 3, 2, 4, PNorm::Linf);
        let b = random_zono(&mut rng, 3, 2, 2, 4, PNorm::Linf);
        check_matmul_sound(&a, &b, DotConfig::precise(), 8);
    }

    #[test]
    fn matmul_sound_both_orders() {
        let mut rng = ChaCha8Rng::seed_from_u64(102);
        let a = random_zono(&mut rng, 2, 3, 3, 2, PNorm::L2);
        let b = random_zono(&mut rng, 3, 3, 3, 2, PNorm::L2);
        for order in [NormOrder::InfFirst, NormOrder::PFirst] {
            let cfg = DotConfig {
                variant: DotVariant::Fast,
                order,
            };
            check_matmul_sound(&a, &b, cfg, 9);
        }
    }

    #[test]
    fn constant_matmul_is_exact() {
        // With no noise at all the product must be the exact matrix product.
        let am = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bm = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let a = Zonotope::constant(&am, PNorm::L2);
        let b = Zonotope::constant(&bm, PNorm::L2);
        let out = zono_matmul(&a, &b, DotConfig::fast());
        assert_eq!(out.num_eps(), 0);
        assert_eq!(out.center(), am.matmul(&bm).as_slice());
    }

    #[test]
    fn one_sided_noise_is_exact() {
        // If only `a` carries noise, a·b is affine in the noise: the
        // transformer must not introduce any interaction symbol.
        let mut rng = ChaCha8Rng::seed_from_u64(103);
        let a = random_zono(&mut rng, 2, 3, 2, 2, PNorm::L2);
        let b = Zonotope::constant(&Matrix::from_fn(3, 2, |r, c| (r + c) as f64), PNorm::L2);
        let b = Zonotope::from_parts(
            3,
            2,
            b.center().to_vec(),
            Matrix::zeros(6, 2), // align phi symbol count with `a`
            Matrix::zeros(6, 0),
            PNorm::L2,
        );
        let out = zono_matmul(&a, &b, DotConfig::fast());
        assert_eq!(out.num_eps(), a.num_eps());
    }

    #[test]
    fn precise_is_at_least_as_tight_as_fast_on_eps_only() {
        let mut rng = ChaCha8Rng::seed_from_u64(104);
        for _ in 0..20 {
            let a = random_zono(&mut rng, 2, 3, 0, 4, PNorm::Linf);
            let b = random_zono(&mut rng, 3, 2, 0, 4, PNorm::Linf);
            let fast = zono_matmul(&a, &b, DotConfig::fast());
            let prec = zono_matmul(&a, &b, DotConfig::precise());
            let (fl, fh) = fast.bounds();
            let (pl, ph) = prec.bounds();
            for v in 0..fast.n_vars() {
                assert!(fh[v] - fl[v] >= ph[v] - pl[v] - 1e-9);
            }
        }
    }

    #[test]
    fn precise_exploits_squared_symbols() {
        // x = ε, y = ε: xy = ε² ∈ [0, 1]. Fast gives [−1, 1]; Precise [0, 1].
        let z = Zonotope::from_parts(
            1,
            1,
            vec![0.0],
            Matrix::zeros(1, 0),
            Matrix::from_rows(&[&[1.0]]),
            PNorm::Linf,
        );
        let prec = zono_matmul(&z, &z, DotConfig::precise());
        let (lo, hi) = prec.bounds();
        assert!((lo[0] - 0.0).abs() < 1e-12 && (hi[0] - 1.0).abs() < 1e-12);
        let fast = zono_matmul(&z, &z, DotConfig::fast());
        let (lo, hi) = fast.bounds();
        assert!((lo[0] + 1.0).abs() < 1e-12 && (hi[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mul_elementwise_matches_samples() {
        let mut rng = ChaCha8Rng::seed_from_u64(105);
        let a = random_zono(&mut rng, 2, 2, 2, 2, PNorm::L2);
        let b = random_zono(&mut rng, 2, 2, 2, 2, PNorm::L2);
        let out = mul_elementwise(&a, &b, DotConfig::fast());
        let (lo, hi) = out.bounds();
        for _ in 0..200 {
            let (phi, eps) = a.sample_noise(&mut rng);
            let va = a.evaluate(&phi, &eps);
            let vb = b.evaluate(&phi, &eps);
            for v in 0..4 {
                let y = va[v] * vb[v];
                assert!(y >= lo[v] - 1e-9 && y <= hi[v] + 1e-9);
            }
        }
    }

    #[test]
    fn optimized_fast_path_matches_reference_bitwise_across_threads() {
        let _g = deept_tensor::parallel::test_lock();
        let mut rng = ChaCha8Rng::seed_from_u64(200);
        for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
            for order in [NormOrder::InfFirst, NormOrder::PFirst] {
                let a = random_zono(&mut rng, 3, 4, 3, 5, p);
                let b = random_zono(&mut rng, 4, 3, 3, 4, p);
                let cfg = DotConfig {
                    variant: DotVariant::Fast,
                    order,
                };
                let expect = reference::zono_matmul(&a, &b, cfg);
                for threads in [1usize, 2, 8] {
                    deept_tensor::parallel::set_thread_override(Some(threads));
                    let got = zono_matmul(&a, &b, cfg);
                    assert_eq!(got, expect, "p={p:?} order={order:?} threads={threads}");
                }
                deept_tensor::parallel::set_thread_override(None);
            }
        }
    }

    #[test]
    fn precise_path_is_bitwise_deterministic_across_threads() {
        let _g = deept_tensor::parallel::test_lock();
        let mut rng = ChaCha8Rng::seed_from_u64(201);
        for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
            // Enough ε symbols that the Precise row scan actually chunks.
            let a = random_zono(&mut rng, 2, 8, 2, 160, p);
            let b = random_zono(&mut rng, 8, 2, 2, 160, p);
            deept_tensor::parallel::set_thread_override(Some(1));
            let base = zono_matmul(&a, &b, DotConfig::precise());
            for threads in [2usize, 8] {
                deept_tensor::parallel::set_thread_override(Some(threads));
                let got = zono_matmul(&a, &b, DotConfig::precise());
                assert_eq!(got, base, "p={p:?} threads={threads}");
            }
            deept_tensor::parallel::set_thread_override(None);
            // Against the materializing reference only per-row regrouping
            // of the interval fold remains: bounds agree to fp noise.
            let refz = reference::zono_matmul(&a, &b, DotConfig::precise());
            let (lo, hi) = base.bounds();
            let (rl, rh) = refz.bounds();
            for v in 0..base.n_vars() {
                assert!((lo[v] - rl[v]).abs() <= 1e-9 && (hi[v] - rh[v]).abs() <= 1e-9);
            }
        }
    }

    #[test]
    fn force_naive_routes_to_the_reference_path() {
        let _g = deept_tensor::parallel::test_lock();
        let mut rng = ChaCha8Rng::seed_from_u64(202);
        let a = random_zono(&mut rng, 2, 3, 2, 4, PNorm::L2);
        let b = random_zono(&mut rng, 3, 2, 2, 4, PNorm::L2);
        for cfg in [DotConfig::fast(), DotConfig::precise()] {
            deept_tensor::parallel::set_force_naive(true);
            let via_flag = zono_matmul(&a, &b, cfg);
            deept_tensor::parallel::set_force_naive(false);
            assert_eq!(via_flag, reference::zono_matmul(&a, &b, cfg));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_matmul_sound(seed in 0u64..1000) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let p = [PNorm::L1, PNorm::L2, PNorm::Linf][(seed % 3) as usize];
            let a = random_zono(&mut rng, 2, 3, 2, 2, p);
            let b = random_zono(&mut rng, 3, 2, 2, 2, p);
            check_matmul_sound(&a, &b, DotConfig::fast(), seed);
            check_matmul_sound(&a, &b, DotConfig::precise(), seed);
        }
    }
}
