//! The Multi-norm Zonotope data structure, its constructors, concrete
//! bounds (Theorem 1) and the exact affine transformers (§4.2).

use deept_tensor::{arena, Matrix};
use serde::{Deserialize, Serialize};

use crate::eps::EpsStore;
use crate::PNorm;

/// A Multi-norm Zonotope over a logical `rows × cols` matrix of variables.
///
/// Every variable `x_k` is an affine expression
/// `x_k = c_k + α_k · φ + β_k · ε` with `‖φ‖_p ≤ 1` and `ε_j ∈ [−1, 1]`
/// (Eq. 4 of the paper). Variables are stored row-major: the variable at
/// logical position `(i, j)` has flat index `i * cols + j`.
///
/// # Noise-symbol discipline
///
/// `φ` symbols are created **only** by the input constructors; every
/// abstract transformer preserves them, so two zonotopes derived from the
/// same input always agree on `φ` columns. `ε` symbols are *positional*:
/// transformers only ever append new `ε` columns, so a symbol's column index
/// is a stable identity and two zonotopes derived from the same input can be
/// combined after zero-padding the shorter `ε` matrix
/// ([`Zonotope::pad_eps`]). This is what makes residual connections exact.
///
/// The `ε` coefficients live in a block-structured [`EpsStore`]
/// (see [`crate::eps`]): fresh symbols stay in diagonal blocks until a
/// row-mixing affine map forces them dense, and zero-padding is structural.
/// `DEEPT_EPS=dense` pins the historical dense representation; bounds are
/// bitwise identical either way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zonotope {
    rows: usize,
    cols: usize,
    center: Vec<f64>,
    phi: Matrix,
    eps: EpsStore,
    p: PNorm,
}

impl Zonotope {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// A zonotope with no uncertainty: every variable equals its center.
    pub fn constant(center: &Matrix, p: PNorm) -> Self {
        let n = center.len();
        Self {
            rows: center.rows(),
            cols: center.cols(),
            center: center.as_slice().to_vec(),
            phi: Matrix::zeros(n, 0),
            eps: EpsStore::zeros(n, 0),
            p,
        }
    }

    /// An ℓp ball of radius `radius` around `center`, perturbing only the
    /// logical rows listed in `perturbed_rows` (threat model T1: an ℓp
    /// perturbation of one or more word embeddings).
    ///
    /// For `p ∈ {1, 2}` each perturbed variable receives its own `φ` symbol
    /// (jointly ℓp-bounded); for `p = ∞` it receives its own `ε` symbol,
    /// recovering the classical zonotope.
    ///
    /// # Panics
    ///
    /// Panics if a row index is out of range.
    pub fn from_lp_ball(center: &Matrix, radius: f64, p: PNorm, perturbed_rows: &[usize]) -> Self {
        let (rows, cols) = center.shape();
        let n = center.len();
        for &r in perturbed_rows {
            assert!(r < rows, "perturbed row {r} out of range ({rows} rows)");
        }
        let vars: Vec<usize> = perturbed_rows
            .iter()
            .flat_map(|&r| (0..cols).map(move |j| r * cols + j))
            .collect();
        let (phi, eps) = match p {
            // ℓ∞ symbols are independent, so the ball is a fresh diagonal
            // ε block — the shape the block store keeps structural.
            PNorm::Linf => (
                Matrix::zeros(n, 0),
                EpsStore::from_diag(n, &vars, &vec![radius; vars.len()]),
            ),
            _ => {
                let mut coeff = Matrix::zeros(n, vars.len());
                for (s, &k) in vars.iter().enumerate() {
                    coeff.set(k, s, radius);
                }
                (coeff, EpsStore::zeros(n, 0))
            }
        };
        Self {
            rows,
            cols,
            center: center.as_slice().to_vec(),
            phi,
            eps,
            p,
        }
    }

    /// A box region: variable `k` ranges over `center_k ± radii_k`.
    ///
    /// Each variable with a non-zero radius gets its own independent `ε`
    /// symbol. This is the region used for synonym certification (threat
    /// model T2): an ℓ∞ box covering the embeddings of all synonyms.
    ///
    /// # Panics
    ///
    /// Panics if `radii` and `center` shapes differ or any radius is
    /// negative.
    pub fn from_box(center: &Matrix, radii: &Matrix, p: PNorm) -> Self {
        assert_eq!(center.shape(), radii.shape(), "box shape mismatch");
        let n = center.len();
        let nz: Vec<usize> = (0..n).filter(|&k| radii.as_slice()[k] != 0.0).collect();
        let coeff: Vec<f64> = nz
            .iter()
            .map(|&k| {
                let r = radii.as_slice()[k];
                assert!(r > 0.0, "negative box radius");
                r
            })
            .collect();
        let eps = EpsStore::from_diag(n, &nz, &coeff);
        Self {
            rows: center.rows(),
            cols: center.cols(),
            center: center.as_slice().to_vec(),
            phi: Matrix::zeros(n, 0),
            eps,
            p,
        }
    }

    /// Builds a zonotope from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the row counts of `phi`/`eps` differ from
    /// `center.len() == rows * cols`.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        center: Vec<f64>,
        phi: Matrix,
        eps: Matrix,
        p: PNorm,
    ) -> Self {
        assert_eq!(eps.rows(), center.len(), "eps rows mismatch");
        Self::from_parts_store(rows, cols, center, phi, EpsStore::from_matrix(eps), p)
    }

    /// Builds a zonotope from raw parts with an already block-structured
    /// `ε` store.
    ///
    /// # Panics
    ///
    /// Panics if the row counts of `phi`/`eps` differ from
    /// `center.len() == rows * cols`.
    pub fn from_parts_store(
        rows: usize,
        cols: usize,
        center: Vec<f64>,
        phi: Matrix,
        eps: EpsStore,
        p: PNorm,
    ) -> Self {
        assert_eq!(center.len(), rows * cols, "center length mismatch");
        assert_eq!(phi.rows(), center.len(), "phi rows mismatch");
        assert_eq!(eps.n_vars(), center.len(), "eps rows mismatch");
        Self {
            rows,
            cols,
            center,
            phi,
            eps,
            p,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of logical rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of logical columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of abstracted variables (`rows * cols`).
    pub fn n_vars(&self) -> usize {
        self.center.len()
    }

    /// Number of ℓp-bounded `φ` noise symbols.
    pub fn num_phi(&self) -> usize {
        self.phi.cols()
    }

    /// Number of ℓ∞ `ε` noise symbols (including structural zero columns).
    pub fn num_eps(&self) -> usize {
        self.eps.width()
    }

    /// The norm bounding the `φ` symbols.
    pub fn p(&self) -> PNorm {
        self.p
    }

    /// Center coefficients, flat row-major.
    pub fn center(&self) -> &[f64] {
        &self.center
    }

    /// Center as a `rows × cols` matrix.
    pub fn center_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.center.clone()).expect("consistent shape")
    }

    /// The `φ` coefficient matrix (`n_vars × num_phi`).
    pub fn phi(&self) -> &Matrix {
        &self.phi
    }

    /// The block-structured `ε` coefficient store (`n_vars × num_eps`
    /// logical).
    pub fn eps_store(&self) -> &EpsStore {
        &self.eps
    }

    /// Materializes the full dense `ε` coefficient matrix
    /// (`n_vars × num_eps`). Prefer the [`EpsStore`] scans on hot paths.
    pub fn eps_dense_matrix(&self) -> Matrix {
        self.eps.to_matrix()
    }

    /// The full logical `ε` coefficient row of variable `k`.
    pub fn eps_row(&self, k: usize) -> Vec<f64> {
        self.eps.row(k)
    }

    /// Resident heap bytes of this zonotope's payload (centre + `φ`
    /// coefficients + the `ε` store's actual storage, which for blocked
    /// storage is far less than the logical dense matrix). Byte-budgeted
    /// caches use this to account layer snapshots.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<f64>() * (self.center().len() + self.phi().len())
            + self.eps.resident_bytes()
    }

    /// One logical `ε` coefficient.
    pub fn eps_at(&self, k: usize, j: usize) -> f64 {
        self.eps.at(k, j)
    }

    /// Flat variable index of logical position `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn var_index(&self, i: usize, j: usize) -> usize {
        assert!(i < self.rows && j < self.cols, "var index out of range");
        i * self.cols + j
    }

    // ------------------------------------------------------------------
    // Concrete bounds (Theorem 1)
    // ------------------------------------------------------------------

    /// Sound and tight concrete interval bounds of every variable:
    /// `l_k = c_k − ‖α_k‖_q − ‖β_k‖₁`, `u_k = c_k + ‖α_k‖_q + ‖β_k‖₁`.
    pub fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.n_vars();
        let mut lo = Vec::with_capacity(n);
        let mut hi = Vec::with_capacity(n);
        // One O(nnz) sweep over the ε blocks instead of a dense row scan
        // per variable; per row the summation order is unchanged.
        let eps_l1 = self.eps.row_l1_all();
        for (k, &el1) in eps_l1.iter().enumerate().take(n) {
            let dev = self.p.dual_norm(self.phi.row(k)) + el1;
            lo.push(self.center[k] - dev);
            hi.push(self.center[k] + dev);
        }
        (lo, hi)
    }

    /// Bounds of a single variable.
    pub fn bounds_of(&self, k: usize) -> (f64, f64) {
        let dev = self.deviation(k);
        (self.center[k] - dev, self.center[k] + dev)
    }

    /// Half-width `‖α_k‖_q + ‖β_k‖₁` of variable `k`.
    pub fn deviation(&self, k: usize) -> f64 {
        self.p.dual_norm(self.phi.row(k)) + self.eps.row_l1(k)
    }

    /// Maximum half-width over all variables.
    pub fn max_deviation(&self) -> f64 {
        let eps_l1 = self.eps.row_l1_all();
        (0..self.n_vars())
            .map(|k| self.p.dual_norm(self.phi.row(k)) + eps_l1[k])
            .fold(0.0, f64::max)
    }

    /// Mean and maximum concrete interval width (`u_k − l_k`) over all
    /// variables. One pass over the coefficient matrices; used by the
    /// telemetry probes, so it is only computed when a probe is enabled.
    pub fn width_stats(&self) -> (f64, f64) {
        let n = self.n_vars();
        if n == 0 {
            return (0.0, 0.0);
        }
        let eps_l1 = self.eps.row_l1_all();
        let mut sum = 0.0;
        let mut max = 0.0f64;
        for (k, &el1) in eps_l1.iter().enumerate().take(n) {
            let w = 2.0 * (self.p.dual_norm(self.phi.row(k)) + el1);
            sum += w;
            max = max.max(w);
        }
        (sum / n as f64, max)
    }

    /// Snapshot of this zonotope's shape, symbol counts and widths for the
    /// telemetry layer.
    pub fn telemetry_stats(&self) -> deept_telemetry::ZonotopeStats {
        let (mean_width, max_width) = self.width_stats();
        deept_telemetry::ZonotopeStats {
            rows: self.rows,
            cols: self.cols,
            num_phi: self.num_phi(),
            num_eps: self.num_eps(),
            mean_width,
            max_width,
        }
    }

    /// `true` if any coefficient is NaN or infinite (certification should
    /// then be reported as failed).
    pub fn has_non_finite(&self) -> bool {
        self.center.iter().any(|x| !x.is_finite())
            || self.phi.has_non_finite()
            || self.eps.has_non_finite()
    }

    // ------------------------------------------------------------------
    // Symbol alignment
    // ------------------------------------------------------------------

    /// Extends the `ε` store with zero columns up to `n_cols` symbols.
    /// Structural (free) in the block store; an in-place column growth in
    /// `DEEPT_EPS=dense` mode.
    ///
    /// # Panics
    ///
    /// Panics if the zonotope already has more than `n_cols` symbols.
    pub fn pad_eps(&mut self, n_cols: usize) {
        self.eps.pad_to(n_cols);
    }

    fn assert_compatible(&self, other: &Zonotope) {
        assert_eq!(self.p, other.p, "mixing zonotopes with different p-norms");
        assert_eq!(
            self.phi.cols(),
            other.phi.cols(),
            "mixing zonotopes with different phi symbol sets"
        );
    }

    // ------------------------------------------------------------------
    // Exact affine transformers (§4.2)
    // ------------------------------------------------------------------

    /// Element-wise sum of two zonotopes over the same symbols (exact).
    ///
    /// The `ε` matrices are zero-padded to the longer width first, which is
    /// sound because `ε` symbols are positional (see the type-level docs).
    ///
    /// # Panics
    ///
    /// Panics on shape, norm or `φ`-set mismatch.
    pub fn add(&self, other: &Zonotope) -> Zonotope {
        self.assert_compatible(other);
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape mismatch"
        );
        Zonotope {
            rows: self.rows,
            cols: self.cols,
            center: deept_tensor::vec_add(&self.center, &other.center),
            phi: self.phi.add(&other.phi),
            // The store add aligns widths structurally — no zero hstack.
            eps: self.eps.add(&other.eps),
            p: self.p,
        }
    }

    /// Element-wise difference (exact).
    ///
    /// # Panics
    ///
    /// Panics on shape, norm or `φ`-set mismatch.
    pub fn sub(&self, other: &Zonotope) -> Zonotope {
        self.add(&other.scale(-1.0))
    }

    /// Scales every variable by `s` (exact).
    pub fn scale(&self, s: f64) -> Zonotope {
        Zonotope {
            rows: self.rows,
            cols: self.cols,
            center: deept_tensor::vec_scale(&self.center, s),
            phi: self.phi.scale(s),
            eps: self.eps.scale(s),
            p: self.p,
        }
    }

    /// Adds a constant matrix to the centers (exact).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_const(&self, c: &Matrix) -> Zonotope {
        assert_eq!(
            c.shape(),
            (self.rows, self.cols),
            "add_const shape mismatch"
        );
        let mut out = self.clone();
        for (o, &x) in out.center.iter_mut().zip(c.as_slice()) {
            *o += x;
        }
        out
    }

    /// Adds the row vector `bias` to every logical row (exact). This is the
    /// usual dense-layer bias.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_bias(&self, bias: &[f64]) -> Zonotope {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for (j, &b) in bias.iter().enumerate() {
                out.center[i * self.cols + j] += b;
            }
        }
        out
    }

    /// Multiplies every logical row element-wise by the constant vector `w`
    /// (exact). This is the layer-norm `γ` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != cols`.
    pub fn mul_row_weights(&self, w: &[f64]) -> Zonotope {
        assert_eq!(w.len(), self.cols, "weight length mismatch");
        let mut out = self.clone();
        for i in 0..self.rows {
            for (j, &wj) in w.iter().enumerate() {
                let k = i * self.cols + j;
                out.center[k] *= wj;
                for e in 0..out.phi.cols() {
                    *out.phi.at_mut(k, e) *= wj;
                }
            }
        }
        let w_per_var: Vec<f64> = (0..self.n_vars()).map(|k| w[k % self.cols]).collect();
        out.eps = self.eps.mul_rows(&w_per_var);
        out
    }

    /// Right-multiplies the logical variable matrix by a constant matrix:
    /// `X (rows × cols) ↦ X · W (rows × d)` (exact). This is the dense
    /// layer / query-key-value projection.
    ///
    /// # Panics
    ///
    /// Panics if `W.rows() != cols`.
    pub fn matmul_right(&self, w: &Matrix) -> Zonotope {
        assert_eq!(w.rows(), self.cols, "matmul_right shape mismatch");
        let d = w.cols();
        let center = self.center_matrix().matmul(w);
        let map_coeffs = |coeff: &Matrix| -> Matrix {
            let e = coeff.cols();
            let mut out = Matrix::zeros(self.rows * d, e);
            for i in 0..self.rows {
                let block = coeff.slice_rows(i * self.cols, (i + 1) * self.cols);
                let mapped = w.transpose_a_matmul(&block); // (d × e)
                for r in 0..d {
                    out.row_mut(i * d + r).copy_from_slice(mapped.row(r));
                }
            }
            out
        };
        Zonotope {
            rows: self.rows,
            cols: d,
            center: center.into_vec(),
            phi: map_coeffs(&self.phi),
            eps: self.eps.matmul_right_map(w, self.rows, self.cols),
            p: self.p,
        }
    }

    /// Left-multiplies the logical variable matrix by a constant matrix:
    /// `X (rows × cols) ↦ P · X (m × cols)` (exact).
    ///
    /// # Panics
    ///
    /// Panics if `P.cols() != rows`.
    pub fn matmul_left(&self, p_mat: &Matrix) -> Zonotope {
        assert_eq!(p_mat.cols(), self.rows, "matmul_left shape mismatch");
        let m = p_mat.rows();
        let center = p_mat.matmul(&self.center_matrix());
        let map_coeffs = |coeff: &Matrix| -> Matrix {
            let e = coeff.cols();
            let mut out = Matrix::zeros(m * self.cols, e);
            for mi in 0..m {
                for i in 0..self.rows {
                    let s = p_mat.at(mi, i);
                    if s == 0.0 {
                        continue;
                    }
                    for j in 0..self.cols {
                        let src = coeff.row(i * self.cols + j);
                        let dst = out.row_mut(mi * self.cols + j);
                        for (d, &x) in dst.iter_mut().zip(src) {
                            *d += s * x;
                        }
                    }
                }
            }
            out
        };
        Zonotope {
            rows: m,
            cols: self.cols,
            center: center.into_vec(),
            phi: map_coeffs(&self.phi),
            eps: self.eps.matmul_left_map(p_mat, self.rows, self.cols),
            p: self.p,
        }
    }

    /// Applies an arbitrary linear map to the *flat variable vector*:
    /// the output has `l.rows()` variables, reshaped to
    /// `out_rows × out_cols`, with `y = L x` (exact).
    ///
    /// This is the general-purpose affine transformer used by the softmax
    /// machinery (pairwise differences, sums).
    ///
    /// # Panics
    ///
    /// Panics if `l.cols() != n_vars()` or the output shape does not match
    /// `l.rows()`.
    pub fn linear_vars(&self, l: &Matrix, out_rows: usize, out_cols: usize) -> Zonotope {
        assert_eq!(l.cols(), self.n_vars(), "linear_vars shape mismatch");
        assert_eq!(
            l.rows(),
            out_rows * out_cols,
            "linear_vars output shape mismatch"
        );
        Zonotope {
            rows: out_rows,
            cols: out_cols,
            center: l.matvec(&self.center),
            phi: l.matmul(&self.phi),
            eps: self.eps.linear_map(l),
            p: self.p,
        }
    }

    /// Subtracts from every logical row its mean (the paper's layer
    /// normalization without division by the standard deviation, §3.1).
    /// Exact, since it is the affine map `X ↦ X (I − (1/cols) 11ᵀ)`.
    pub fn subtract_row_mean(&self) -> Zonotope {
        let c = self.cols;
        // Rank-1 form: mean per logical row (a `c × 1` product), broadcast
        // back to `c` columns (multiplication by exact 1.0), then an exact
        // element-wise subtract. Same affine map as multiplying by
        // `I − J/c`, at `O(c·width)` instead of `O(c²·width)` generator
        // work, and bitwise mode-invariant because every step routes
        // through the pinned kernels or element-wise ops.
        let mean = self.matmul_right(&Matrix::full(c, 1, 1.0 / c as f64));
        self.sub(&mean.matmul_right(&Matrix::full(1, c, 1.0)))
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Transposes the logical variable matrix (a permutation of variables;
    /// exact).
    pub fn transpose(&self) -> Zonotope {
        let perm: Vec<usize> = (0..self.cols)
            .flat_map(|j| (0..self.rows).map(move |i| i * self.cols + j))
            .collect();
        self.permute_vars(&perm, self.cols, self.rows)
    }

    /// Keeps the logical rows listed in `idx`, in that order (exact).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn select_rows(&self, idx: &[usize]) -> Zonotope {
        let perm: Vec<usize> = idx
            .iter()
            .flat_map(|&i| {
                assert!(i < self.rows, "row index out of range");
                (0..self.cols).map(move |j| i * self.cols + j)
            })
            .collect();
        self.permute_vars(&perm, idx.len(), self.cols)
    }

    /// Keeps the logical columns listed in `idx`, in that order (exact).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn select_cols(&self, idx: &[usize]) -> Zonotope {
        let perm: Vec<usize> = (0..self.rows)
            .flat_map(|i| {
                idx.iter().map(move |&j| {
                    assert!(j < self.cols, "col index out of range");
                    i * self.cols + j
                })
            })
            .collect();
        self.permute_vars(&perm, self.rows, idx.len())
    }

    /// Reinterprets the logical shape without moving data.
    ///
    /// # Panics
    ///
    /// Panics if `r * c != n_vars()`.
    pub fn reshape(&self, r: usize, c: usize) -> Zonotope {
        assert_eq!(r * c, self.n_vars(), "reshape size mismatch");
        let mut out = self.clone();
        out.rows = r;
        out.cols = c;
        out
    }

    fn permute_vars(&self, perm: &[usize], rows: usize, cols: usize) -> Zonotope {
        let pick_rows = |m: &Matrix| -> Matrix {
            let mut out = Matrix::zeros(perm.len(), m.cols());
            for (r, &src) in perm.iter().enumerate() {
                out.row_mut(r).copy_from_slice(m.row(src));
            }
            out
        };
        Zonotope {
            rows,
            cols,
            center: perm.iter().map(|&k| self.center[k]).collect(),
            phi: pick_rows(&self.phi),
            eps: self.eps.permute_rows(perm),
            p: self.p,
        }
    }

    /// Vertically concatenates zonotopes over the same symbol sets (exact).
    /// All parts are `ε`-padded to the widest part.
    ///
    /// # Panics
    ///
    /// Panics if parts disagree on logical column count, `p`, or `φ` width,
    /// or if `parts` is empty.
    pub fn concat_rows(parts: &[Zonotope]) -> Zonotope {
        assert!(!parts.is_empty(), "concat_rows of no parts");
        let cols = parts[0].cols;
        let mut rows = 0;
        let mut center = Vec::new();
        for part in parts {
            parts[0].assert_compatible(part);
            assert_eq!(part.cols, cols, "concat_rows col mismatch");
            rows += part.rows;
            center.extend_from_slice(&part.center);
        }
        let phi = parts[1..]
            .iter()
            .fold(parts[0].phi.clone(), |acc, part| acc.vstack(&part.phi));
        let stores: Vec<&EpsStore> = parts.iter().map(|part| &part.eps).collect();
        Zonotope {
            rows,
            cols,
            center,
            phi,
            eps: EpsStore::vstack(&stores),
            p: parts[0].p,
        }
    }

    /// Horizontally concatenates zonotopes (exact). Used to assemble
    /// multi-head attention outputs before the output projection.
    ///
    /// # Panics
    ///
    /// Panics if parts disagree on row count, `p` or `φ` width, or if
    /// `parts` is empty.
    pub fn concat_cols(parts: &[Zonotope]) -> Zonotope {
        assert!(!parts.is_empty(), "concat_cols of no parts");
        let transposed: Vec<Zonotope> = parts.iter().map(Zonotope::transpose).collect();
        Zonotope::concat_rows(&transposed).transpose()
    }

    // ------------------------------------------------------------------
    // Concrete instantiation (used heavily by the soundness test suites)
    // ------------------------------------------------------------------

    /// Evaluates every variable at a concrete noise instantiation.
    ///
    /// # Panics
    ///
    /// Panics if the noise vectors have the wrong lengths (`φ` may be
    /// shorter than `num_phi` only if the missing coefficients are unused;
    /// we require exact lengths for clarity).
    pub fn evaluate(&self, phi: &[f64], eps: &[f64]) -> Vec<f64> {
        assert_eq!(phi.len(), self.num_phi(), "phi instantiation length");
        assert_eq!(eps.len(), self.num_eps(), "eps instantiation length");
        // Gather each logical ε row into a recycled scratch buffer and use
        // the same `dot` as the dense representation, so evaluation is
        // bitwise independent of the block layout.
        let mut row = arena::take_zeroed(self.num_eps());
        let out: Vec<f64> = (0..self.n_vars())
            .map(|k| {
                self.eps.write_row_into(k, &mut row);
                self.center[k]
                    + deept_tensor::dot(self.phi.row(k), phi)
                    + deept_tensor::dot(&row, eps)
            })
            .collect();
        arena::give(row);
        // Callers reshape this into a rows × cols matrix; the invariant they
        // rely on is exactly one value per abstracted variable.
        debug_assert_eq!(out.len(), self.rows * self.cols);
        out
    }

    /// Samples a valid noise instantiation (`‖φ‖_p ≤ 1`, `ε ∈ [−1,1]`).
    ///
    /// Not uniform over the region — it only needs to produce *valid*
    /// points for soundness testing.
    pub fn sample_noise(&self, rng: &mut impl rand::Rng) -> (Vec<f64>, Vec<f64>) {
        let mut phi: Vec<f64> = (0..self.num_phi())
            .map(|_| rng.gen_range(-1.0..=1.0))
            .collect();
        let n = self.p.norm(&phi);
        if n > 1.0 {
            let target: f64 = rng.gen_range(0.0..=1.0);
            for x in &mut phi {
                *x *= target / n;
            }
        }
        let eps: Vec<f64> = (0..self.num_eps())
            .map(|_| rng.gen_range(-1.0..=1.0))
            .collect();
        (phi, eps)
    }

    /// Samples an extreme noise instantiation: `ε ∈ {−1, +1}` and `φ` on the
    /// unit ℓp sphere. Useful for probing bound tightness.
    pub fn sample_extreme_noise(&self, rng: &mut impl rand::Rng) -> (Vec<f64>, Vec<f64>) {
        let mut phi: Vec<f64> = (0..self.num_phi())
            .map(|_| rng.gen_range(-1.0..=1.0))
            .collect();
        let n = self.p.norm(&phi);
        if n > 0.0 {
            for x in &mut phi {
                *x /= n;
            }
        }
        let eps: Vec<f64> = (0..self.num_eps())
            .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
            .collect();
        (phi, eps)
    }
}

impl std::fmt::Display for Zonotope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Zonotope {}x{} (p = {}, {} phi symbols, {} eps symbols)",
            self.rows,
            self.cols,
            self.p,
            self.num_phi(),
            self.num_eps()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_zono() -> Zonotope {
        // The Figure 4 zonotope: x = 4 + φ1 + φ2 − ε1 + 2ε2,
        // y = 3 + φ1 + φ2 + ε1 + ε2, ‖φ‖₂ ≤ 1.
        Zonotope::from_parts(
            2,
            1,
            vec![4.0, 3.0],
            Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]),
            Matrix::from_rows(&[&[-1.0, 2.0], &[1.0, 1.0]]),
            PNorm::L2,
        )
    }

    #[test]
    fn figure4_bounds() {
        let z = sample_zono();
        let (lo, hi) = z.bounds();
        // x: 4 ± (√2 + 3), y: 3 ± (√2 + 2)
        let s2 = 2f64.sqrt();
        assert!((lo[0] - (4.0 - s2 - 3.0)).abs() < 1e-12);
        assert!((hi[0] - (4.0 + s2 + 3.0)).abs() < 1e-12);
        assert!((lo[1] - (3.0 - s2 - 2.0)).abs() < 1e-12);
        assert!((hi[1] - (3.0 + s2 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn evaluation_respects_bounds() {
        let z = sample_zono();
        let (lo, hi) = z.bounds();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..500 {
            let (phi, eps) = z.sample_noise(&mut rng);
            let v = z.evaluate(&phi, &eps);
            for k in 0..z.n_vars() {
                assert!(v[k] >= lo[k] - 1e-12 && v[k] <= hi[k] + 1e-12);
            }
        }
    }

    #[test]
    fn lp_ball_construction() {
        let c = Matrix::from_rows(&[&[0.0, 0.0], &[5.0, 5.0]]);
        let z = Zonotope::from_lp_ball(&c, 0.5, PNorm::L1, &[1]);
        assert_eq!(z.num_phi(), 2);
        assert_eq!(z.num_eps(), 0);
        let (lo, hi) = z.bounds();
        // Unperturbed row is exact.
        assert_eq!((lo[0], hi[0]), (0.0, 0.0));
        // Perturbed row: ±0.5 in each coordinate (ℓ1 ball bounds).
        assert_eq!((lo[2], hi[2]), (4.5, 5.5));
        // ℓ∞ variant uses eps symbols.
        let zi = Zonotope::from_lp_ball(&c, 0.5, PNorm::Linf, &[1]);
        assert_eq!(zi.num_phi(), 0);
        assert_eq!(zi.num_eps(), 2);
    }

    #[test]
    fn l1_ball_joint_constraint_is_tighter_than_box() {
        // Under an ℓ1 ball, x + y has half-width r (not 2r as a box would).
        let c = Matrix::from_rows(&[&[0.0, 0.0]]);
        let z = Zonotope::from_lp_ball(&c, 1.0, PNorm::L1, &[0]);
        let sum = z.matmul_right(&Matrix::from_rows(&[&[1.0], &[1.0]]));
        let (lo, hi) = sum.bounds();
        assert!((hi[0] - 1.0).abs() < 1e-12 && (lo[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn box_construction_skips_zero_radius() {
        let c = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let r = Matrix::from_rows(&[&[0.1, 0.0, 0.2]]);
        let z = Zonotope::from_box(&c, &r, PNorm::L2);
        assert_eq!(z.num_eps(), 2);
        let (lo, hi) = z.bounds();
        assert_eq!((lo[1], hi[1]), (2.0, 2.0));
        assert!((lo[2] - 2.8).abs() < 1e-12 && (hi[2] - 3.2).abs() < 1e-12);
    }

    #[test]
    fn affine_ops_are_exact_on_samples() {
        let z = sample_zono().reshape(1, 2);
        let w = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[3.0, 0.0, -1.0]]);
        let out = z.matmul_right(&w);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..100 {
            let (phi, eps) = z.sample_noise(&mut rng);
            let x = z.evaluate(&phi, &eps);
            let y = out.evaluate(&phi, &eps);
            let expected = Matrix::row_vector(x).matmul(&w);
            for (a, b) in y.iter().zip(expected.as_slice()) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matmul_left_matches_samples() {
        let z = sample_zono(); // 2x1
        let p = Matrix::from_rows(&[&[2.0, -1.0], &[0.5, 0.5], &[1.0, 0.0]]);
        let out = z.matmul_left(&p);
        assert_eq!((out.rows(), out.cols()), (3, 1));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let (phi, eps) = z.sample_noise(&mut rng);
            let x = z.evaluate(&phi, &eps);
            let y = out.evaluate(&phi, &eps);
            for (r, &yr) in y.iter().enumerate().take(3) {
                let expected = p.at(r, 0) * x[0] + p.at(r, 1) * x[1];
                assert!((yr - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_aligns_eps_symbols() {
        let a = sample_zono();
        let mut b = sample_zono();
        b.pad_eps(4);
        let s = a.add(&b);
        assert_eq!(s.num_eps(), 4);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (phi, eps) = s.sample_noise(&mut rng);
        let v = s.evaluate(&phi, &eps);
        let va = a.evaluate(&phi, &eps[..2]);
        let vb = b.evaluate(&phi, &eps);
        assert!((v[0] - va[0] - vb[0]).abs() < 1e-12);
    }

    #[test]
    fn subtract_row_mean_centres() {
        let c = Matrix::from_rows(&[&[1.0, 2.0, 6.0]]);
        let z = Zonotope::from_lp_ball(&c, 0.1, PNorm::L2, &[0]);
        let n = z.subtract_row_mean();
        let mean = (1.0 + 2.0 + 6.0) / 3.0;
        assert!((n.center()[0] - (1.0 - mean)).abs() < 1e-12);
        // Row of the centred zonotope sums to 0 for any instantiation.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (phi, eps) = n.sample_noise(&mut rng);
        let v = n.evaluate(&phi, &eps);
        assert!(v.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn transpose_and_select() {
        let c = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let z = Zonotope::from_lp_ball(&c, 0.1, PNorm::L2, &[0, 2]);
        let t = z.transpose();
        assert_eq!((t.rows(), t.cols()), (2, 3));
        assert_eq!(t.center()[t.var_index(1, 2)], 6.0);
        let s = z.select_rows(&[2, 0]);
        assert_eq!(s.center(), &[5.0, 6.0, 1.0, 2.0]);
        let sc = z.select_cols(&[1]);
        assert_eq!(sc.center(), &[2.0, 4.0, 6.0]);
        // Double transpose is identity.
        assert_eq!(t.transpose(), z);
    }

    #[test]
    fn concat_rows_and_cols() {
        let a = Zonotope::from_lp_ball(&Matrix::from_rows(&[&[1.0, 2.0]]), 0.1, PNorm::L2, &[0]);
        let b = a.scale(2.0);
        let v = Zonotope::concat_rows(&[a.clone(), b.clone()]);
        assert_eq!((v.rows(), v.cols()), (2, 2));
        assert_eq!(v.center(), &[1.0, 2.0, 2.0, 4.0]);
        let h = Zonotope::concat_cols(&[a.clone(), b]);
        assert_eq!((h.rows(), h.cols()), (1, 4));
        assert_eq!(h.center(), &[1.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn linear_vars_pairwise_differences() {
        let z = sample_zono(); // vars x, y
        let l = Matrix::from_rows(&[&[1.0, -1.0], &[-1.0, 1.0]]);
        let d = z.linear_vars(&l, 2, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (phi, eps) = z.sample_noise(&mut rng);
        let v = z.evaluate(&phi, &eps);
        let dv = d.evaluate(&phi, &eps);
        assert!((dv[0] - (v[0] - v[1])).abs() < 1e-12);
        assert!((dv[1] - (v[1] - v[0])).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pad_eps would truncate")]
    fn pad_eps_cannot_truncate() {
        let mut z = sample_zono();
        z.pad_eps(1);
    }

    #[test]
    fn display_mentions_symbol_counts() {
        let s = sample_zono().to_string();
        assert!(s.contains("2 phi symbols") && s.contains("2 eps symbols"));
    }
}
