//! Element-wise abstract transformers (§4.3–§4.6 of the paper).
//!
//! Each transformer maps a zonotope variable `x` with concrete bounds
//! `[l, u]` to `y = λ·x + μ + β·ε_new` where `ε_new` is a fresh ℓ∞ noise
//! symbol. The choices of `λ, μ, β` below are the minimal-area sound
//! relaxations of ReLU, tanh, exp and reciprocal (Theorem 3); exp and
//! reciprocal additionally guarantee a **positive** concrete lower bound of
//! `y`, which the downstream reciprocal/softmax machinery requires.
//!
//! ## Paper deviation (documented in DESIGN.md)
//!
//! For the reciprocal the paper prints `t_opt = min(t_crit, 0.5u + ε̃)`.
//! The tangent value at `x = u` is `(2t − u)/t²`, *increasing* in `t`, so
//! positivity requires `t ≥ u/2` and the correct clamp is `max`, which is
//! what we implement. We also derive the new-symbol magnitude from
//! `max(gap(l), gap(u))`, which coincides with the paper's closed forms at
//! `t_opt = t_crit` and stays sound when the positivity clamp moves `t_opt`.

use deept_tensor::Matrix;

use crate::Zonotope;

/// The small positive constant `ε̃` of §4.5/§4.6 that keeps the exp and
/// reciprocal output bounds strictly positive.
pub const POSITIVITY_MARGIN: f64 = 0.01;

/// Width below which an input interval is treated as a single point and the
/// transformer returns the exact function value.
const POINT_WIDTH: f64 = 1e-12;

/// A per-variable relaxation `y = λ·x + μ + β·ε_new` (with the degenerate
/// cases of the ReLU handled as exact constants / identity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Relaxation {
    /// Slope applied to the input expression.
    pub lambda: f64,
    /// Added constant.
    pub mu: f64,
    /// Coefficient of the fresh ℓ∞ noise symbol (`0` for exact cases).
    pub beta: f64,
}

impl Relaxation {
    /// A poisoned relaxation propagating NaN: emitted when bounds have
    /// already blown up (overflow) so the verifier can fail gracefully via
    /// [`crate::Zonotope::has_non_finite`] instead of panicking.
    pub(crate) fn poisoned() -> Self {
        Relaxation {
            lambda: 0.0,
            mu: f64::NAN,
            beta: 0.0,
        }
    }

    fn exact_const(v: f64) -> Self {
        Relaxation {
            lambda: 0.0,
            mu: v,
            beta: 0.0,
        }
    }

    fn identity() -> Self {
        Relaxation {
            lambda: 1.0,
            mu: 0.0,
            beta: 0.0,
        }
    }
}

/// Sound constant band for a *monotone* function on a degenerate interval
/// `0 < u − l < POINT_WIDTH`: the endpoint values bracket `f(x)` for every
/// `x ∈ [l, u]`, so `[min(f(l), f(u)), max(f(l), f(u))]` is a valid output
/// interval. The endpoints are first widened by one ulp (libm
/// implementations are faithfully rounded, not exactly monotone), then the
/// half-width is nudged outward until the band provably covers both
/// endpoints despite midpoint rounding.
///
/// The previous behaviour — returning the *midpoint value* as an exact
/// constant — was pointwise unsound: on `exp` over `[l, l + 9e-13]` the
/// constant excludes `exp(u)` by ≈ `4.5e-13 · exp(u)`, far above rounding
/// noise.
fn endpoint_band(fl: f64, fu: f64) -> Relaxation {
    if !fl.is_finite() || !fu.is_finite() {
        return Relaxation::poisoned();
    }
    let (lo, hi) = if fl <= fu { (fl, fu) } else { (fu, fl) };
    let (lo, hi) = (lo.next_down(), hi.next_up());
    let mu = 0.5 * (lo + hi);
    let mut beta = (hi - mu).max(mu - lo).max(0.0);
    while mu - beta > lo || mu + beta < hi {
        beta = beta.next_up();
    }
    Relaxation {
        lambda: 0.0,
        mu,
        beta,
    }
}

/// Relaxation of `ReLU(x) = max(0, x)` on `[l, u]` (§4.3, Eq. 2).
pub fn relu_relaxation(l: f64, u: f64) -> Relaxation {
    debug_assert!(l <= u);
    if u <= 0.0 {
        Relaxation::exact_const(0.0)
    } else if l >= 0.0 {
        Relaxation::identity()
    } else if u - l < POINT_WIDTH {
        // Mixed-sign degenerate interval: λ = u/(u−l) explodes and its
        // rounding error swamps the band. The exact range is [0, u].
        endpoint_band(0.0, u)
    } else {
        let lambda = u / (u - l);
        let m = 0.5 * (-lambda * l).max((1.0 - lambda) * u);
        Relaxation {
            lambda,
            mu: m,
            beta: m,
        }
    }
}

/// Relaxation of `tanh(x)` on `[l, u]` (§4.4).
pub fn tanh_relaxation(l: f64, u: f64) -> Relaxation {
    debug_assert!(l <= u);
    if l == u {
        return Relaxation::exact_const(l.tanh());
    }
    if u - l < POINT_WIDTH {
        return endpoint_band(l.tanh(), u.tanh());
    }
    let tl = l.tanh();
    let tu = u.tanh();
    let lambda = (1.0 - tl * tl).min(1.0 - tu * tu);
    let mu = 0.5 * (tu + tl - lambda * (u + l));
    let beta = (0.5 * (tu - tl - lambda * (u - l))).max(0.0);
    Relaxation { lambda, mu, beta }
}

/// Relaxation of `exp(x)` on `[l, u]` (§4.5), guaranteeing a positive
/// concrete lower bound of the output.
pub fn exp_relaxation(l: f64, u: f64) -> Relaxation {
    debug_assert!(!matches!(
        l.partial_cmp(&u),
        Some(std::cmp::Ordering::Greater)
    ));
    // e^u would overflow (or the bounds already blew up): poison the output
    // rather than produce a spuriously finite band.
    if !l.is_finite() || !u.is_finite() || u > 709.0 {
        return Relaxation::poisoned();
    }
    if l == u {
        return Relaxation::exact_const(l.exp());
    }
    let w = u - l;
    if w < POINT_WIDTH {
        return endpoint_band(l.exp(), u.exp());
    }
    // t_crit = log((e^u − e^l)/(u − l)), computed stably as
    // l + log(expm1(w)/w); t_crit,2 = l + 1 − ε̃ keeps the tangent value at
    // x = l (the output lower bound) positive.
    let t_crit = l + (w.exp_m1() / w).ln();
    let t_crit2 = l + 1.0 - POSITIVITY_MARGIN;
    let t_opt = t_crit.min(t_crit2);
    let lambda = t_opt.exp();
    convex_tangent_relaxation(f64::exp, lambda, t_opt, l, u)
}

/// Relaxation of `1/x` on `[l, u]` with `l > 0` (§4.6), guaranteeing a
/// positive concrete lower bound of the output.
///
/// The reciprocal transformer is only defined for strictly positive inputs
/// (which the exp transformer guarantees inside the softmax). A non-positive
/// `l` returns the [`Relaxation::poisoned`] NaN relaxation — there is no
/// sound finite band over an interval containing the pole at `0` — so the
/// verifier fails gracefully via [`crate::Zonotope::has_non_finite`] instead
/// of panicking mid-certification.
pub fn reciprocal_relaxation(l: f64, u: f64) -> Relaxation {
    if !l.is_finite() || !u.is_finite() || l <= 0.0 {
        return Relaxation::poisoned();
    }
    debug_assert!(l <= u);
    if l == u {
        return Relaxation::exact_const(1.0 / l);
    }
    if u - l < POINT_WIDTH {
        return endpoint_band(1.0 / u, 1.0 / l);
    }
    let t_crit = (u * l).sqrt();
    // Positivity clamp: tangent(u) = (2t − u)/t² > 0 needs t > u/2.
    // (`max`, not the paper's printed `min`; see module docs.)
    let t_crit2 = 0.5 * u + POSITIVITY_MARGIN * u;
    let t_opt = t_crit.max(t_crit2);
    let lambda = -1.0 / (t_opt * t_opt);
    convex_tangent_relaxation(|x| 1.0 / x, lambda, t_opt, l, u)
}

/// Relaxation of `√x` on `[l, u]` with `l > 0`.
///
/// The paper's networks avoid the standard-deviation division, but the
/// Table 7 experiment certifies networks *with* standard layer norm, which
/// needs `√(var + ε)`. `√` is concave, so we relax its negation with the
/// shared convex-tangent construction and mirror the result; the output
/// lower bound is the chord, which is `≥ √l > 0` with no extra clamp.
///
/// A non-positive `l` returns the [`Relaxation::poisoned`] NaN relaxation
/// (callers add the layer-norm `ε` first, so a non-positive bound means the
/// abstraction already lost the domain constraint); the verifier then fails
/// gracefully via [`crate::Zonotope::has_non_finite`].
pub fn sqrt_relaxation(l: f64, u: f64) -> Relaxation {
    if !l.is_finite() || !u.is_finite() || l <= 0.0 {
        return Relaxation::poisoned();
    }
    debug_assert!(l <= u);
    if l == u {
        return Relaxation::exact_const(l.sqrt());
    }
    if u - l < POINT_WIDTH {
        return endpoint_band(l.sqrt(), u.sqrt());
    }
    // Chord-parallel tangency point of −√ on [l, u]: t = ((√l + √u)/2)².
    let t_opt = (0.5 * (l.sqrt() + u.sqrt())).powi(2);
    let lambda_neg = -1.0 / (2.0 * t_opt.sqrt());
    let r = convex_tangent_relaxation(|x| -x.sqrt(), lambda_neg, t_opt, l, u);
    Relaxation {
        lambda: -r.lambda,
        mu: -r.mu,
        beta: r.beta,
    }
}

/// Shared construction for convex functions: the tangent at `t_opt` is the
/// lower envelope; the band is widened by the larger endpoint gap.
fn convex_tangent_relaxation(
    f: impl Fn(f64) -> f64,
    lambda: f64,
    t_opt: f64,
    l: f64,
    u: f64,
) -> Relaxation {
    let intercept = f(t_opt) - lambda * t_opt;
    let gap_l = f(l) - (lambda * l + intercept);
    let gap_u = f(u) - (lambda * u + intercept);
    let delta = gap_l.max(gap_u).max(0.0);
    Relaxation {
        lambda,
        mu: intercept + 0.5 * delta,
        beta: 0.5 * delta,
    }
}

/// Which element-wise function to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// `tanh(x)`.
    Tanh,
    /// `exp(x)`.
    Exp,
    /// `1/x` for `x > 0`.
    Reciprocal,
    /// `√x` for `x > 0`.
    Sqrt,
}

impl Activation {
    /// The relaxation of this activation on `[l, u]`.
    pub fn relaxation(self, l: f64, u: f64) -> Relaxation {
        match self {
            Activation::Relu => relu_relaxation(l, u),
            Activation::Tanh => tanh_relaxation(l, u),
            Activation::Exp => exp_relaxation(l, u),
            Activation::Reciprocal => reciprocal_relaxation(l, u),
            Activation::Sqrt => sqrt_relaxation(l, u),
        }
    }

    /// The concrete function (used by the soundness test suites).
    pub fn eval(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Exp => x.exp(),
            Activation::Reciprocal => 1.0 / x,
            Activation::Sqrt => x.sqrt(),
        }
    }
}

/// Applies an element-wise abstract transformer to every variable of `z`,
/// appending one fresh ℓ∞ noise symbol per variable whose relaxation has
/// `β ≠ 0`.
///
/// If `act` is [`Activation::Reciprocal`] or [`Activation::Sqrt`] and some
/// variable's lower bound is not strictly positive, that variable's output
/// is the poisoned NaN relaxation and the result reports
/// [`Zonotope::has_non_finite`].
pub fn apply(z: &Zonotope, act: Activation) -> Zonotope {
    apply_floored(z, act, f64::NEG_INFINITY)
}

/// Like [`apply`], but computes each relaxation on
/// `[max(l, floor), max(u, floor)]`. Sound whenever the *true* values of the
/// variables are known to be `≥ floor` on domain grounds (e.g. a variance
/// plus ε is `≥ ε` even though McCormick-squared abstract bounds can dip
/// below zero).
pub fn apply_floored(z: &Zonotope, act: Activation, floor: f64) -> Zonotope {
    let n = z.n_vars();
    let (lo, hi) = z.bounds();
    let relax: Vec<Relaxation> = (0..n)
        .map(|k| act.relaxation(lo[k].max(floor), hi[k].max(floor)))
        .collect();

    let mut center = Vec::with_capacity(n);
    let mut phi = Matrix::zeros(n, z.num_phi());
    let mut lambda = Vec::with_capacity(n);
    let fresh: Vec<usize> = (0..n).filter(|&k| relax[k].beta != 0.0).collect();
    for (k, &r) in relax.iter().enumerate() {
        center.push(r.lambda * z.center()[k] + r.mu);
        lambda.push(r.lambda);
        if r.lambda != 0.0 {
            for (dst, &src) in phi.row_mut(k).iter_mut().zip(z.phi().row(k)) {
                *dst = r.lambda * src;
            }
        }
    }
    // Row-scaling preserves the ε block structure (λ = 0 hard-zeroes the
    // row, never multiplying a possibly-infinite coefficient), and the
    // fresh β symbols append as one diagonal block. Under DEEPT_PREC=f32
    // the scaled store is compressed here, with the per-row rounding slack
    // folded into the co-appended fresh symbols.
    let eps = z.eps_store().scale_rows_guarded(&lambda);
    let betas: Vec<f64> = fresh.iter().map(|&k| relax[k].beta).collect();
    let (mut eps, fresh, betas) = crate::eps::compress_for_append(eps, fresh, betas);
    eps.append_diag(&fresh, &betas);
    Zonotope::from_parts_store(z.rows(), z.cols(), center, phi, eps, z.p())
}

/// Convenience wrappers mirroring the paper's transformer names.
impl Zonotope {
    /// ReLU abstract transformer (§4.3).
    pub fn relu(&self) -> Zonotope {
        apply(self, Activation::Relu)
    }

    /// tanh abstract transformer (§4.4).
    pub fn tanh(&self) -> Zonotope {
        apply(self, Activation::Tanh)
    }

    /// Exponential abstract transformer (§4.5).
    pub fn exp(&self) -> Zonotope {
        apply(self, Activation::Exp)
    }

    /// Reciprocal abstract transformer (§4.6). Variables that may be
    /// non-positive poison the output (NaN, reported by
    /// [`Zonotope::has_non_finite`]).
    pub fn reciprocal(&self) -> Zonotope {
        apply(self, Activation::Reciprocal)
    }

    /// Square-root abstract transformer (standard layer norm support).
    /// Variables that may be non-positive poison the output (NaN, reported
    /// by [`Zonotope::has_non_finite`]).
    pub fn sqrt(&self) -> Zonotope {
        apply(self, Activation::Sqrt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PNorm;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_relaxation_sound(act: Activation, l: f64, u: f64) {
        let r = act.relaxation(l, u);
        let steps = 64;
        for i in 0..=steps {
            let x = l + (u - l) * i as f64 / steps as f64;
            let y = act.eval(x);
            let lo = r.lambda * x + r.mu - r.beta;
            let hi = r.lambda * x + r.mu + r.beta;
            let tol = 1e-9 * (1.0 + y.abs());
            assert!(
                y >= lo - tol && y <= hi + tol,
                "{act:?} on [{l},{u}] at x={x}: {y} not in [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn relu_cases() {
        assert_eq!(relu_relaxation(-3.0, -1.0), Relaxation::exact_const(0.0));
        assert_eq!(relu_relaxation(1.0, 3.0), Relaxation::identity());
        let r = relu_relaxation(-1.0, 3.0);
        assert!((r.lambda - 0.75).abs() < 1e-12);
        assert!((r.mu - 0.375).abs() < 1e-12);
        assert_eq!(r.mu, r.beta);
        check_relaxation_sound(Activation::Relu, -1.0, 3.0);
    }

    #[test]
    fn tanh_soundness_on_mixed_intervals() {
        for (l, u) in [(-2.0, 1.0), (-0.5, 0.5), (0.1, 4.0), (-4.0, -0.1)] {
            check_relaxation_sound(Activation::Tanh, l, u);
        }
    }

    #[test]
    fn exp_soundness_and_positivity() {
        for (l, u) in [(-3.0, 2.0), (-0.1, 0.1), (1.0, 5.0), (-10.0, -9.5)] {
            check_relaxation_sound(Activation::Exp, l, u);
            let r = exp_relaxation(l, u);
            // Output lower bound is the tangent at l; must be positive.
            let lower = r.lambda * l + r.mu - r.beta;
            assert!(
                lower > 0.0,
                "exp lower bound {lower} not positive on [{l},{u}]"
            );
        }
    }

    #[test]
    fn reciprocal_soundness_and_positivity() {
        for (l, u) in [(0.5, 2.0), (1.0, 1.5), (0.01, 10.0), (3.0, 3.1)] {
            check_relaxation_sound(Activation::Reciprocal, l, u);
            let r = reciprocal_relaxation(l, u);
            let lower = r.lambda * u + r.mu - r.beta;
            assert!(
                lower > 0.0,
                "reciprocal lower bound {lower} not positive on [{l},{u}]"
            );
        }
    }

    #[test]
    fn reciprocal_positivity_in_the_paper_min_failure_regime() {
        // l < u/4: the paper's printed `min` clamp would put the tangent at
        // √(ul) < u/2 and produce a negative lower bound; our `max` clamp
        // keeps it positive.
        let (l, u) = (0.1f64, 10.0f64);
        assert!((u * l).sqrt() < u / 2.0);
        let r = reciprocal_relaxation(l, u);
        assert!(r.lambda * u + r.mu - r.beta > 0.0);
        check_relaxation_sound(Activation::Reciprocal, l, u);
    }

    #[test]
    fn sqrt_soundness_and_positivity() {
        for (l, u) in [(0.5, 2.0), (1.0, 1.5), (0.01, 10.0), (3.0, 3.1)] {
            check_relaxation_sound(Activation::Sqrt, l, u);
            let r = sqrt_relaxation(l, u);
            // Lower envelope (the chord) stays positive.
            assert!(r.lambda * l + r.mu - r.beta > 0.0);
        }
    }

    fn is_poisoned(r: Relaxation) -> bool {
        r.mu.is_nan()
    }

    #[test]
    fn sqrt_poisons_nonpositive_inputs() {
        // l = 0, l = −ε and l just above 0 (the smallest positive normal):
        // the first two have no sound finite band, the last must succeed.
        assert!(is_poisoned(sqrt_relaxation(0.0, 1.0)));
        assert!(is_poisoned(sqrt_relaxation(-1e-9, 1.0)));
        assert!(is_poisoned(sqrt_relaxation(-2.0, -1.0)));
        let r = sqrt_relaxation(f64::MIN_POSITIVE, 1.0);
        assert!(r.mu.is_finite() && r.beta.is_finite());
        check_relaxation_sound(Activation::Sqrt, f64::MIN_POSITIVE, 1.0);
    }

    #[test]
    fn reciprocal_poisons_nonpositive_inputs() {
        assert!(is_poisoned(reciprocal_relaxation(0.0, 1.0)));
        assert!(is_poisoned(reciprocal_relaxation(-1e-9, 1.0)));
        assert!(is_poisoned(reciprocal_relaxation(-0.5, 1.0)));
        // The smallest positive normal is in-domain: 1/l is finite (≈4.5e307)
        // so the band is huge but finite and sound.
        let r = reciprocal_relaxation(f64::MIN_POSITIVE, 1.0);
        assert!(r.mu.is_finite() && r.beta.is_finite());
    }

    #[test]
    fn nonpositive_domain_poison_propagates_to_zonotope() {
        // A zonotope straddling zero: reciprocal/sqrt must not panic, and
        // the output must report non-finite so the verifier fails closed.
        let c = deept_tensor::Matrix::from_rows(&[&[0.2, 1.0]]);
        let z = Zonotope::from_lp_ball(&c, 0.5, PNorm::Linf, &[0]);
        assert!(z.reciprocal().has_non_finite());
        assert!(z.sqrt().has_non_finite());
    }

    #[test]
    fn point_intervals_are_exact() {
        let r = exp_relaxation(1.5, 1.5);
        assert_eq!(r.lambda, 0.0);
        assert!((r.mu - 1.5f64.exp()).abs() < 1e-12);
        assert_eq!(r.beta, 0.0);
        let r = tanh_relaxation(0.7, 0.7);
        assert!((r.mu - 0.7f64.tanh()).abs() < 1e-12);
    }

    /// Regression (soundness fuzzer finding): intervals with
    /// `0 < u − l < POINT_WIDTH` used to collapse to the *midpoint value* as
    /// an exact constant, excluding `f(l)` and `f(u)` — e.g. `exp` on
    /// `[l, l + 9e-13]` missed `exp(u)` by ≈ `4.5e-13 · exp(u)`. Degenerate
    /// intervals must return a band that covers both endpoints pointwise.
    #[test]
    fn degenerate_intervals_cover_endpoints() {
        let cases: &[(Activation, f64)] = &[
            (Activation::Tanh, 0.3),
            (Activation::Exp, 2.0),
            (Activation::Reciprocal, 0.7),
            (Activation::Sqrt, 1.3),
        ];
        for &(act, l) in cases {
            for w in [9e-13, 1e-13, 5e-16] {
                let u = l + w;
                assert!(u > l && u - l < 1e-12, "test setup: degenerate width");
                let r = act.relaxation(l, u);
                for x in [l, u, l + 0.5 * w] {
                    let y = act.eval(x);
                    let lo = r.lambda * x + r.mu - r.beta;
                    let hi = r.lambda * x + r.mu + r.beta;
                    assert!(
                        lo <= y && y <= hi,
                        "{act:?} on [{l},{u}] at x={x}: {y} not in [{lo},{hi}]"
                    );
                }
            }
        }
        // ReLU across zero with a degenerate width: λ = u/(u−l) would be
        // ≈ 5e11; the exact range [0, u] must be covered instead.
        let (l, u) = (-4e-13, 5e-13);
        let r = relu_relaxation(l, u);
        for x in [l, 0.0, u] {
            let y = x.max(0.0);
            assert!(r.lambda * x + r.mu - r.beta <= y && y <= r.lambda * x + r.mu + r.beta);
        }
    }

    /// One-ulp-wide intervals (the adversarial regime of the micro-checker)
    /// stay sound through every activation.
    #[test]
    fn one_ulp_intervals_are_sound() {
        for (act, l) in [
            (Activation::Tanh, -0.4f64),
            (Activation::Exp, 1.0),
            (Activation::Reciprocal, 0.25),
            (Activation::Sqrt, 2.0),
            (Activation::Relu, 1.0),
        ] {
            let u = l.next_up();
            let r = act.relaxation(l, u);
            for x in [l, u] {
                let y = act.eval(x);
                let lo = r.lambda * x + r.mu - r.beta;
                let hi = r.lambda * x + r.mu + r.beta;
                assert!(
                    lo <= y && y <= hi,
                    "{act:?} on 1-ulp [{l},{u}] at x={x}: {y} not in [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn apply_is_sound_on_zonotope_samples() {
        let c = deept_tensor::Matrix::from_rows(&[&[0.5, -0.5, 2.0]]);
        let z = Zonotope::from_lp_ball(&c, 0.7, PNorm::L2, &[0]);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for act in [Activation::Relu, Activation::Tanh, Activation::Exp] {
            let out = apply(&z, act);
            assert!(out.num_eps() >= z.num_eps());
            for _ in 0..200 {
                let (p, e) = out.sample_noise(&mut rng);
                let x = z.evaluate(&p, &e[..z.num_eps()]);
                let (lo, hi) = out.bounds();
                for k in 0..3 {
                    let y = act.eval(x[k]);
                    assert!(y >= lo[k] - 1e-9 && y <= hi[k] + 1e-9, "{act:?} var {k}");
                }
            }
        }
    }

    #[test]
    fn relu_exact_cases_add_no_symbols() {
        let c = deept_tensor::Matrix::from_rows(&[&[5.0, -5.0]]);
        let z = Zonotope::from_lp_ball(&c, 0.1, PNorm::Linf, &[0]);
        let out = z.relu();
        assert_eq!(out.num_eps(), z.num_eps());
        let (lo, hi) = out.bounds();
        assert!((lo[0] - 4.9).abs() < 1e-12 && (hi[0] - 5.1).abs() < 1e-12);
        assert_eq!((lo[1], hi[1]), (0.0, 0.0));
    }

    proptest! {
        #[test]
        fn prop_relaxations_sound(
            l in -5.0f64..5.0,
            w in 0.0f64..6.0,
        ) {
            let u = l + w;
            check_relaxation_sound(Activation::Relu, l, u);
            check_relaxation_sound(Activation::Tanh, l, u);
            check_relaxation_sound(Activation::Exp, l, u);
        }

        #[test]
        fn prop_reciprocal_sound(
            l in 0.01f64..5.0,
            w in 0.0f64..20.0,
        ) {
            let u = l + w;
            check_relaxation_sound(Activation::Reciprocal, l, u);
            let r = reciprocal_relaxation(l, u);
            prop_assert!(r.lambda * u + r.mu - r.beta > 0.0);
        }

        #[test]
        fn prop_sqrt_sound(l in 0.01f64..5.0, w in 0.0f64..20.0) {
            let u = l + w;
            check_relaxation_sound(Activation::Sqrt, l, u);
        }

        #[test]
        fn prop_exp_output_positive(l in -20.0f64..5.0, w in 0.0f64..10.0) {
            let u = l + w;
            let r = exp_relaxation(l, u);
            prop_assert!(r.lambda * l + r.mu - r.beta > 0.0);
        }
    }
}
