//! The **Multi-norm Zonotope** abstract domain of the DeepT paper
//! (*Fast and Precise Certification of Transformers*, PLDI 2021).
//!
//! A Multi-norm Zonotope abstracts a set of `n` real variables as
//!
//! ```text
//! x = c + A·φ + B·ε      with  ‖φ‖_p ≤ 1  and  ε_j ∈ [−1, 1],
//! ```
//!
//! i.e. a classical zonotope (the `ε` part) extended with noise symbols `φ`
//! that are *jointly* bounded by an ℓp norm. ℓ1 and ℓ2 input perturbation
//! balls are then expressible exactly, while a classical zonotope would have
//! to over-approximate them by a box.
//!
//! This crate provides the domain ([`Zonotope`]) together with every
//! abstract transformer the paper needs to push a perturbation region
//! through an encoder Transformer:
//!
//! * exact affine transformers ([`Zonotope::matmul_right`] and friends, §4.2),
//! * minimal-area element-wise transformers for ReLU, tanh, exp and
//!   reciprocal ([`elementwise`], §4.3–4.6),
//! * the dot-product transformer in its *Fast* (dual-norm, Eq. 5) and
//!   *Precise* (ε–ε interval analysis, Eq. 6) variants ([`dot`], §4.8),
//! * the numerically-favourable softmax `1/Σ exp(ν_j − ν_i)` ([`softmax`], §5.2),
//! * the softmax-sum zonotope refinement ([`refine`], §5.3 + Appendix A.1),
//! * `DecorrelateMin_k` noise-symbol reduction ([`reduce`], §5.1).
//!
//! The expensive transformers (`dot`, `softmax`, `reduce`) also come in
//! `*_probed` variants that report spans and precision metrics to a
//! [`deept_telemetry::Probe`]; the plain variants delegate to them with the
//! no-op probe and are bit-for-bit unaffected.
//!
//! # Example
//!
//! ```
//! use deept_core::{PNorm, Zonotope};
//! use deept_tensor::Matrix;
//!
//! // A 2-dimensional ℓ2 ball of radius 0.1 around (1, 2).
//! let z = Zonotope::from_lp_ball(
//!     &Matrix::from_rows(&[&[1.0, 2.0]]),
//!     0.1,
//!     PNorm::L2,
//!     &[0],
//! );
//! let (lo, hi) = z.bounds();
//! assert!((lo[0] - 0.9).abs() < 1e-12 && (hi[0] - 1.1).abs() < 1e-12);
//!
//! // Affine maps are exact: rotate the ball, bounds stay radius 0.1.
//! let w = Matrix::from_rows(&[&[0.6, -0.8], &[0.8, 0.6]]);
//! let (lo, hi) = z.matmul_right(&w).bounds();
//! assert!((hi[0] - lo[0] - 0.2).abs() < 1e-9);
//! ```

#![deny(clippy::print_stdout)]

pub mod dot;
pub mod elementwise;
pub mod eps;
pub mod geometry;
pub(crate) mod hot;
mod norm;
pub mod reduce;
pub mod refine;
pub mod softmax;
mod zonotope;

pub use dot::{DotConfig, DotVariant, NormOrder};
pub use eps::{EpsBlock, EpsStore};
pub use norm::PNorm;
pub use softmax::SoftmaxConfig;
pub use zonotope::Zonotope;
