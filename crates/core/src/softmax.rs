//! The softmax abstract transformer (§5.2) with the optional sum-constraint
//! refinement (§5.3).
//!
//! Rather than composing `exp → sum → reciprocal → multiply` on the raw
//! definition `σᵢ = e^{νᵢ} / Σⱼ e^{νⱼ}`, DeepT rewrites the softmax as
//!
//! ```text
//! σᵢ(ν) = 1 / Σⱼ exp(νⱼ − νᵢ)
//! ```
//!
//! which (a) lets the noise symbols of `νᵢ` cancel exactly against those of
//! `νⱼ` inside the affine difference, (b) avoids the multiplication
//! transformer entirely, and (c) keeps every output within `[0, 1]` by
//! construction (the denominator is ≥ 1 since the `j = i` term is exactly 1).

use deept_telemetry::{NoopProbe, Probe, SpanKind};
use deept_tensor::Matrix;

use crate::{refine, Zonotope};

/// Configuration of the softmax abstract transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SoftmaxConfig {
    /// Apply the §5.3 sum-constraint refinement after each row's softmax.
    pub refine_sum: bool,
    /// Within the refinement, also tighten tail ε symbol ranges (Step 3).
    pub tighten_eps: bool,
}

impl Default for SoftmaxConfig {
    fn default() -> Self {
        SoftmaxConfig {
            refine_sum: true,
            tighten_eps: true,
        }
    }
}

impl SoftmaxConfig {
    /// Softmax without the sum refinement (the ablation of Appendix A.5).
    pub fn without_refinement() -> Self {
        SoftmaxConfig {
            refine_sum: false,
            tighten_eps: false,
        }
    }
}

/// Applies the softmax abstract transformer across each logical row of `z`.
///
/// Fresh ℓ∞ symbols are appended for every exponential (`C·(C−1)` per row,
/// the diagonal difference being exactly zero) and every reciprocal (`C` per
/// row).
pub fn softmax_rows(z: &Zonotope, cfg: SoftmaxConfig) -> Zonotope {
    softmax_rows_probed(z, cfg, &NoopProbe)
}

/// [`softmax_rows`] wrapped in a telemetry span: reports the duration, the
/// output-zonotope stats (probe enabled only) and the number of fresh ℓ∞
/// symbols appended for the exponentials and reciprocals.
pub fn softmax_rows_probed(z: &Zonotope, cfg: SoftmaxConfig, probe: &dyn Probe) -> Zonotope {
    probe.span_enter(SpanKind::Softmax);
    crate::hot::softmax_total().inc();
    let before = probe.enabled().then(deept_tensor::parallel::snapshot);
    let eps_before = probe.enabled().then(crate::eps::snapshot);
    let out = softmax_rows_impl(z, cfg);
    if let Some(before) = before {
        probe.parallel(crate::dot::parallel_stats_since(&before));
    }
    if let Some(eps_before) = eps_before {
        probe.eps_storage(crate::eps::storage_stats_since(
            &eps_before,
            out.eps_store(),
        ));
    }
    let created = out.num_eps() - z.num_eps();
    let stats = probe.enabled().then(|| out.telemetry_stats());
    probe.span_exit(SpanKind::Softmax, stats, created);
    out
}

fn softmax_rows_impl(z: &Zonotope, cfg: SoftmaxConfig) -> Zonotope {
    let (rows, c) = (z.rows(), z.cols());
    let base = z.num_eps();

    // Pairwise-difference map: d_{(j,j')} = s_{j'} − s_j.
    let mut l_diff = Matrix::zeros(c * c, c);
    for j in 0..c {
        for jp in 0..c {
            if j != jp {
                l_diff.set(j * c + jp, jp, 1.0);
                l_diff.set(j * c + jp, j, -1.0);
            }
        }
    }
    // Row-sum map: S_j = Σ_{j'} e_{(j,j')}.
    let mut l_sum = Matrix::zeros(c, c * c);
    for j in 0..c {
        for jp in 0..c {
            l_sum.set(j, j * c + jp, 1.0);
        }
    }

    let mut parts: Vec<(Zonotope, usize)> = Vec::with_capacity(rows);
    let mut total_tail = 0;
    for i in 0..rows {
        let s = z.select_rows(&[i]).reshape(c, 1);
        let d = s.linear_vars(&l_diff, c, c);
        let e = d.exp();
        let sums = e.linear_vars(&l_sum, c, 1);
        // The true denominator Σ_j exp(ν_j − ν_i) is ≥ 1 (the j = i term is
        // exactly 1), so flooring the reciprocal's input bounds at 1 is
        // domain-sound; it also shields against catastrophic cancellation
        // of huge exp bounds under extreme input radii.
        let mut y = crate::elementwise::apply_floored(
            &sums,
            crate::elementwise::Activation::Reciprocal,
            1.0,
        );
        if cfg.refine_sum {
            y = refine::refine_sum(&y, 1.0, base, cfg.tighten_eps);
        }
        let tail = y.num_eps() - base;
        parts.push((y.reshape(1, c), total_tail));
        total_tail += tail;
    }
    assemble_with_offsets(z, base, total_tail, &parts)
}

/// Stacks per-row zonotopes whose ε symbols share a `base`-column prefix and
/// own disjoint tail ranges starting at `base + offset`.
fn assemble_with_offsets(
    input: &Zonotope,
    base: usize,
    total_tail: usize,
    parts: &[(Zonotope, usize)],
) -> Zonotope {
    let rows = parts.len();
    let c = parts.first().map_or(0, |(p, _)| p.cols());
    let n = rows * c;
    let e_phi = input.num_phi();
    let mut center = Vec::with_capacity(n);
    let mut phi = Matrix::zeros(n, e_phi);
    let mut eps = Matrix::zeros(n, base + total_tail);
    for (i, (part, offset)) in parts.iter().enumerate() {
        debug_assert_eq!(part.cols(), c);
        debug_assert_eq!(part.rows(), 1);
        let tail = part.num_eps() - base;
        for j in 0..c {
            let dst = i * c + j;
            center.push(part.center()[j]);
            phi.row_mut(dst).copy_from_slice(part.phi().row(j));
            let src = part.eps_row(j);
            eps.row_mut(dst)[..base].copy_from_slice(&src[..base]);
            eps.row_mut(dst)[base + offset..base + offset + tail].copy_from_slice(&src[base..]);
        }
    }
    Zonotope::from_parts(rows, c, center, phi, eps, input.p())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PNorm;
    use deept_tensor::ops::softmax_in_place;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_softmax_sound(z: &Zonotope, cfg: SoftmaxConfig, seed: u64) {
        let out = softmax_rows(z, cfg);
        let (lo, hi) = out.bounds();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..300 {
            let (phi, eps) = z.sample_noise(&mut rng);
            let vals = z.evaluate(&phi, &eps);
            for i in 0..z.rows() {
                let mut row: Vec<f64> = (0..z.cols()).map(|j| vals[i * z.cols() + j]).collect();
                softmax_in_place(&mut row);
                for (j, &rj) in row.iter().enumerate() {
                    let k = i * z.cols() + j;
                    assert!(
                        rj >= lo[k] - 1e-9 && rj <= hi[k] + 1e-9,
                        "softmax({i},{j}) = {} not in [{}, {}]",
                        rj,
                        lo[k],
                        hi[k]
                    );
                }
            }
        }
    }

    fn scores_zono(p: PNorm) -> Zonotope {
        let c = Matrix::from_rows(&[&[0.5, -0.2, 0.1], &[1.0, 1.0, -1.0]]);
        Zonotope::from_lp_ball(&c, 0.15, p, &[0, 1])
    }

    #[test]
    fn softmax_sound_all_norms_with_and_without_refinement() {
        for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
            let z = scores_zono(p);
            check_softmax_sound(&z, SoftmaxConfig::default(), 1);
            check_softmax_sound(&z, SoftmaxConfig::without_refinement(), 2);
        }
    }

    #[test]
    fn softmax_outputs_within_unit_interval() {
        let z = scores_zono(PNorm::L2);
        let out = softmax_rows(&z, SoftmaxConfig::without_refinement());
        let (lo, hi) = out.bounds();
        for k in 0..out.n_vars() {
            assert!(lo[k] > 0.0, "softmax lower bound must be positive");
            assert!(
                hi[k] <= 1.0 + 1e-9,
                "softmax upper bound must be ≤ 1, got {}",
                hi[k]
            );
        }
    }

    #[test]
    fn softmax_of_constant_is_exact() {
        let c = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let z = Zonotope::constant(&c, PNorm::L2);
        let out = softmax_rows(&z, SoftmaxConfig::default());
        let mut expected = [1.0, 2.0, 3.0];
        softmax_in_place(&mut expected);
        let (lo, hi) = out.bounds();
        for j in 0..3 {
            assert!((lo[j] - expected[j]).abs() < 1e-9);
            assert!((hi[j] - expected[j]).abs() < 1e-9);
        }
    }

    #[test]
    fn refinement_width_stays_comparable() {
        // The §5.3 refinement trades per-variable width for constraint
        // information: the refined first variable tightens while the
        // substitution can slightly widen the others (the paper reports
        // small net certification gains, Table 13). Here we only check the
        // total width stays in the same ballpark; net certification effect
        // is measured end-to-end by the table13 bench.
        let z = scores_zono(PNorm::L2);
        let plain = softmax_rows(&z, SoftmaxConfig::without_refinement());
        let refined = softmax_rows(&z, SoftmaxConfig::default());
        let (pl, ph) = plain.bounds();
        let (rl, rh) = refined.bounds();
        let plain_width: f64 = ph.iter().zip(&pl).map(|(h, l)| h - l).sum();
        let refined_width: f64 = rh.iter().zip(&rl).map(|(h, l)| h - l).sum();
        assert!(
            refined_width <= 1.10 * plain_width,
            "refined {refined_width} vs plain {plain_width}"
        );
    }

    #[test]
    fn rows_are_processed_independently() {
        // Changing one row's scores must not affect the other row's outputs.
        let c1 = Matrix::from_rows(&[&[0.5, -0.2], &[1.0, 1.0]]);
        let c2 = Matrix::from_rows(&[&[0.5, -0.2], &[9.0, -9.0]]);
        let z1 = Zonotope::from_lp_ball(&c1, 0.1, PNorm::L2, &[0]);
        let z2 = Zonotope::from_lp_ball(&c2, 0.1, PNorm::L2, &[0]);
        let o1 = softmax_rows(&z1, SoftmaxConfig::default());
        let o2 = softmax_rows(&z2, SoftmaxConfig::default());
        let (l1, h1) = o1.bounds();
        let (l2, h2) = o2.bounds();
        for j in 0..2 {
            assert!((l1[j] - l2[j]).abs() < 1e-12);
            assert!((h1[j] - h2[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn symbol_bookkeeping_appends_only() {
        let z = scores_zono(PNorm::L2);
        let out = softmax_rows(&z, SoftmaxConfig::without_refinement());
        // Per row: C(C−1) = 6 exp symbols + C = 3 reciprocal symbols.
        assert_eq!(out.num_eps(), z.num_eps() + 2 * (6 + 3));
        assert_eq!(out.num_phi(), z.num_phi());
    }
}
