//! Block-structured storage of the ε generator matrix.
//!
//! Every abstract transformer appends fresh ℓ∞ noise symbols, and each
//! fresh column has exactly one nonzero entry — the relaxation coefficient
//! of the variable that spawned it. Storing the generator matrix densely
//! makes every later affine op and norm scan pay `O(vars · cols)` on what
//! is structurally a diagonal block, and makes `pad_eps` alignment
//! materialize ever larger zero matrices.
//!
//! [`EpsStore`] instead keeps an ordered list of non-overlapping column
//! segments, each holding either a [`EpsBlock::Dense`] matrix or a
//! [`EpsBlock::Diag`] block (`var_for_col[s]` row, `coeff[s]` value — one
//! nonzero per column). Columns not covered by any segment are structural
//! zeros, so zero-padding ([`EpsStore::pad_to`]) is free and appending
//! fresh symbols ([`EpsStore::append_diag`]) costs `O(new symbols)`.
//!
//! # Densification rule
//!
//! Only *row-mixing* linear maps ([`EpsStore::matmul_right_map`],
//! [`EpsStore::matmul_left_map`], [`EpsStore::linear_map`], a variable
//! permutation that duplicates rows, and a partially-overlapping
//! [`EpsStore::add`]) convert a `Diag` block to `Dense` — lazily, and only
//! over the block's own columns. Everything column-local (scaling,
//! per-row weights, bounds and norm scans, column selection, padding)
//! preserves the block structure.
//!
//! # Bitwise equivalence
//!
//! With `DEEPT_EPS=dense` (or [`set_force_dense`]) every store normalizes
//! to a single physically padded dense block, reproducing the historical
//! representation. Concrete interval bounds are **bitwise identical**
//! between the two modes: per variable row, both modes add `|coeff|` terms
//! into one sequential accumulator in ascending column order, and skipping
//! a structural zero is a bitwise no-op for a non-negative accumulator
//! (`x + 0.0 == x`). Linear maps of `Diag` blocks compute exactly the one
//! product the dense kernel's zero-skipping inner loop computes, so
//! coefficients agree except possibly in the sign of zeros — which `|·|`
//! and `==` cannot observe. The equivalence is pinned by the
//! `eps_mode_equivalence` proptests.
//!
//! # `f32` storage (`DEEPT_PREC=f32`)
//!
//! With [`prec_f32`] active (blocked layout only), generator blocks are
//! compressed to `f32` payloads at the fresh-symbol append sites
//! ([`compress_for_append`]): existing coefficients round to *nearest*
//! with the per-row ℓ1 rounding loss folded — upward-rounded — into the
//! fresh symbol appended alongside, and brand-new single-use coefficients
//! round *away from zero*. Stored `f32` values promote exactly to `f64`,
//! so reads are value-preserving; row ℓ1 scans additionally widen by an
//! `n·ε` bound on their own `f64` accumulation. Values outside `f32`
//! range saturate to `±∞` and fail closed. This halves resident generator
//! bytes at a provable, one-directional (outward) loss of precision.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use deept_tensor::{arena, Matrix};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------
// Mode switch (mirrors `deept_tensor::parallel::force_naive`)
// ---------------------------------------------------------------------

static FORCE_DENSE_ENV: OnceLock<bool> = OnceLock::new();
/// 0 = follow the environment, 1 = forced dense, 2 = forced blocked.
static FORCE_DENSE: AtomicUsize = AtomicUsize::new(0);

/// Whether ε generators should be kept in the verbatim dense representation
/// (`DEEPT_EPS=dense` or [`set_force_dense`]). The blocked layout is the
/// default.
pub fn force_dense() -> bool {
    match FORCE_DENSE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => *FORCE_DENSE_ENV
            .get_or_init(|| std::env::var("DEEPT_EPS").is_ok_and(|v| v.trim() == "dense")),
    }
}

/// Forces the ε representation in-process (`None` restores the environment
/// default). Used by the mode-equivalence tests and the differential
/// benches; serialize callers with `deept_tensor::parallel::test_lock`.
pub fn set_force_dense(dense: Option<bool>) {
    let v = match dense {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    FORCE_DENSE.store(v, Ordering::Relaxed);
}

static PREC_F32_ENV: OnceLock<bool> = OnceLock::new();
/// 0 = follow the environment, 1 = forced f32, 2 = forced f64.
static PREC_F32: AtomicUsize = AtomicUsize::new(0);

/// Whether generator storage should be compressed to `f32` at the
/// fresh-symbol append sites (`DEEPT_PREC=f32` or [`set_force_f32`]).
/// Full `f64` storage is the default.
pub fn prec_f32() -> bool {
    match PREC_F32.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => *PREC_F32_ENV
            .get_or_init(|| std::env::var("DEEPT_PREC").is_ok_and(|v| v.trim() == "f32")),
    }
}

/// Forces the storage precision in-process (`None` restores the environment
/// default). Serialize callers with `deept_tensor::parallel::test_lock`.
pub fn set_force_f32(f32_on: Option<bool>) {
    let v = match f32_on {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    PREC_F32.store(v, Ordering::Relaxed);
}

/// `f32` compression only engages in the blocked layout: the dense mode
/// exists as the bitwise-verbatim historical reference, so `DEEPT_PREC=f32`
/// is a documented no-op under `DEEPT_EPS=dense`.
fn f32_active() -> bool {
    prec_f32() && !force_dense()
}

/// Nearest `f32` at or beyond `x` (away from zero). Used only for *fresh*
/// single-use symbol coefficients, where growing the magnitude grows the
/// abstraction — a finite `f64` beyond `f32` range saturates to `±∞`,
/// which poisons the row and fails closed.
fn round_away_f32(x: f64) -> f32 {
    let y = x as f32; // round-to-nearest
    if (y as f64) == x || !y.is_finite() {
        return y;
    }
    if (x > 0.0) == ((y as f64) < x) {
        // Nearest rounding moved toward zero: step one ulp outward.
        if x > 0.0 {
            y.next_up()
        } else {
            y.next_down()
        }
    } else {
        y
    }
}

/// Upward-rounded sum: `a + b` widened by one ulp to dominate the rounding
/// error of the addition itself (slack accumulation must never round down).
fn add_up(a: f64, b: f64) -> f64 {
    (a + b).next_up()
}

/// Widens a non-negative accumulator by the standard `n·ε` relative bound
/// on a length-`n` sequential `f64` summation, plus one ulp. Applied to
/// row scans that include promoted `f32` terms so the reported ℓ1 mass is
/// an outward-rounded upper bound on the exact sum.
fn widen_up(acc: f64, f32_terms: usize) -> f64 {
    if f32_terms == 0 || acc == 0.0 || !acc.is_finite() {
        return acc;
    }
    (acc * (1.0 + f32_terms as f64 * f64::EPSILON)).next_up()
}

// ---------------------------------------------------------------------
// Densification telemetry
// ---------------------------------------------------------------------

static DENSIFICATIONS: AtomicU64 = AtomicU64::new(0);

fn note_densified() {
    DENSIFICATIONS.fetch_add(1, Ordering::Relaxed);
    crate::hot::eps_densifications_total().inc();
}

/// High-water mark of the largest single generator store finalized since
/// the last [`reset_peak_resident_bytes`]. Layer outputs are densified by
/// the closing row-mixing map in both ε modes, so end-of-layer sampling
/// cannot see the blocked layout's savings; this watermark is updated on
/// every store finalization and therefore catches the mid-layer peaks
/// (e.g. the post-ReLU store with its fresh diagonal tail).
static PEAK_RESIDENT_BYTES: AtomicUsize = AtomicUsize::new(0);

/// Largest `EpsStore::resident_bytes` finalized since the last reset.
pub fn peak_resident_bytes() -> usize {
    PEAK_RESIDENT_BYTES.load(Ordering::Relaxed)
}

/// Resets the resident-bytes high-water mark (benchmark bracketing).
pub fn reset_peak_resident_bytes() {
    PEAK_RESIDENT_BYTES.store(0, Ordering::Relaxed);
}

/// ε-storage counters at a point in time; diff two snapshots to attribute
/// densification events and arena traffic to a pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpsSnapshot {
    /// Diag→Dense block conversions since process start.
    pub densifications: u64,
    /// Scratch-arena counters.
    pub arena: arena::ArenaSnapshot,
}

/// Reads the process-wide ε-storage counters.
pub fn snapshot() -> EpsSnapshot {
    EpsSnapshot {
        densifications: DENSIFICATIONS.load(Ordering::Relaxed),
        arena: arena::snapshot(),
    }
}

/// Builds the telemetry stats for a stage: counter deltas since `before`
/// plus the block layout of the stage's output store.
pub fn storage_stats_since(
    before: &EpsSnapshot,
    out: &EpsStore,
) -> deept_telemetry::EpsStorageStats {
    let now = snapshot();
    let arena = now.arena.since(&before.arena);
    deept_telemetry::EpsStorageStats {
        blocks: out.num_blocks(),
        diag_cols: out.diag_cols(),
        dense_cols: out.dense_cols(),
        densifications: now.densifications.saturating_sub(before.densifications),
        arena_hits: arena.hits,
        arena_misses: arena.misses,
    }
}

// ---------------------------------------------------------------------
// Blocks and segments
// ---------------------------------------------------------------------

/// One column block of the generator matrix.
#[derive(Debug, Clone)]
pub enum EpsBlock {
    /// An arbitrary `n_vars × cols` coefficient block.
    Dense(Matrix),
    /// One nonzero per column: column `s` has value `coeff[s]` in row
    /// `var_for_col[s]` (the shape every fresh-symbol append produces).
    Diag {
        /// Row (variable) index of each column's single nonzero.
        var_for_col: Vec<usize>,
        /// Value of each column's single nonzero.
        coeff: Vec<f64>,
    },
    /// An `f32`-compressed dense block (`DEEPT_PREC=f32`): row-major
    /// `n_vars × cols`. Each stored `f32` promotes *exactly* to `f64`; the
    /// round-to-nearest loss incurred at compression time is carried by
    /// fresh slack symbols appended alongside (see
    /// [`EpsStore::compress_rows_f32`]), so reading the block as its exact
    /// promoted values is sound.
    DenseF32 {
        /// Number of columns (rows are always `n_vars`).
        cols: usize,
        /// Row-major coefficient payload, `n_vars * cols` entries.
        data: Vec<f32>,
    },
    /// An `f32`-compressed diagonal block (fresh-symbol appends under
    /// `DEEPT_PREC=f32`). Coefficients are rounded *away from zero*, so
    /// each column dominates the `f64` coefficient it replaces.
    DiagF32 {
        /// Row (variable) index of each column's single nonzero.
        var_for_col: Vec<u32>,
        /// Value of each column's single nonzero.
        coeff: Vec<f32>,
    },
}

impl EpsBlock {
    fn cols(&self) -> usize {
        match self {
            EpsBlock::Dense(m) => m.cols(),
            EpsBlock::Diag { coeff, .. } => coeff.len(),
            EpsBlock::DenseF32 { cols, .. } => *cols,
            EpsBlock::DiagF32 { coeff, .. } => coeff.len(),
        }
    }

    fn is_f32(&self) -> bool {
        matches!(self, EpsBlock::DenseF32 { .. } | EpsBlock::DiagF32 { .. })
    }
}

#[derive(Debug, Clone)]
struct EpsSegment {
    /// First logical ε column this segment covers.
    offset: usize,
    block: EpsBlock,
}

impl EpsSegment {
    fn end(&self) -> usize {
        self.offset + self.block.cols()
    }
}

/// The block-structured ε generator store of a
/// [`crate::Zonotope`]: logically an `n_vars × width` matrix, physically a
/// sorted list of non-overlapping column segments over implicit zeros.
///
/// Equality, serialization and the [`Matrix`] conversions are all
/// *logical*: two stores with the same `n_vars`, `width` and per-entry
/// values are equal regardless of block layout.
#[derive(Debug, Clone)]
pub struct EpsStore {
    n_vars: usize,
    width: usize,
    segments: Vec<EpsSegment>,
}

impl Serialize for EpsStore {
    fn to_value(&self) -> serde::value::Value {
        self.to_matrix().to_value()
    }
}

impl Deserialize for EpsStore {
    fn from_value(value: &serde::value::Value) -> Result<Self, serde::Error> {
        Matrix::from_value(value).map(EpsStore::from_matrix)
    }
}

impl From<EpsStore> for Matrix {
    fn from(store: EpsStore) -> Matrix {
        store.to_matrix()
    }
}

impl From<Matrix> for EpsStore {
    fn from(m: Matrix) -> EpsStore {
        EpsStore::from_matrix(m)
    }
}

impl PartialEq for EpsStore {
    fn eq(&self, other: &Self) -> bool {
        if self.n_vars != other.n_vars || self.width != other.width {
            return false;
        }
        self.to_matrix() == other.to_matrix()
    }
}

impl EpsStore {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// An all-zero `n_vars × width` store.
    pub fn zeros(n_vars: usize, width: usize) -> Self {
        let mut out = EpsStore {
            n_vars,
            width,
            segments: Vec::new(),
        };
        out.normalize();
        out
    }

    /// Wraps a dense coefficient matrix (the `from_parts` entry point).
    pub fn from_matrix(m: Matrix) -> Self {
        let n_vars = m.rows();
        let width = m.cols();
        let segments = if width == 0 {
            Vec::new()
        } else {
            vec![EpsSegment {
                offset: 0,
                block: EpsBlock::Dense(m),
            }]
        };
        let mut out = EpsStore {
            n_vars,
            width,
            segments,
        };
        out.normalize();
        out
    }

    /// A store of fresh diagonal symbols: column `s` has `coeff[s]` in row
    /// `var_for_col[s]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or a row is out of range.
    pub fn from_diag(n_vars: usize, var_for_col: &[usize], coeff: &[f64]) -> Self {
        let mut out = EpsStore::zeros(n_vars, 0);
        out.append_diag(var_for_col, coeff);
        out
    }

    /// Re-establishes the dense-mode invariant (a single physically padded
    /// dense block) when `DEEPT_EPS=dense` is active; merges adjacent
    /// same-kind segments in blocked mode. Also feeds the resident-bytes
    /// high-water mark, since every mutator finalizes through here.
    fn normalize(&mut self) {
        self.normalize_layout();
        PEAK_RESIDENT_BYTES.fetch_max(self.resident_bytes(), Ordering::Relaxed);
    }

    fn normalize_layout(&mut self) {
        if !force_dense() {
            self.coalesce();
            return;
        }
        if let [seg] = self.segments.as_slice() {
            if seg.offset == 0
                && seg.block.cols() == self.width
                && matches!(seg.block, EpsBlock::Dense(_))
            {
                return;
            }
        }
        if self.segments.is_empty() {
            self.segments = vec![EpsSegment {
                offset: 0,
                block: EpsBlock::Dense(Matrix::zeros(self.n_vars, self.width)),
            }];
            return;
        }
        // Common dense-mode case: one full dense block that only needs more
        // columns — grow it in place instead of rebuilding.
        if self.segments.len() == 1
            && self.segments[0].offset == 0
            && matches!(self.segments[0].block, EpsBlock::Dense(_))
        {
            if let EpsBlock::Dense(m) = &mut self.segments[0].block {
                m.grow_cols(self.width);
                return;
            }
        }
        let mut dense = Matrix::zeros(self.n_vars, self.width);
        for seg in &self.segments {
            scatter_segment(&mut dense, seg);
            if matches!(seg.block, EpsBlock::Diag { .. } | EpsBlock::DiagF32 { .. }) {
                note_densified();
            }
        }
        self.segments = vec![EpsSegment {
            offset: 0,
            block: EpsBlock::Dense(dense),
        }];
    }

    /// Merges column-adjacent segments of the same kind (blocked mode's
    /// half of [`EpsStore::normalize`]). Without this, every fresh-symbol
    /// append or cluster-producing `add` grows the segment list, and
    /// downstream ops degrade into per-segment dispatch over many narrow
    /// blocks. Adjacent `Diag` pairs concatenate in O(cols); adjacent
    /// `Dense` pairs merge with one row-wise copy.
    fn coalesce(&mut self) {
        if self.segments.len() < 2 {
            return;
        }
        let n_vars = self.n_vars;
        let mut out: Vec<EpsSegment> = Vec::with_capacity(self.segments.len());
        for seg in self.segments.drain(..) {
            let merged = match out.last_mut() {
                Some(prev) if prev.end() == seg.offset => match (&mut prev.block, &seg.block) {
                    (EpsBlock::Dense(a), EpsBlock::Dense(b)) => {
                        let w0 = a.cols();
                        a.grow_cols(w0 + b.cols());
                        for r in 0..b.rows() {
                            a.row_mut(r)[w0..].copy_from_slice(b.row(r));
                        }
                        true
                    }
                    (
                        EpsBlock::Diag { var_for_col, coeff },
                        EpsBlock::Diag {
                            var_for_col: v2,
                            coeff: c2,
                        },
                    ) => {
                        var_for_col.extend_from_slice(v2);
                        coeff.extend_from_slice(c2);
                        true
                    }
                    (
                        EpsBlock::DenseF32 { cols: ca, data: da },
                        EpsBlock::DenseF32 { cols: cb, data: db },
                    ) => {
                        let nc = *ca + *cb;
                        let mut joined = Vec::with_capacity(n_vars * nc);
                        for r in 0..n_vars {
                            joined.extend_from_slice(&da[r * *ca..(r + 1) * *ca]);
                            joined.extend_from_slice(&db[r * *cb..(r + 1) * *cb]);
                        }
                        *da = joined;
                        *ca = nc;
                        true
                    }
                    (
                        EpsBlock::DiagF32 { var_for_col, coeff },
                        EpsBlock::DiagF32 {
                            var_for_col: v2,
                            coeff: c2,
                        },
                    ) => {
                        var_for_col.extend_from_slice(v2);
                        coeff.extend_from_slice(c2);
                        true
                    }
                    _ => false,
                },
                _ => false,
            };
            if !merged {
                out.push(seg);
            }
        }
        self.segments = out;
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of variable rows.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Logical number of ε columns (including structural zero padding).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of stored blocks.
    pub fn num_blocks(&self) -> usize {
        self.segments.len()
    }

    /// Columns held in diagonal blocks (either precision).
    pub fn diag_cols(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match &s.block {
                EpsBlock::Diag { coeff, .. } => coeff.len(),
                EpsBlock::DiagF32 { coeff, .. } => coeff.len(),
                EpsBlock::Dense(_) | EpsBlock::DenseF32 { .. } => 0,
            })
            .sum()
    }

    /// Columns held in dense blocks (either precision).
    pub fn dense_cols(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match &s.block {
                EpsBlock::Dense(m) => m.cols(),
                EpsBlock::DenseF32 { cols, .. } => *cols,
                EpsBlock::Diag { .. } | EpsBlock::DiagF32 { .. } => 0,
            })
            .sum()
    }

    /// Columns held in `f32`-compressed blocks.
    pub fn f32_cols(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| s.block.is_f32())
            .map(|s| s.block.cols())
            .sum()
    }

    /// Resident coefficient storage in bytes (dense entries + diag
    /// coefficient/index pairs), for memory telemetry. `f32` blocks count
    /// their narrower payload — this is what the `DEEPT_PREC=f32` peak
    /// memory gate measures.
    pub fn resident_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match &s.block {
                EpsBlock::Dense(m) => m.len() * std::mem::size_of::<f64>(),
                EpsBlock::Diag { coeff, .. } => {
                    coeff.len() * (std::mem::size_of::<f64>() + std::mem::size_of::<usize>())
                }
                EpsBlock::DenseF32 { data, .. } => data.len() * std::mem::size_of::<f32>(),
                EpsBlock::DiagF32 { coeff, .. } => {
                    coeff.len() * (std::mem::size_of::<f32>() + std::mem::size_of::<u32>())
                }
            })
            .sum()
    }

    /// Logical entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.n_vars && c < self.width, "eps index out of range");
        for seg in &self.segments {
            if c < seg.offset {
                break;
            }
            if c < seg.end() {
                return match &seg.block {
                    EpsBlock::Dense(m) => m.at(r, c - seg.offset),
                    EpsBlock::Diag { var_for_col, coeff } => {
                        let s = c - seg.offset;
                        if var_for_col[s] == r {
                            coeff[s]
                        } else {
                            0.0
                        }
                    }
                    EpsBlock::DenseF32 { cols, data } => data[r * cols + (c - seg.offset)] as f64,
                    EpsBlock::DiagF32 { var_for_col, coeff } => {
                        let s = c - seg.offset;
                        if var_for_col[s] as usize == r {
                            coeff[s] as f64
                        } else {
                            0.0
                        }
                    }
                };
            }
        }
        0.0
    }

    /// Writes the full logical row `k` into `out` (`out.len() == width`),
    /// overwriting all of it.
    pub fn write_row_into(&self, k: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.width, "row buffer width mismatch");
        out.fill(0.0);
        for seg in &self.segments {
            match &seg.block {
                EpsBlock::Dense(m) => {
                    out[seg.offset..seg.end()].copy_from_slice(m.row(k));
                }
                EpsBlock::Diag { var_for_col, coeff } => {
                    for (s, (&v, &c)) in var_for_col.iter().zip(coeff).enumerate() {
                        if v == k {
                            out[seg.offset + s] = c;
                        }
                    }
                }
                EpsBlock::DenseF32 { cols, data } => {
                    let src = &data[k * cols..(k + 1) * cols];
                    for (o, &x) in out[seg.offset..seg.end()].iter_mut().zip(src) {
                        *o = x as f64;
                    }
                }
                EpsBlock::DiagF32 { var_for_col, coeff } => {
                    for (s, (&v, &c)) in var_for_col.iter().zip(coeff).enumerate() {
                        if v as usize == k {
                            out[seg.offset + s] = c as f64;
                        }
                    }
                }
            }
        }
    }

    /// The full logical row `k` as an owned vector.
    pub fn row(&self, k: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.width];
        self.write_row_into(k, &mut out);
        out
    }

    /// Materializes the full logical `n_vars × width` matrix.
    pub fn to_matrix(&self) -> Matrix {
        let mut dense = Matrix::zeros(self.n_vars, self.width);
        for seg in &self.segments {
            scatter_segment(&mut dense, seg);
        }
        dense
    }

    /// Materializes rows `r0..r1`, zero-padded to `pad_width` columns, into
    /// an arena-backed matrix. Return the buffer with
    /// `deept_tensor::arena::give(m.into_vec())` when done.
    ///
    /// # Panics
    ///
    /// Panics if the row range is invalid or `pad_width < width`.
    pub fn rows_dense_scratch(&self, r0: usize, r1: usize, pad_width: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.n_vars, "row range out of range");
        assert!(pad_width >= self.width, "pad below logical width");
        let rows = r1 - r0;
        let buf = arena::take_zeroed(rows * pad_width);
        let mut out = Matrix::from_vec(rows, pad_width, buf).expect("sized scratch");
        for seg in &self.segments {
            match &seg.block {
                EpsBlock::Dense(m) => {
                    for r in r0..r1 {
                        out.row_mut(r - r0)[seg.offset..seg.end()].copy_from_slice(m.row(r));
                    }
                }
                EpsBlock::Diag { var_for_col, coeff } => {
                    for (s, (&v, &c)) in var_for_col.iter().zip(coeff).enumerate() {
                        if v >= r0 && v < r1 {
                            out.row_mut(v - r0)[seg.offset + s] = c;
                        }
                    }
                }
                EpsBlock::DenseF32 { cols, data } => {
                    for r in r0..r1 {
                        let src = &data[r * cols..(r + 1) * cols];
                        let dst = &mut out.row_mut(r - r0)[seg.offset..seg.end()];
                        for (d, &x) in dst.iter_mut().zip(src) {
                            *d = x as f64;
                        }
                    }
                }
                EpsBlock::DiagF32 { var_for_col, coeff } => {
                    for (s, (&v, &c)) in var_for_col.iter().zip(coeff).enumerate() {
                        let v = v as usize;
                        if v >= r0 && v < r1 {
                            out.row_mut(v - r0)[seg.offset + s] = c as f64;
                        }
                    }
                }
            }
        }
        out
    }

    /// `true` if any stored coefficient is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.segments.iter().any(|seg| match &seg.block {
            EpsBlock::Dense(m) => m.has_non_finite(),
            EpsBlock::Diag { coeff, .. } => coeff.iter().any(|x| !x.is_finite()),
            EpsBlock::DenseF32 { data, .. } => data.iter().any(|x| !x.is_finite()),
            EpsBlock::DiagF32 { coeff, .. } => coeff.iter().any(|x| !x.is_finite()),
        })
    }

    /// `true` if any block is `f32`-compressed.
    pub fn has_f32(&self) -> bool {
        self.segments.iter().any(|s| s.block.is_f32())
    }

    /// Exact `f64` promotion of every `f32` block (`f32 → f64` is lossless,
    /// so this is value-preserving, not a rounding step). Row-mixing and
    /// value-mutating ops that only have `f64` block arms run through this
    /// pre-pass; the store is re-compressed at the next fresh-symbol append
    /// site if `DEEPT_PREC=f32` is still active.
    fn promoted(&self) -> Self {
        let mut out = self.clone();
        for seg in &mut out.segments {
            match &seg.block {
                EpsBlock::DenseF32 { cols, data } => {
                    let m = Matrix::from_vec(
                        self.n_vars,
                        *cols,
                        data.iter().map(|&x| x as f64).collect(),
                    )
                    .expect("f32 block payload is n_vars * cols");
                    seg.block = EpsBlock::Dense(m);
                }
                EpsBlock::DiagF32 { var_for_col, coeff } => {
                    seg.block = EpsBlock::Diag {
                        var_for_col: var_for_col.iter().map(|&v| v as usize).collect(),
                        coeff: coeff.iter().map(|&c| c as f64).collect(),
                    };
                }
                EpsBlock::Dense(_) | EpsBlock::Diag { .. } => {}
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Norm and score scans — O(nnz), bitwise equal to the dense scans
    // ------------------------------------------------------------------

    /// ℓ1 norm of row `k`: one sequential accumulator over the row's
    /// stored entries in ascending column order (structural zeros are
    /// bitwise no-ops).
    pub fn row_l1(&self, k: usize) -> f64 {
        let mut acc = 0.0;
        let mut f32_terms = 0usize;
        for seg in &self.segments {
            match &seg.block {
                EpsBlock::Dense(m) => {
                    for x in m.row(k) {
                        acc += x.abs();
                    }
                }
                EpsBlock::Diag { var_for_col, coeff } => {
                    for (&v, &c) in var_for_col.iter().zip(coeff) {
                        if v == k {
                            acc += c.abs();
                        }
                    }
                }
                EpsBlock::DenseF32 { cols, data } => {
                    for &x in &data[k * cols..(k + 1) * cols] {
                        acc += (x as f64).abs();
                    }
                    f32_terms += cols;
                }
                EpsBlock::DiagF32 { var_for_col, coeff } => {
                    for (&v, &c) in var_for_col.iter().zip(coeff) {
                        if v as usize == k {
                            acc += (c as f64).abs();
                            f32_terms += 1;
                        }
                    }
                }
            }
        }
        widen_up(acc, f32_terms)
    }

    /// ℓ1 norm of every row at once. Diagonal blocks contribute by column
    /// scatter, so the cost is `O(nnz)`, and per row the additions happen
    /// in the same ascending-column order as [`EpsStore::row_l1`].
    pub fn row_l1_all(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_vars];
        let mut f32_terms = vec![0usize; self.n_vars];
        let simd =
            deept_tensor::parallel::kernel_mode() == deept_tensor::parallel::KernelMode::Simd;
        if simd {
            deept_tensor::simd::note_dispatch();
        }
        for seg in &self.segments {
            match &seg.block {
                EpsBlock::Dense(m) => {
                    if simd {
                        // Lockstep quads: each row's chain continues in
                        // ascending column order inside its own lane, so
                        // the result is bitwise the row-at-a-time scan
                        // below while retiring four latency chains at once.
                        let n = self.n_vars;
                        let mut r0 = 0;
                        while r0 + 4 <= n {
                            let mut quad = [acc[r0], acc[r0 + 1], acc[r0 + 2], acc[r0 + 3]];
                            deept_tensor::simd::l1_rows4(
                                &mut quad,
                                [m.row(r0), m.row(r0 + 1), m.row(r0 + 2), m.row(r0 + 3)],
                            );
                            acc[r0..r0 + 4].copy_from_slice(&quad);
                            r0 += 4;
                        }
                        for (r, a) in acc.iter_mut().enumerate().take(n).skip(r0) {
                            for x in m.row(r) {
                                *a += x.abs();
                            }
                        }
                    } else {
                        for (a, row) in acc.iter_mut().zip(m.rows_iter()) {
                            for x in row {
                                *a += x.abs();
                            }
                        }
                    }
                }
                EpsBlock::Diag { var_for_col, coeff } => {
                    for (&v, &c) in var_for_col.iter().zip(coeff) {
                        acc[v] += c.abs();
                    }
                }
                EpsBlock::DenseF32 { cols, data } => {
                    for (r, a) in acc.iter_mut().enumerate() {
                        for &x in &data[r * cols..(r + 1) * cols] {
                            *a += (x as f64).abs();
                        }
                    }
                    for t in f32_terms.iter_mut() {
                        *t += cols;
                    }
                }
                EpsBlock::DiagF32 { var_for_col, coeff } => {
                    for (&v, &c) in var_for_col.iter().zip(coeff) {
                        acc[v as usize] += (c as f64).abs();
                        f32_terms[v as usize] += 1;
                    }
                }
            }
        }
        for (a, &t) in acc.iter_mut().zip(&f32_terms) {
            *a = widen_up(*a, t);
        }
        acc
    }

    /// Per-column sum of absolute values (the reduction influence score).
    ///
    /// The score only *ranks* columns for reduction — it never enters a
    /// bound — so the dense scan may run the vectorized `abs_accumulate`
    /// kernel under `DEEPT_KERNEL=simd` and `f32` contributions are not
    /// outward-widened.
    pub fn col_abs_sums(&self) -> Vec<f64> {
        let simd =
            deept_tensor::parallel::kernel_mode() == deept_tensor::parallel::KernelMode::Simd;
        if simd
            && self
                .segments
                .iter()
                .any(|s| matches!(s.block, EpsBlock::Dense(_)))
        {
            deept_tensor::simd::note_dispatch();
        }
        let mut out = vec![0.0; self.width];
        for seg in &self.segments {
            match &seg.block {
                EpsBlock::Dense(m) => {
                    for row in m.rows_iter() {
                        if simd {
                            deept_tensor::simd::abs_accumulate(
                                &mut out[seg.offset..seg.end()],
                                row,
                            );
                        } else {
                            for (o, &x) in out[seg.offset..seg.end()].iter_mut().zip(row) {
                                *o += x.abs();
                            }
                        }
                    }
                }
                EpsBlock::Diag { coeff, .. } => {
                    for (o, &c) in out[seg.offset..seg.end()].iter_mut().zip(coeff) {
                        *o += c.abs();
                    }
                }
                EpsBlock::DenseF32 { cols, data } => {
                    for row in data.chunks_exact((*cols).max(1)) {
                        for (o, &x) in out[seg.offset..seg.end()].iter_mut().zip(row) {
                            *o += (x as f64).abs();
                        }
                    }
                }
                EpsBlock::DiagF32 { coeff, .. } => {
                    for (o, &c) in out[seg.offset..seg.end()].iter_mut().zip(coeff) {
                        *o += (c as f64).abs();
                    }
                }
            }
        }
        out
    }

    /// Per-row sum of `|entry|` over the column subset `cols` (strictly
    /// ascending), in ascending column order.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is not strictly ascending or out of range.
    pub fn row_abs_sums_selected(&self, cols: &[usize]) -> Vec<f64> {
        assert_ascending(cols, self.width);
        let mut acc = vec![0.0; self.n_vars];
        let mut f32_terms = vec![0usize; self.n_vars];
        for seg in &self.segments {
            let (lo, hi) = idx_overlap(cols, seg.offset, seg.end());
            if lo == hi {
                continue;
            }
            match &seg.block {
                EpsBlock::Dense(m) => {
                    for (a, row) in acc.iter_mut().zip(m.rows_iter()) {
                        for &c in &cols[lo..hi] {
                            *a += row[c - seg.offset].abs();
                        }
                    }
                }
                EpsBlock::Diag { var_for_col, coeff } => {
                    for &c in &cols[lo..hi] {
                        let s = c - seg.offset;
                        acc[var_for_col[s]] += coeff[s].abs();
                    }
                }
                EpsBlock::DenseF32 { cols: bw, data } => {
                    for (r, a) in acc.iter_mut().enumerate() {
                        let row = &data[r * bw..(r + 1) * bw];
                        for &c in &cols[lo..hi] {
                            *a += (row[c - seg.offset] as f64).abs();
                        }
                    }
                    for t in f32_terms.iter_mut() {
                        *t += hi - lo;
                    }
                }
                EpsBlock::DiagF32 { var_for_col, coeff } => {
                    for &c in &cols[lo..hi] {
                        let s = c - seg.offset;
                        let v = var_for_col[s] as usize;
                        acc[v] += (coeff[s] as f64).abs();
                        f32_terms[v] += 1;
                    }
                }
            }
        }
        for (a, &t) in acc.iter_mut().zip(&f32_terms) {
            *a = widen_up(*a, t);
        }
        acc
    }

    // ------------------------------------------------------------------
    // Structure-preserving (column-local) operations
    // ------------------------------------------------------------------

    /// Extends the logical width with structural zero columns (free in
    /// blocked mode; an in-place [`Matrix::grow_cols`] in dense mode).
    ///
    /// # Panics
    ///
    /// Panics if `width < self.width()`.
    pub fn pad_to(&mut self, width: usize) {
        assert!(
            self.width <= width,
            "pad_eps would truncate ({} > {width})",
            self.width
        );
        self.width = width;
        self.normalize();
    }

    /// Appends fresh diagonal symbols at the current width: new column `s`
    /// has `coeff[s]` in row `var_for_col[s]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or a row is out of range.
    pub fn append_diag(&mut self, var_for_col: &[usize], coeff: &[f64]) {
        assert_eq!(
            var_for_col.len(),
            coeff.len(),
            "diag append length mismatch"
        );
        if var_for_col.is_empty() {
            return;
        }
        for &v in var_for_col {
            assert!(v < self.n_vars, "diag row {v} out of range");
        }
        let block = if f32_active() {
            // Fresh symbols are single-use: each new column only widens its
            // own row's interval, so rounding the coefficient *away from
            // zero* over-approximates the f64 append it replaces.
            assert!(
                self.n_vars <= u32::MAX as usize,
                "f32 diag var index overflow"
            );
            EpsBlock::DiagF32 {
                var_for_col: var_for_col.iter().map(|&v| v as u32).collect(),
                coeff: coeff.iter().map(|&c| round_away_f32(c)).collect(),
            }
        } else {
            EpsBlock::Diag {
                var_for_col: var_for_col.to_vec(),
                coeff: coeff.to_vec(),
            }
        };
        self.segments.push(EpsSegment {
            offset: self.width,
            block,
        });
        self.width += var_for_col.len();
        self.normalize();
    }

    /// Clone with every segment shifted `prefix` columns to the right
    /// (structural zero prefix), used to lift a store into a wider symbol
    /// layout whose first `prefix` columns it does not touch.
    pub fn lifted(&self, prefix: usize) -> Self {
        let mut out = self.clone();
        out.width += prefix;
        for seg in &mut out.segments {
            seg.offset += prefix;
        }
        out.normalize();
        out
    }

    /// Every coefficient scaled by `s`.
    ///
    /// Like every value-mutating op, `f32` blocks are exactly promoted to
    /// `f64` first: the scaled products are generally not `f32`-representable
    /// and per-entry re-rounding of *shared* symbols would be unsound.
    pub fn scale(&self, s: f64) -> Self {
        if self.has_f32() {
            return self.promoted().scale(s);
        }
        let mut out = self.clone();
        for seg in &mut out.segments {
            match &mut seg.block {
                EpsBlock::Dense(m) => *m = m.scale(s),
                EpsBlock::Diag { coeff, .. } => {
                    for c in coeff {
                        *c *= s;
                    }
                }
                EpsBlock::DenseF32 { .. } | EpsBlock::DiagF32 { .. } => {
                    unreachable!("f32 blocks are promoted before mutation")
                }
            }
        }
        out
    }

    /// Row `k` scaled by `w[k]` (unconditional multiply, like the dense
    /// `γ`-scaling loop).
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != n_vars`.
    pub fn mul_rows(&self, w: &[f64]) -> Self {
        assert_eq!(w.len(), self.n_vars, "row weight length mismatch");
        if self.has_f32() {
            return self.promoted().mul_rows(w);
        }
        let mut out = self.clone();
        for seg in &mut out.segments {
            match &mut seg.block {
                EpsBlock::Dense(m) => {
                    for (k, &wk) in w.iter().enumerate() {
                        for x in m.row_mut(k) {
                            *x *= wk;
                        }
                    }
                }
                EpsBlock::Diag { var_for_col, coeff } => {
                    for (&v, c) in var_for_col.iter().zip(coeff) {
                        *c *= w[v];
                    }
                }
                EpsBlock::DenseF32 { .. } | EpsBlock::DiagF32 { .. } => {
                    unreachable!("f32 blocks are promoted before mutation")
                }
            }
        }
        out
    }

    /// Row `k` scaled by `lambda[k]`, with `lambda[k] == 0.0` producing an
    /// exactly-zero row (never `0 · ∞ = NaN`) — the guard the element-wise
    /// relaxations rely on for poisoned inputs.
    ///
    /// # Panics
    ///
    /// Panics if `lambda.len() != n_vars`.
    pub fn scale_rows_guarded(&self, lambda: &[f64]) -> Self {
        assert_eq!(lambda.len(), self.n_vars, "lambda length mismatch");
        if self.has_f32() {
            return self.promoted().scale_rows_guarded(lambda);
        }
        let mut out = self.clone();
        for seg in &mut out.segments {
            match &mut seg.block {
                EpsBlock::Dense(m) => {
                    for (k, &l) in lambda.iter().enumerate() {
                        let row = m.row_mut(k);
                        if l == 0.0 {
                            row.fill(0.0);
                        } else {
                            for x in row {
                                *x *= l;
                            }
                        }
                    }
                }
                EpsBlock::Diag { var_for_col, coeff } => {
                    for (&v, c) in var_for_col.iter().zip(coeff) {
                        let l = lambda[v];
                        *c = if l == 0.0 { 0.0 } else { l * *c };
                    }
                }
                EpsBlock::DenseF32 { .. } | EpsBlock::DiagF32 { .. } => {
                    unreachable!("f32 blocks are promoted before mutation")
                }
            }
        }
        out
    }

    /// Keeps the columns listed in `idx` (strictly ascending): output
    /// column `j` is input column `idx[j]`. Blocks are subset in place —
    /// a `Diag` block stays `Diag`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not strictly ascending or out of range.
    pub fn select_cols(&self, idx: &[usize]) -> Self {
        assert_ascending(idx, self.width);
        let mut segments = Vec::new();
        for seg in &self.segments {
            let (lo, hi) = idx_overlap(idx, seg.offset, seg.end());
            if lo == hi {
                continue;
            }
            let block = match &seg.block {
                EpsBlock::Dense(m) => {
                    let local: Vec<usize> = idx[lo..hi].iter().map(|&c| c - seg.offset).collect();
                    EpsBlock::Dense(m.select_cols(&local))
                }
                EpsBlock::Diag { var_for_col, coeff } => {
                    let mut vs = Vec::with_capacity(hi - lo);
                    let mut cs = Vec::with_capacity(hi - lo);
                    for &c in &idx[lo..hi] {
                        vs.push(var_for_col[c - seg.offset]);
                        cs.push(coeff[c - seg.offset]);
                    }
                    EpsBlock::Diag {
                        var_for_col: vs,
                        coeff: cs,
                    }
                }
                EpsBlock::DenseF32 { cols, data } => {
                    let local: Vec<usize> = idx[lo..hi].iter().map(|&c| c - seg.offset).collect();
                    let mut sel = Vec::with_capacity(self.n_vars * local.len());
                    for r in 0..self.n_vars {
                        let row = &data[r * cols..(r + 1) * cols];
                        sel.extend(local.iter().map(|&c| row[c]));
                    }
                    EpsBlock::DenseF32 {
                        cols: local.len(),
                        data: sel,
                    }
                }
                EpsBlock::DiagF32 { var_for_col, coeff } => {
                    let mut vs = Vec::with_capacity(hi - lo);
                    let mut cs = Vec::with_capacity(hi - lo);
                    for &c in &idx[lo..hi] {
                        vs.push(var_for_col[c - seg.offset]);
                        cs.push(coeff[c - seg.offset]);
                    }
                    EpsBlock::DiagF32 {
                        var_for_col: vs,
                        coeff: cs,
                    }
                }
            };
            segments.push(EpsSegment { offset: lo, block });
        }
        let mut out = EpsStore {
            n_vars: self.n_vars,
            width: idx.len(),
            segments,
        };
        out.normalize();
        out
    }

    /// Element-wise sum. Widths may differ (the narrower store is treated
    /// as structurally zero-padded). Coincident segments combine per block
    /// (`Dense+Dense` matrix add, matching `Diag+Diag` coefficient add);
    /// disjoint segments are cloned; partially overlapping runs are
    /// densified over their joint span — never asymptotically worse than
    /// the dense add.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.n_vars, other.n_vars, "eps add row mismatch");
        if self.has_f32() {
            return self.promoted().add(other);
        }
        if other.has_f32() {
            return self.add(&other.promoted());
        }
        let width = self.width.max(other.width);
        // Merge both segment lists by offset, grouping overlapping runs.
        let mut merged: Vec<(&EpsSegment, bool)> = self
            .segments
            .iter()
            .map(|s| (s, false))
            .chain(other.segments.iter().map(|s| (s, true)))
            .collect();
        merged.sort_by_key(|(s, _)| s.offset);
        let mut segments: Vec<EpsSegment> = Vec::new();
        let mut cluster: Vec<(&EpsSegment, bool)> = Vec::new();
        let mut cluster_end = 0usize;
        for (seg, side) in merged {
            if !cluster.is_empty() && seg.offset >= cluster_end {
                segments.push(combine_cluster(self.n_vars, &cluster, cluster_end));
                cluster.clear();
            }
            cluster_end = if cluster.is_empty() {
                seg.end()
            } else {
                cluster_end.max(seg.end())
            };
            cluster.push((seg, side));
        }
        if !cluster.is_empty() {
            segments.push(combine_cluster(self.n_vars, &cluster, cluster_end));
        }
        let mut out = EpsStore {
            n_vars: self.n_vars,
            width,
            segments,
        };
        out.normalize();
        out
    }

    /// Permutes/duplicates variable rows: output row `r` is input row
    /// `perm[r]`. A `Diag` block survives as long as no variable it
    /// references is duplicated by `perm`; otherwise it densifies.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn permute_rows(&self, perm: &[usize]) -> Self {
        for &v in perm {
            assert!(v < self.n_vars, "permutation index out of range");
        }
        if self.has_f32() {
            return self.promoted().permute_rows(perm);
        }
        // Occurrence lists: where does each old variable land?
        let mut first = vec![usize::MAX; self.n_vars];
        let mut duplicated = vec![false; self.n_vars];
        for (r, &v) in perm.iter().enumerate() {
            if first[v] == usize::MAX {
                first[v] = r;
            } else {
                duplicated[v] = true;
            }
        }
        let segments = self
            .segments
            .iter()
            .map(|seg| {
                let block = match &seg.block {
                    EpsBlock::Dense(m) => {
                        let mut out = Matrix::zeros(perm.len(), m.cols());
                        for (r, &src) in perm.iter().enumerate() {
                            out.row_mut(r).copy_from_slice(m.row(src));
                        }
                        EpsBlock::Dense(out)
                    }
                    EpsBlock::Diag { var_for_col, coeff } => {
                        if var_for_col.iter().any(|&v| duplicated[v]) {
                            // A referenced row appears more than once: the
                            // column is no longer single-nonzero.
                            note_densified();
                            let mut out = Matrix::zeros(perm.len(), coeff.len());
                            for (s, (&v, &c)) in var_for_col.iter().zip(coeff).enumerate() {
                                for (r, &p) in perm.iter().enumerate() {
                                    if p == v {
                                        out.set(r, s, c);
                                    }
                                }
                            }
                            EpsBlock::Dense(out)
                        } else {
                            let mut vs = Vec::with_capacity(var_for_col.len());
                            let mut cs = Vec::with_capacity(coeff.len());
                            for (&v, &c) in var_for_col.iter().zip(coeff) {
                                if first[v] == usize::MAX {
                                    // Variable dropped by the permutation:
                                    // the column becomes structurally zero.
                                    vs.push(0);
                                    cs.push(0.0);
                                } else {
                                    vs.push(first[v]);
                                    cs.push(c);
                                }
                            }
                            EpsBlock::Diag {
                                var_for_col: vs,
                                coeff: cs,
                            }
                        }
                    }
                    EpsBlock::DenseF32 { .. } | EpsBlock::DiagF32 { .. } => {
                        unreachable!("f32 blocks are promoted before row permutation")
                    }
                };
                EpsSegment {
                    offset: seg.offset,
                    block,
                }
            })
            .collect();
        let mut out = EpsStore {
            n_vars: perm.len(),
            width: self.width,
            segments,
        };
        out.normalize();
        out
    }

    /// Vertically stacks stores (row concatenation), zero-padding every
    /// part to the widest. The result is a single dense block: row
    /// concatenation interleaves the parts' generator rows, which no
    /// per-part block layout can represent.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn vstack(parts: &[&EpsStore]) -> Self {
        assert!(!parts.is_empty(), "vstack of no parts");
        let width = parts.iter().map(|p| p.width).max().unwrap_or(0);
        let n_vars: usize = parts.iter().map(|p| p.n_vars).sum();
        let mut dense = Matrix::zeros(n_vars, width);
        let mut r0 = 0;
        for part in parts {
            for seg in &part.segments {
                match &seg.block {
                    EpsBlock::Dense(m) => {
                        for r in 0..part.n_vars {
                            dense.row_mut(r0 + r)[seg.offset..seg.end()].copy_from_slice(m.row(r));
                        }
                    }
                    EpsBlock::Diag { var_for_col, coeff } => {
                        for (s, (&v, &c)) in var_for_col.iter().zip(coeff).enumerate() {
                            dense.set(r0 + v, seg.offset + s, c);
                        }
                    }
                    EpsBlock::DenseF32 { cols, data } => {
                        for r in 0..part.n_vars {
                            let src = &data[r * cols..(r + 1) * cols];
                            let dst = &mut dense.row_mut(r0 + r)[seg.offset..seg.end()];
                            for (d, &x) in dst.iter_mut().zip(src) {
                                *d = x as f64;
                            }
                        }
                    }
                    EpsBlock::DiagF32 { var_for_col, coeff } => {
                        for (s, (&v, &c)) in var_for_col.iter().zip(coeff).enumerate() {
                            dense.set(r0 + v as usize, seg.offset + s, c as f64);
                        }
                    }
                }
            }
            r0 += part.n_vars;
        }
        EpsStore::from_matrix(dense)
    }

    // ------------------------------------------------------------------
    // Row-mixing linear maps — the only densification sites
    // ------------------------------------------------------------------

    /// The ε half of `matmul_right`: variables form a logical
    /// `rows × cols` matrix, right-multiplied by `w` (`cols × d`). Dense
    /// blocks run the blocked kernel per segment; `Diag` blocks densify to
    /// their own columns, each column receiving the `d` products the dense
    /// kernel's zero-skip would compute.
    pub fn matmul_right_map(&self, w: &Matrix, rows: usize, cols: usize) -> Self {
        debug_assert_eq!(rows * cols, self.n_vars);
        if self.has_f32() {
            return self.promoted().matmul_right_map(w, rows, cols);
        }
        let d = w.cols();
        // One full-width dense output: segment results land in their own
        // column ranges (gaps stay structurally zero). Emitting a single
        // block keeps downstream ops from paying per-segment dispatch on
        // stores that row-mixing has already made dense anyway.
        let mut out = Matrix::zeros(rows * d, self.width);
        for seg in &self.segments {
            match &seg.block {
                EpsBlock::Dense(m) => {
                    let e = m.cols();
                    for i in 0..rows {
                        let block = m.slice_rows(i * cols, (i + 1) * cols);
                        let mapped = w.transpose_a_matmul(&block); // (d × e)
                        for r in 0..d {
                            out.row_mut(i * d + r)[seg.offset..seg.offset + e]
                                .copy_from_slice(mapped.row(r));
                        }
                    }
                }
                EpsBlock::Diag { var_for_col, coeff } => {
                    note_densified();
                    for (s, (&v, &c)) in var_for_col.iter().zip(coeff).enumerate() {
                        let (i, j) = (v / cols, v % cols);
                        for r in 0..d {
                            out.set(i * d + r, seg.offset + s, w.at(j, r) * c);
                        }
                    }
                }
                EpsBlock::DenseF32 { .. } | EpsBlock::DiagF32 { .. } => {
                    unreachable!("f32 blocks are promoted before row-mixing maps")
                }
            }
        }
        let mut out = EpsStore {
            n_vars: rows * d,
            width: self.width,
            segments: vec![EpsSegment {
                offset: 0,
                block: EpsBlock::Dense(out),
            }],
        };
        out.normalize();
        out
    }

    /// The ε half of `matmul_left`: logical `rows × cols` variables
    /// left-multiplied by `p_mat` (`m × rows`).
    pub fn matmul_left_map(&self, p_mat: &Matrix, rows: usize, cols: usize) -> Self {
        debug_assert_eq!(rows * cols, self.n_vars);
        if self.has_f32() {
            return self.promoted().matmul_left_map(p_mat, rows, cols);
        }
        let m_rows = p_mat.rows();
        let mut out = Matrix::zeros(m_rows * cols, self.width);
        for seg in &self.segments {
            match &seg.block {
                EpsBlock::Dense(m) => {
                    for mi in 0..m_rows {
                        for i in 0..rows {
                            let s = p_mat.at(mi, i);
                            if s == 0.0 {
                                continue;
                            }
                            for j in 0..cols {
                                let src = m.row(i * cols + j);
                                let dst = &mut out.row_mut(mi * cols + j)[seg.offset..seg.end()];
                                for (d, &x) in dst.iter_mut().zip(src) {
                                    *d += s * x;
                                }
                            }
                        }
                    }
                }
                EpsBlock::Diag { var_for_col, coeff } => {
                    note_densified();
                    for (s, (&v, &c)) in var_for_col.iter().zip(coeff).enumerate() {
                        let (i, j) = (v / cols, v % cols);
                        for mi in 0..m_rows {
                            let p = p_mat.at(mi, i);
                            if p == 0.0 {
                                continue;
                            }
                            out.set(mi * cols + j, seg.offset + s, p * c);
                        }
                    }
                }
                EpsBlock::DenseF32 { .. } | EpsBlock::DiagF32 { .. } => {
                    unreachable!("f32 blocks are promoted before row-mixing maps")
                }
            }
        }
        let mut out = EpsStore {
            n_vars: m_rows * cols,
            width: self.width,
            segments: vec![EpsSegment {
                offset: 0,
                block: EpsBlock::Dense(out),
            }],
        };
        out.normalize();
        out
    }

    /// The ε half of `linear_vars`: an arbitrary linear map `l`
    /// (`n_out × n_vars`) of the flat variable vector.
    pub fn linear_map(&self, l: &Matrix) -> Self {
        debug_assert_eq!(l.cols(), self.n_vars);
        if self.has_f32() {
            return self.promoted().linear_map(l);
        }
        let n_out = l.rows();
        let mut out = Matrix::zeros(n_out, self.width);
        for seg in &self.segments {
            match &seg.block {
                EpsBlock::Dense(m) => {
                    let mapped = l.matmul(m);
                    for r in 0..n_out {
                        out.row_mut(r)[seg.offset..seg.end()].copy_from_slice(mapped.row(r));
                    }
                }
                EpsBlock::Diag { var_for_col, coeff } => {
                    note_densified();
                    for (s, (&v, &c)) in var_for_col.iter().zip(coeff).enumerate() {
                        for i in 0..n_out {
                            out.set(i, seg.offset + s, l.at(i, v) * c);
                        }
                    }
                }
                EpsBlock::DenseF32 { .. } | EpsBlock::DiagF32 { .. } => {
                    unreachable!("f32 blocks are promoted before row-mixing maps")
                }
            }
        }
        let mut out = EpsStore {
            n_vars: n_out,
            width: self.width,
            segments: vec![EpsSegment {
                offset: 0,
                block: EpsBlock::Dense(out),
            }],
        };
        out.normalize();
        out
    }

    // ------------------------------------------------------------------
    // f32 storage compression (`DEEPT_PREC=f32`)
    // ------------------------------------------------------------------

    /// Compresses every `f64` block to `f32` storage, returning the
    /// compressed store and a per-row ℓ1 **slack** bound on the total
    /// rounding loss.
    ///
    /// Coefficients are rounded to *nearest* — rounding shared-symbol
    /// entries away from zero is unsound (two rows referencing the same ε
    /// cannot both be widened independently), and existing diagonal
    /// symbols may be positionally aliased with sibling zonotopes for the
    /// same reason. Instead the per-entry error `|x − f64(f32(x))|` is
    /// accumulated upward (one-ulp padding per addition) into the row's
    /// slack, which the caller must attach to a **fresh** symbol for that
    /// row; `x ∈ f64(f32(x)) ± slack` makes the compressed store plus
    /// slack symbol a sound enclosure of the original row. Values outside
    /// `f32` range saturate to `±∞` slack, poisoning the row (fail
    /// closed). Already-compressed blocks pass through with zero slack.
    pub fn compress_rows_f32(&self) -> (Self, Vec<f64>) {
        assert!(
            self.n_vars <= u32::MAX as usize,
            "f32 diag var index overflow"
        );
        let mut slack = vec![0.0f64; self.n_vars];
        let mut out = self.clone();
        for seg in &mut out.segments {
            match &seg.block {
                EpsBlock::Dense(m) => {
                    let cols = m.cols();
                    let mut data = Vec::with_capacity(m.rows() * cols);
                    for (r, row) in m.rows_iter().enumerate() {
                        for &x in row {
                            let c = x as f32;
                            if (c as f64) != x {
                                let err = (x - c as f64).abs().next_up();
                                slack[r] = add_up(slack[r], err);
                            }
                            data.push(c);
                        }
                    }
                    seg.block = EpsBlock::DenseF32 { cols, data };
                }
                EpsBlock::Diag { var_for_col, coeff } => {
                    let vs: Vec<u32> = var_for_col.iter().map(|&v| v as u32).collect();
                    let mut cs = Vec::with_capacity(coeff.len());
                    for (&v, &x) in var_for_col.iter().zip(coeff) {
                        let c = x as f32;
                        if (c as f64) != x {
                            let err = (x - c as f64).abs().next_up();
                            slack[v] = add_up(slack[v], err);
                        }
                        cs.push(c);
                    }
                    seg.block = EpsBlock::DiagF32 {
                        var_for_col: vs,
                        coeff: cs,
                    };
                }
                EpsBlock::DenseF32 { .. } | EpsBlock::DiagF32 { .. } => {}
            }
        }
        (out, slack)
    }
}

/// The `DEEPT_PREC=f32` hook for fresh-symbol append sites: compresses
/// `store` to `f32` and folds the per-row rounding slack into the fresh
/// coefficients about to be appended (`fresh[i]` gets `betas[i]`). Rows
/// that pick up slack without a fresh symbol of their own are given one.
/// A no-op (moves the inputs through) when `f32` storage is inactive.
pub(crate) fn compress_for_append(
    store: EpsStore,
    fresh: Vec<usize>,
    betas: Vec<f64>,
) -> (EpsStore, Vec<usize>, Vec<f64>) {
    if !f32_active() {
        return (store, fresh, betas);
    }
    let (store, slack) = store.compress_rows_f32();
    if slack.iter().all(|&s| s == 0.0) {
        return (store, fresh, betas);
    }
    let n = store.n_vars();
    let mut full = vec![0.0f64; n];
    for (i, &k) in fresh.iter().enumerate() {
        full[k] = betas[i];
    }
    for (k, &s) in slack.iter().enumerate() {
        if s != 0.0 {
            // Grow the coefficient's *magnitude* (its sign is meaningful
            // under ε–ε interaction, its magnitude is the row's interval
            // contribution). NaN/∞ slack flows through and fails closed.
            full[k] = if full[k] < 0.0 {
                -add_up(-full[k], s)
            } else {
                add_up(full[k], s)
            };
        }
    }
    let fresh: Vec<usize> = (0..n).filter(|&k| full[k] != 0.0).collect();
    let betas: Vec<f64> = fresh.iter().map(|&k| full[k]).collect();
    (store, fresh, betas)
}

/// Scatters one segment's content into the full dense matrix.
fn scatter_segment(dense: &mut Matrix, seg: &EpsSegment) {
    match &seg.block {
        EpsBlock::Dense(m) => {
            for r in 0..m.rows() {
                dense.row_mut(r)[seg.offset..seg.end()].copy_from_slice(m.row(r));
            }
        }
        EpsBlock::Diag { var_for_col, coeff } => {
            for (s, (&v, &c)) in var_for_col.iter().zip(coeff).enumerate() {
                dense.set(v, seg.offset + s, c);
            }
        }
        EpsBlock::DenseF32 { cols, data } => {
            for r in 0..dense.rows() {
                let src = &data[r * cols..(r + 1) * cols];
                let dst = &mut dense.row_mut(r)[seg.offset..seg.end()];
                for (d, &x) in dst.iter_mut().zip(src) {
                    *d = x as f64;
                }
            }
        }
        EpsBlock::DiagF32 { var_for_col, coeff } => {
            for (s, (&v, &c)) in var_for_col.iter().zip(coeff).enumerate() {
                dense.set(v as usize, seg.offset + s, c as f64);
            }
        }
    }
}

/// Combines a cluster of (possibly overlapping) segments from both sides
/// of an add into one output segment.
fn combine_cluster(n_vars: usize, cluster: &[(&EpsSegment, bool)], end: usize) -> EpsSegment {
    if let [(seg, _)] = cluster {
        return (*seg).clone();
    }
    if let [(a, sa), (b, sb)] = cluster {
        if sa != sb && a.offset == b.offset && a.block.cols() == b.block.cols() {
            match (&a.block, &b.block) {
                (EpsBlock::Dense(ma), EpsBlock::Dense(mb)) => {
                    return EpsSegment {
                        offset: a.offset,
                        block: EpsBlock::Dense(ma.add(mb)),
                    };
                }
                (
                    EpsBlock::Diag {
                        var_for_col: va,
                        coeff: ca,
                    },
                    EpsBlock::Diag {
                        var_for_col: vb,
                        coeff: cb,
                    },
                ) if va == vb => {
                    return EpsSegment {
                        offset: a.offset,
                        block: EpsBlock::Diag {
                            var_for_col: va.clone(),
                            coeff: ca.iter().zip(cb).map(|(&x, &y)| x + y).collect(),
                        },
                    };
                }
                _ => {}
            }
        }
    }
    // General overlap: densify the cluster span and accumulate both sides.
    let offset = cluster.iter().map(|(s, _)| s.offset).min().unwrap_or(0);
    let mut dense = Matrix::zeros(n_vars, end - offset);
    let mut add_seg = |seg: &EpsSegment| {
        let local = seg.offset - offset;
        match &seg.block {
            EpsBlock::Dense(m) => {
                for r in 0..m.rows() {
                    let dst = &mut dense.row_mut(r)[local..local + m.cols()];
                    for (d, &x) in dst.iter_mut().zip(m.row(r)) {
                        *d += x;
                    }
                }
            }
            EpsBlock::Diag { var_for_col, coeff } => {
                note_densified();
                for (s, (&v, &c)) in var_for_col.iter().zip(coeff).enumerate() {
                    *dense.at_mut(v, local + s) += c;
                }
            }
            EpsBlock::DenseF32 { .. } | EpsBlock::DiagF32 { .. } => {
                unreachable!("f32 blocks are promoted before add")
            }
        }
    };
    for (seg, side) in cluster {
        if !side {
            add_seg(seg);
        }
    }
    for (seg, side) in cluster {
        if *side {
            add_seg(seg);
        }
    }
    EpsSegment {
        offset,
        block: EpsBlock::Dense(dense),
    }
}

fn assert_ascending(idx: &[usize], width: usize) {
    for w in idx.windows(2) {
        assert!(w[0] < w[1], "column selection must be strictly ascending");
    }
    if let Some(&last) = idx.last() {
        assert!(last < width, "column selection out of range");
    }
}

/// Range `lo..hi` of positions in the ascending `idx` falling inside
/// `[start, end)`.
fn idx_overlap(idx: &[usize], start: usize, end: usize) -> (usize, usize) {
    let lo = idx.partition_point(|&c| c < start);
    let hi = idx.partition_point(|&c| c < end);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deept_tensor::parallel;

    /// A mixed store: dense block, gap, diag block, structural tail.
    fn mixed() -> EpsStore {
        let mut s =
            EpsStore::from_matrix(Matrix::from_rows(&[&[1.0, -2.0], &[0.0, 3.0], &[4.0, 0.0]]));
        s.pad_to(3); // one structural zero column
        s.append_diag(&[2, 0], &[5.0, -6.0]);
        s.pad_to(7); // structural tail
        s
    }

    fn mixed_dense() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, -2.0, 0.0, 0.0, -6.0, 0.0, 0.0],
            &[0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[4.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0],
        ])
    }

    #[test]
    fn layout_round_trips_and_logical_equality() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        let s = mixed();
        assert_eq!(s.to_matrix(), mixed_dense());
        assert_eq!(s.width(), 7);
        assert_eq!(s.at(0, 4), -6.0);
        assert_eq!(s.at(1, 4), 0.0);
        assert_eq!(s.at(2, 6), 0.0);
        assert_eq!(s.row(2), vec![4.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0]);
        // Blocked and dense stores with the same content are equal.
        let dense = EpsStore::from_matrix(mixed_dense());
        assert_eq!(s, dense);
        assert_eq!(s.num_blocks(), 2);
        assert_eq!(s.diag_cols(), 2);
        assert_eq!(s.dense_cols(), 2);
        assert!(s.resident_bytes() < dense.resident_bytes());
        set_force_dense(None);
    }

    #[test]
    fn dense_mode_normalizes_to_one_padded_block() {
        let _g = parallel::test_lock();
        set_force_dense(Some(true));
        let s = mixed();
        assert_eq!(s.num_blocks(), 1);
        assert_eq!(s.dense_cols(), 7);
        assert_eq!(s.diag_cols(), 0);
        assert_eq!(s.to_matrix(), mixed_dense());
        set_force_dense(None);
    }

    #[test]
    fn scans_match_dense_bitwise() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        let s = mixed();
        let d = mixed_dense();
        for k in 0..3 {
            assert_eq!(s.row_l1(k), deept_tensor::l1_norm(d.row(k)));
        }
        let all = s.row_l1_all();
        for (k, &norm) in all.iter().enumerate().take(3) {
            assert_eq!(norm, s.row_l1(k));
        }
        assert_eq!(s.col_abs_sums(), d.col_abs_sums());
        let sel = [0, 3, 4, 6];
        let by_row: Vec<f64> = (0..3)
            .map(|k| sel.iter().map(|&c| d.at(k, c).abs()).sum())
            .collect();
        assert_eq!(s.row_abs_sums_selected(&sel), by_row);
        set_force_dense(None);
    }

    #[test]
    fn column_local_ops_preserve_diag_blocks() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        let s = mixed();
        let scaled = s.scale(-2.0);
        assert_eq!(scaled.diag_cols(), 2);
        assert_eq!(scaled.to_matrix(), mixed_dense().scale(-2.0));
        let w = [2.0, 0.0, -1.0];
        let mul = s.mul_rows(&w);
        assert_eq!(mul.diag_cols(), 2);
        assert_eq!(mul.at(0, 4), -12.0);
        assert_eq!(mul.at(1, 1), 0.0);
        let guarded = s.scale_rows_guarded(&w);
        assert_eq!(guarded.at(2, 3), -5.0);
        assert_eq!(guarded.at(1, 1), 0.0);
        let sel = s.select_cols(&[1, 3, 4, 5]);
        assert_eq!(sel.width(), 4);
        assert_eq!(sel.diag_cols(), 2);
        assert_eq!(sel.to_matrix(), mixed_dense().select_cols(&[1, 3, 4, 5]));
        let lift = s.lifted(3);
        assert_eq!(lift.width(), 10);
        assert_eq!(lift.at(2, 6), 5.0);
        assert_eq!(lift.at(2, 0), 0.0);
        set_force_dense(None);
    }

    #[test]
    fn scale_rows_guarded_zeroes_poisoned_rows() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        let s = EpsStore::from_diag(2, &[0, 1], &[f64::INFINITY, 2.0]);
        let out = s.scale_rows_guarded(&[0.0, 3.0]);
        assert!(!out.has_non_finite(), "0 · ∞ must not become NaN");
        assert_eq!(out.at(1, 1), 6.0);
        set_force_dense(None);
    }

    #[test]
    fn add_merges_coincident_and_disjoint_segments_structurally() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        // Identical layouts: Dense+Dense and Diag+Diag stay structural.
        let a = mixed();
        let b = mixed().scale(0.5);
        let sum = a.add(&b);
        assert_eq!(sum.diag_cols(), 2);
        assert_eq!(
            sum.to_matrix(),
            mixed_dense().add(&mixed_dense().scale(0.5))
        );
        // Disjoint: a diag tail beyond the other operand's width is cloned.
        let mut tail = EpsStore::zeros(3, 7);
        tail.append_diag(&[1], &[9.0]);
        let sum2 = a.add(&tail);
        assert_eq!(sum2.width(), 8);
        assert_eq!(sum2.diag_cols(), 3);
        assert_eq!(sum2.at(1, 7), 9.0);
        assert_eq!(sum2.at(0, 4), -6.0);
        // Partial overlap densifies only the overlapping span.
        let wide = EpsStore::from_matrix(Matrix::zeros(3, 5).add(&{
            let mut m = Matrix::zeros(3, 5);
            m.set(0, 4, 1.0);
            m
        }));
        let sum3 = a.add(&wide);
        assert_eq!(sum3.at(0, 4), -5.0);
        assert_eq!(sum3.to_matrix().at(2, 3), 5.0);
        set_force_dense(None);
    }

    #[test]
    fn add_matches_dense_in_both_orders() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        let a = mixed();
        let mut b = EpsStore::from_diag(3, &[0, 1, 2], &[1.0, 2.0, 3.0]);
        b.pad_to(5);
        let want = {
            let mut bd = b.to_matrix();
            bd.grow_cols(7);
            mixed_dense().add(&bd)
        };
        assert_eq!(a.add(&b).to_matrix(), want);
        assert_eq!(b.add(&a).to_matrix(), want);
        set_force_dense(None);
    }

    #[test]
    fn permute_rows_keeps_diag_unless_duplicated() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        let s = mixed();
        let rev = s.permute_rows(&[2, 1, 0]);
        assert_eq!(rev.diag_cols(), 2);
        assert_eq!(rev.at(0, 3), 5.0);
        assert_eq!(rev.at(2, 4), -6.0);
        // Dropping a variable zeroes its column structurally.
        let dropped = s.permute_rows(&[1]);
        assert_eq!(dropped.to_matrix().row(0), mixed_dense().row(1));
        // Duplicating a referenced row forces densification.
        let dup = s.permute_rows(&[2, 2, 0]);
        assert_eq!(dup.diag_cols(), 0);
        assert_eq!(dup.at(0, 3), 5.0);
        assert_eq!(dup.at(1, 3), 5.0);
        assert_eq!(dup.at(2, 4), -6.0);
        set_force_dense(None);
    }

    #[test]
    fn row_mixing_maps_densify_lazily_and_match_dense_kernels() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        let s = mixed(); // 3 vars as a 3×1 logical matrix
        let before = snapshot();
        // Right-multiply by w (1×2): out var (i·2 + r) = w[0][r] · var i.
        let w = Matrix::from_rows(&[&[1.0, -1.0]]);
        let mut lift = Matrix::zeros(6, 3);
        for i in 0..3 {
            for r in 0..2 {
                lift.set(i * 2 + r, i, w.at(0, r));
            }
        }
        let right = s.matmul_right_map(&w, 3, 1);
        assert_eq!(right.n_vars(), 6);
        assert_eq!(right.to_matrix(), lift.matmul(&mixed_dense()));
        assert_eq!(right.diag_cols(), 0);
        let p = Matrix::from_rows(&[&[2.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let left = s.matmul_left_map(&p, 3, 1);
        assert_eq!(left.to_matrix(), p.matmul(&mixed_dense()));
        let l = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[0.5, 0.0, -0.5]]);
        let lin = s.linear_map(&l);
        assert_eq!(lin.to_matrix(), l.matmul(&mixed_dense()));
        let d = snapshot().densifications - before.densifications;
        assert!(d >= 3, "each map must record its diag densification: {d}");
        set_force_dense(None);
    }

    #[test]
    fn vstack_pads_and_stacks() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        let a = mixed(); // width 7
        let b = EpsStore::from_diag(2, &[0, 1], &[1.0, 2.0]); // width 2
        let v = EpsStore::vstack(&[&a, &b]);
        assert_eq!((v.n_vars(), v.width()), (5, 7));
        let mut bd = b.to_matrix();
        bd.grow_cols(7);
        assert_eq!(v.to_matrix(), mixed_dense().vstack(&bd));
        set_force_dense(None);
    }

    #[test]
    fn serde_round_trips_logically() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        let s = mixed();
        let value = s.to_value();
        let back = EpsStore::from_value(&value).expect("deserialize");
        assert_eq!(back, s);
        set_force_dense(None);
    }

    #[test]
    fn empty_and_zero_width_edges() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        let z = EpsStore::zeros(4, 0);
        assert_eq!(z.width(), 0);
        assert_eq!(z.row_l1(0), 0.0);
        assert_eq!(z.col_abs_sums(), Vec::<f64>::new());
        let sum = z.add(&z);
        assert_eq!(sum.width(), 0);
        let sel = z.select_cols(&[]);
        assert_eq!(sel.width(), 0);
        let zero_rows = EpsStore::from_matrix(Matrix::zeros(0, 3));
        assert_eq!(zero_rows.row_l1_all(), Vec::<f64>::new());
        let v = EpsStore::vstack(&[&zero_rows, &zero_rows]);
        assert_eq!((v.n_vars(), v.width()), (0, 3));
        // append_diag of nothing leaves the store untouched.
        let mut s = mixed();
        let w = s.width();
        s.append_diag(&[], &[]);
        assert_eq!(s.width(), w);
        set_force_dense(None);
    }

    #[test]
    #[should_panic(expected = "pad_eps would truncate")]
    fn pad_to_cannot_truncate() {
        let mut s = EpsStore::zeros(1, 3);
        s.pad_to(2);
    }

    #[test]
    fn force_dense_override_round_trips() {
        let _g = parallel::test_lock();
        set_force_dense(Some(true));
        assert!(force_dense());
        set_force_dense(Some(false));
        assert!(!force_dense());
        set_force_dense(None);
    }

    #[test]
    fn force_f32_override_round_trips() {
        let _g = parallel::test_lock();
        set_force_f32(Some(true));
        assert!(prec_f32());
        set_force_f32(Some(false));
        assert!(!prec_f32());
        set_force_f32(None);
    }

    #[test]
    fn round_away_f32_never_shrinks_magnitude() {
        for &x in &[
            0.1,
            -0.1,
            1.0 / 3.0,
            1e-300,
            -1e-300,
            2.5,
            0.0,
            1e300,
            -1e300,
        ] {
            let y = round_away_f32(x) as f64;
            assert!(y.abs() >= x.abs(), "|{y}| < |{x}|");
            assert_eq!(y.signum(), x.signum());
            // Within one f32 ulp of nearest.
            if x.abs() < f32::MAX as f64 {
                let near = x as f32;
                assert!(
                    (round_away_f32(x) == near)
                        || (round_away_f32(x) == near.next_up())
                        || (round_away_f32(x) == near.next_down())
                );
            }
        }
        assert_eq!(round_away_f32(1e300), f32::INFINITY);
    }

    #[test]
    fn compress_rows_f32_encloses_with_slack() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        let s = mixed(); // exact small integers: compresses losslessly
        let (c, slack) = s.compress_rows_f32();
        assert!(c.has_f32());
        assert!(slack.iter().all(|&x| x == 0.0));
        assert_eq!(c.to_matrix(), s.to_matrix());
        assert!(c.resident_bytes() < s.resident_bytes());
        // Inexact values: per-row |loss| must be covered by the slack.
        let lossy = EpsStore::from_matrix(Matrix::from_rows(&[&[0.1, 1.0 / 3.0], &[-0.7, 1e-200]]));
        let (cl, slack) = lossy.compress_rows_f32();
        for (r, &sl) in slack.iter().enumerate().take(2) {
            let loss: f64 = (0..2).map(|j| (lossy.at(r, j) - cl.at(r, j)).abs()).sum();
            assert!(loss <= sl, "row {r}: loss {loss} > slack {sl}");
            assert!(sl > 0.0);
        }
        // Promotion restores an exact-f64 store with identical values.
        let p = cl.promoted();
        assert!(!p.has_f32());
        assert_eq!(p.to_matrix(), cl.to_matrix());
        set_force_dense(None);
    }

    #[test]
    fn f32_append_rounds_away_and_scans_widen() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        set_force_f32(Some(true));
        let mut s = EpsStore::zeros(2, 0);
        s.append_diag(&[0, 1], &[0.1, -0.1]);
        assert!(s.has_f32());
        assert_eq!(s.diag_cols(), 2);
        assert_eq!(s.f32_cols(), 2);
        // Stored coefficient dominates the requested f64 magnitude.
        assert!(s.at(0, 0) >= 0.1);
        assert!(s.at(1, 1) <= -0.1);
        // Row scans dominate the exact promoted sums.
        assert!(s.row_l1(0) >= s.at(0, 0).abs());
        let all = s.row_l1_all();
        assert_eq!(all[0], s.row_l1(0));
        assert_eq!(all[1], s.row_l1(1));
        let sel = s.row_abs_sums_selected(&[0, 1]);
        assert_eq!(sel, all);
        set_force_f32(None);
        set_force_dense(None);
    }

    #[test]
    fn compress_for_append_folds_slack_into_fresh_symbols() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        set_force_f32(Some(true));
        let store = EpsStore::from_matrix(Matrix::from_rows(&[&[0.1], &[2.0], &[0.3]]));
        // Row 0 gets a fresh symbol, rows 0 and 2 pick up slack, row 1 is
        // exact and keeps no symbol.
        let (c, fresh, betas) = compress_for_append(store.clone(), vec![0], vec![0.5]);
        assert!(c.has_f32());
        assert_eq!(fresh, vec![0, 2]);
        assert!(betas[0] > 0.5, "slack must grow the existing beta");
        assert!(betas[1] > 0.0, "slack-only row gains a fresh symbol");
        // The compressed store + fresh intervals enclose the original rows.
        let mut full = c;
        full.append_diag(&fresh, &betas);
        for r in 0..3 {
            assert!(
                full.row_l1(r) >= store.row_l1(r),
                "row {r} interval must not shrink"
            );
        }
        // Inactive mode: inputs pass through untouched.
        set_force_f32(Some(false));
        let (p, f2, b2) = compress_for_append(store.clone(), vec![0], vec![0.5]);
        assert!(!p.has_f32());
        assert_eq!((f2, b2), (vec![0], vec![0.5]));
        set_force_f32(None);
        set_force_dense(None);
    }

    #[test]
    fn f32_blocks_promote_through_mutating_ops() {
        let _g = parallel::test_lock();
        set_force_dense(Some(false));
        let (c, _) = mixed().compress_rows_f32();
        let d = c.to_matrix();
        assert_eq!(c.scale(-2.0).to_matrix(), d.scale(-2.0));
        assert_eq!(c.mul_rows(&[2.0, 0.0, -1.0]).at(0, 4), -12.0);
        assert_eq!(c.scale_rows_guarded(&[0.0, 1.0, 1.0]).row_l1(0), 0.0);
        assert_eq!(c.add(&c).to_matrix(), d.add(&d));
        assert_eq!(c.permute_rows(&[2, 1, 0]).to_matrix().row(0), d.row(2));
        let l = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]);
        assert_eq!(c.linear_map(&l).to_matrix(), l.matmul(&d));
        // Column-local ops keep the compressed payload resident.
        assert!(c.select_cols(&[0, 3, 4]).has_f32());
        assert!(c.lifted(2).has_f32());
        let mut padded = c.clone();
        padded.pad_to(9);
        assert!(padded.has_f32());
        set_force_dense(None);
    }
}
