//! Cached handles into the process-global (gated) metrics registry for the
//! abstract-propagation hot paths.
//!
//! Counters here only feed the live scrape endpoint; they never influence
//! the computation they count (the PR 1 bitwise-identical guarantee), and
//! when `DEEPT_METRICS=off` every bump is a single relaxed atomic load.

use deept_metrics::Counter;
use std::sync::OnceLock;

macro_rules! hot_counter {
    ($fn_name:ident, $metric:literal, $help:literal) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static C: OnceLock<Counter> = OnceLock::new();
            C.get_or_init(|| deept_metrics::global().counter($metric, $help))
        }
    };
}

hot_counter!(
    matmul_total,
    "deept_zono_matmul_total",
    "Zonotope-zonotope matrix products computed."
);
hot_counter!(
    softmax_total,
    "deept_softmax_total",
    "Softmax abstract transformers applied."
);
hot_counter!(
    reductions_total,
    "deept_reductions_total",
    "Noise-symbol reductions performed."
);
hot_counter!(
    reduction_symbols_dropped_total,
    "deept_reduction_symbols_dropped_total",
    "Epsilon noise symbols folded away by reductions."
);
hot_counter!(
    eps_densifications_total,
    "deept_eps_densifications_total",
    "Diag-to-Dense conversions in the blocked epsilon generator store."
);
