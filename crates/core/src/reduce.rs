//! `DecorrelateMin_k` noise-symbol reduction (§5.1).
//!
//! Repeated abstract transformers keep appending fresh ℓ∞ symbols; without
//! intervention memory and per-operation cost grow with network depth. The
//! reduction keeps the `k` most influential ε symbols — scored by
//! `m_j = Σᵢ |B_{i,j}|` — and replaces the rest with one *independent* fresh
//! symbol per variable carrying the eliminated mass
//! `Σ_{j ∈ dropped} |β_{i,j}|`. This is a sound box over-approximation of
//! the dropped directions and bounds memory use independently of depth,
//! giving the paper's tunable precision/performance trade-off.
//!
//! `φ` symbols are never reduced: they encode the input perturbation region
//! itself.

use deept_telemetry::{NoopProbe, Probe, ReduceEvent, SpanKind};

use crate::Zonotope;

/// Outcome statistics of a reduction, useful for instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceStats {
    /// ε symbols before the reduction.
    pub before: usize,
    /// ε symbols after the reduction (kept + fresh per-variable symbols).
    pub after: usize,
    /// Symbols folded away.
    pub dropped: usize,
}

/// Reduces the ε symbols of `z` to at most `budget` kept symbols (plus one
/// fresh symbol per variable with eliminated mass), never touching columns
/// `< protect`.
///
/// Returns the reduced zonotope and statistics. If the zonotope is already
/// within budget it is returned unchanged.
///
/// # Panics
///
/// Panics if `protect > budget`.
pub fn reduce_eps(z: &Zonotope, budget: usize, protect: usize) -> (Zonotope, ReduceStats) {
    reduce_eps_probed(z, budget, protect, &NoopProbe)
}

/// [`reduce_eps`] wrapped in a telemetry span: reports the duration, the
/// reduced zonotope's stats (probe enabled only) and a [`ReduceEvent`] with
/// the before/after/dropped symbol counts.
pub fn reduce_eps_probed(
    z: &Zonotope,
    budget: usize,
    protect: usize,
    probe: &dyn Probe,
) -> (Zonotope, ReduceStats) {
    probe.span_enter(SpanKind::Reduction);
    let before = probe.enabled().then(deept_tensor::parallel::snapshot);
    let eps_before = probe.enabled().then(crate::eps::snapshot);
    let (out, stats) = reduce_eps_impl(z, budget, protect);
    if let Some(before) = before {
        probe.parallel(crate::dot::parallel_stats_since(&before));
    }
    if let Some(eps_before) = eps_before {
        probe.eps_storage(crate::eps::storage_stats_since(
            &eps_before,
            out.eps_store(),
        ));
    }
    probe.reduction(ReduceEvent {
        before: stats.before,
        after: stats.after,
        dropped: stats.dropped,
    });
    crate::hot::reductions_total().inc();
    crate::hot::reduction_symbols_dropped_total().add(stats.dropped as u64);
    let snapshot = probe.enabled().then(|| out.telemetry_stats());
    probe.span_exit(SpanKind::Reduction, snapshot, 0);
    (out, stats)
}

fn reduce_eps_impl(z: &Zonotope, budget: usize, protect: usize) -> (Zonotope, ReduceStats) {
    assert!(
        protect <= budget,
        "protect ({protect}) exceeds budget ({budget})"
    );
    let e = z.num_eps();
    if e <= budget {
        return (
            z.clone(),
            ReduceStats {
                before: e,
                after: e,
                dropped: 0,
            },
        );
    }
    let n = z.n_vars();
    let scores = z.eps_store().col_abs_sums();
    // Rank the unprotected symbols by influence, descending.
    let mut order: Vec<usize> = (protect..e).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    let keep_free = budget - protect;
    let mut kept: Vec<usize> = (0..protect).collect();
    kept.extend(order.iter().take(keep_free).copied());
    kept.sort_unstable(); // preserve relative order of kept symbols
    let mut dropped: Vec<usize> = order.iter().skip(keep_free).copied().collect();
    dropped.sort_unstable(); // ascending-column summation, identical in both ε modes

    // Per-variable eliminated mass, summed in column order.
    let mass = z.eps_store().row_abs_sums_selected(&dropped);
    let fresh: Vec<usize> = (0..n).filter(|&i| mass[i] > 0.0).collect();
    let coeff: Vec<f64> = fresh.iter().map(|&i| mass[i]).collect();
    let eps = z.eps_store().select_cols(&kept);
    let (mut eps, fresh, coeff) = crate::eps::compress_for_append(eps, fresh, coeff);
    eps.append_diag(&fresh, &coeff);
    let out = Zonotope::from_parts_store(
        z.rows(),
        z.cols(),
        z.center().to_vec(),
        z.phi().clone(),
        eps,
        z.p(),
    );
    let after = out.num_eps();
    (
        out,
        ReduceStats {
            before: e,
            after,
            dropped: dropped.len(),
        },
    )
}

/// The naive alternative to `DecorrelateMin_k`: drop **every** unprotected
/// ε symbol and box each variable independently, ignoring influence scores.
///
/// This is the ablation counterpart justifying the paper's heuristic: it
/// has the same worst-case memory bound but destroys *all* cross-variable
/// correlation beyond the protected prefix, so downstream dot products and
/// margins widen. The `reduction` ablation bench measures the gap.
pub fn reduce_box_all(z: &Zonotope, protect: usize) -> Zonotope {
    let e = z.num_eps();
    if e <= protect {
        return z.clone();
    }
    let n = z.n_vars();
    let kept: Vec<usize> = (0..protect).collect();
    let boxed_cols: Vec<usize> = (protect..e).collect();
    let mass = z.eps_store().row_abs_sums_selected(&boxed_cols);
    let fresh: Vec<usize> = (0..n).filter(|&i| mass[i] > 0.0).collect();
    let coeff: Vec<f64> = fresh.iter().map(|&i| mass[i]).collect();
    let eps = z.eps_store().select_cols(&kept);
    let (mut eps, fresh, coeff) = crate::eps::compress_for_append(eps, fresh, coeff);
    eps.append_diag(&fresh, &coeff);
    Zonotope::from_parts_store(
        z.rows(),
        z.cols(),
        z.center().to_vec(),
        z.phi().clone(),
        eps,
        z.p(),
    )
}

impl Zonotope {
    /// Convenience wrapper around [`reduce_eps`] discarding the statistics.
    pub fn reduced(&self, budget: usize, protect: usize) -> Zonotope {
        reduce_eps(self, budget, protect).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PNorm;
    use deept_tensor::Matrix;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_zono(seed: u64, n: usize, e_eps: usize) -> Zonotope {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let center: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let phi = Matrix::from_fn(n, 2, |_, _| rng.gen_range(-0.3..0.3));
        let eps = Matrix::from_fn(n, e_eps, |_, _| rng.gen_range(-0.3..0.3));
        Zonotope::from_parts(n, 1, center, phi, eps, PNorm::L2)
    }

    #[test]
    fn within_budget_is_identity() {
        let z = random_zono(1, 4, 5);
        let (out, stats) = reduce_eps(&z, 10, 0);
        assert_eq!(out, z);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn reduction_is_sound_overapproximation() {
        // Every point of the original region must lie within the reduced
        // region's bounds, and the per-variable residual must fit in the
        // fresh symbol's coefficient.
        let z = random_zono(2, 5, 12);
        let (out, stats) = reduce_eps(&z, 6, 0);
        assert_eq!(stats.dropped, 6);
        assert!(out.num_eps() <= 6 + z.n_vars());
        let (lo, hi) = out.bounds();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..500 {
            let (phi, eps) = z.sample_noise(&mut rng);
            let v = z.evaluate(&phi, &eps);
            for k in 0..z.n_vars() {
                assert!(
                    v[k] >= lo[k] - 1e-12 && v[k] <= hi[k] + 1e-12,
                    "var {k}: {} outside [{}, {}]",
                    v[k],
                    lo[k],
                    hi[k]
                );
            }
        }
    }

    #[test]
    fn reduction_keeps_most_influential_symbols() {
        // One dominant symbol must survive a harsh reduction.
        let mut eps = Matrix::zeros(3, 5);
        for i in 0..3 {
            eps.set(i, 2, 10.0); // symbol 2 dominates
            eps.set(i, 4, 0.01);
        }
        let z = Zonotope::from_parts(3, 1, vec![0.0; 3], Matrix::zeros(3, 0), eps, PNorm::L2);
        let (out, _) = reduce_eps(&z, 1, 0);
        // The kept symbol is the dominant one: correlated structure retained,
        // so variable widths stay 2·10 + small.
        let (lo, hi) = out.bounds();
        for k in 0..3 {
            assert!((hi[k] - lo[k] - 2.0 * (10.0 + 0.01)).abs() < 1e-9);
        }
        // And the difference x0 − x1 stays tight (0 ± small) because the
        // dominant symbol is still shared, not boxed.
        let l = Matrix::from_rows(&[&[1.0, -1.0, 0.0]]);
        let d = out.linear_vars(&l, 1, 1);
        let (dl, dh) = d.bounds();
        assert!(dh[0] - dl[0] <= 2.0 * 0.02 + 1e-9);
    }

    #[test]
    fn protect_keeps_prefix_columns_in_place() {
        let z = random_zono(4, 4, 10);
        let (out, _) = reduce_eps(&z, 5, 3);
        // The first `protect` columns must be bit-identical.
        for i in 0..z.n_vars() {
            for j in 0..3 {
                assert_eq!(out.eps_at(i, j), z.eps_at(i, j));
            }
        }
    }

    #[test]
    fn widths_never_shrink_but_grow_boundedly() {
        let z = random_zono(5, 6, 20);
        let (out, _) = reduce_eps(&z, 8, 0);
        let (lo, hi) = z.bounds();
        let (rlo, rhi) = out.bounds();
        for k in 0..z.n_vars() {
            let w = hi[k] - lo[k];
            let rw = rhi[k] - rlo[k];
            // Per-variable width is preserved exactly by DecorrelateMin_k
            // (only cross-variable correlation is lost).
            assert!((rw - w).abs() < 1e-9, "width changed: {w} -> {rw}");
        }
    }

    #[test]
    fn box_all_is_sound_but_looser_than_decorrelate() {
        let z = random_zono(7, 6, 20);
        let boxed = reduce_box_all(&z, 0);
        let (lo, hi) = boxed.bounds();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..300 {
            let (phi, eps) = z.sample_noise(&mut rng);
            let v = z.evaluate(&phi, &eps);
            for k in 0..z.n_vars() {
                assert!(v[k] >= lo[k] - 1e-12 && v[k] <= hi[k] + 1e-12);
            }
        }
        // On a correlated functional (difference of variables), the scored
        // reduction with a non-trivial budget must be at least as tight.
        let l = Matrix::from_rows(&[&[1.0, -1.0, 0.0, 0.0, 0.0, 0.0]]);
        let (scored, _) = reduce_eps(&z, 10, 0);
        let d_scored = scored.linear_vars(&l, 1, 1);
        let d_boxed = boxed.linear_vars(&l, 1, 1);
        let w = |d: &Zonotope| {
            let (a, b) = d.bounds_of(0);
            b - a
        };
        assert!(w(&d_scored) <= w(&d_boxed) + 1e-9);
    }

    #[test]
    fn box_all_respects_protect() {
        let z = random_zono(9, 4, 10);
        let out = reduce_box_all(&z, 4);
        for i in 0..z.n_vars() {
            for j in 0..4 {
                assert_eq!(out.eps_at(i, j), z.eps_at(i, j));
            }
        }
        assert!(out.num_eps() <= 4 + z.n_vars());
    }

    #[test]
    #[should_panic(expected = "protect")]
    fn protect_above_budget_panics() {
        let z = random_zono(6, 3, 8);
        let _ = reduce_eps(&z, 2, 3);
    }
}
