//! Softmax-sum zonotope refinement (§5.3) and the associated
//! `O(E log E)` coefficient-minimization of Appendix A.1.
//!
//! Softmax outputs always satisfy `Σᵢ yᵢ = 1`, but the zonotope produced by
//! the softmax abstract transformer contains noise instantiations violating
//! that equality. Following Ghorbal et al.'s logical-product construction,
//! we intersect the zonotope with the constraint in three steps:
//!
//! 1. refine `y₁` using the equality `y₁ = 1 − (y₂ + … + y_N)`, choosing the
//!    free coefficient `β'_k` that minimizes `‖α'‖₁ + ‖β'‖₁`;
//! 2. substitute the solved noise symbol `ε_k` into `y₂ … y_N`;
//! 3. tighten the ranges of the remaining `ε` symbols from the residual sum
//!    constraint and re-center them onto fresh `[−1, 1]` symbols.
//!
//! **Shared-symbol safety.** The refinement rewrites noise symbols, which
//! would desynchronize other zonotopes sharing them. We therefore restrict
//! the eliminated / tightened symbols to columns `≥ protect`, i.e. the
//! symbols created inside the current softmax, which no other live zonotope
//! references. This forgoes a little tightening relative to the paper but
//! keeps the positional-symbol discipline intact (see DESIGN.md).

use deept_tensor::Matrix;

use crate::Zonotope;

/// Relative coefficient threshold below which a symbol is considered absent
/// from an expression.
const COEFF_TOL: f64 = 1e-12;

/// An affine expression `c + α·φ + β·ε` used internally by the refinement.
#[derive(Debug, Clone)]
struct AffineExpr {
    c: f64,
    alpha: Vec<f64>,
    beta: Vec<f64>,
}

impl AffineExpr {
    fn of_var(z: &Zonotope, k: usize) -> Self {
        AffineExpr {
            c: z.center()[k],
            alpha: z.phi().row(k).to_vec(),
            beta: z.eps_row(k),
        }
    }
}

/// Minimizes `Σ_t |r_t + s_t·v|` over `v` (Appendix A.1).
///
/// Each term is indexed by whether it stems from an ℓp (`is_phi`) symbol;
/// candidate minimizers that would zero out a φ coefficient are excluded, as
/// the paper prescribes, via a linear search around the weighted median.
///
/// Returns the chosen `v`.
pub(crate) fn minimize_abs_sum(terms: &[(f64, f64, bool)]) -> f64 {
    // Breakpoints −r/s of terms with s ≠ 0, with weight |s|.
    let mut bps: Vec<(f64, f64, bool)> = terms
        .iter()
        .filter(|(_, s, _)| s.abs() > COEFF_TOL)
        .map(|&(r, s, is_phi)| (-r / s, s.abs(), is_phi))
        .collect();
    if bps.is_empty() {
        return 0.0;
    }
    bps.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite breakpoints"));
    let total: f64 = bps.iter().map(|b| b.1).sum();
    // Weighted median: first index where the cumulative weight reaches half
    // the total — the slope of the objective changes sign there.
    let mut acc = 0.0;
    let mut median = bps.len() - 1;
    for (i, b) in bps.iter().enumerate() {
        acc += b.1;
        if 2.0 * acc >= total {
            median = i;
            break;
        }
    }
    let objective = |v: f64| -> f64 { terms.iter().map(|(r, s, _)| (r + s * v).abs()).sum() };
    if !bps[median].2 {
        return bps[median].0;
    }
    // The optimum would eliminate a φ symbol: evaluate the nearest non-φ
    // breakpoints on either side and keep the better one (linear search, as
    // in Appendix A.1).
    let left = bps[..median].iter().rev().find(|b| !b.2);
    let right = bps[median + 1..].iter().find(|b| !b.2);
    match (left, right) {
        (Some(l), Some(r)) => {
            if objective(l.0) <= objective(r.0) {
                l.0
            } else {
                r.0
            }
        }
        (Some(l), None) => l.0,
        (None, Some(r)) => r.0,
        // Every symbol is a φ symbol: fall back to the unconstrained
        // optimum rather than destroy relational information elsewhere.
        (None, None) => bps[median].0,
    }
}

/// Refines a zonotope whose variables are known to satisfy
/// `Σᵢ xᵢ = target`, touching only ε symbols with column index `≥ protect`.
///
/// Returns the refined zonotope (same shape and symbol layout). If no
/// eligible pivot symbol exists the input is returned unchanged.
pub fn refine_sum(z: &Zonotope, target: f64, protect: usize, tighten_eps: bool) -> Zonotope {
    let n = z.n_vars();
    if n < 2 {
        return z.clone();
    }
    let e_eps = z.num_eps();

    // z1 = x₀ ; z2 = target − Σ_{i≥1} xᵢ. The constraint is z1 = z2.
    let z1 = AffineExpr::of_var(z, 0);
    let mut z2 = AffineExpr {
        c: target,
        alpha: vec![0.0; z.num_phi()],
        beta: vec![0.0; e_eps],
    };
    let mut row_scratch = vec![0.0; e_eps];
    for i in 1..n {
        z2.c -= z.center()[i];
        for (a, &x) in z2.alpha.iter_mut().zip(z.phi().row(i)) {
            *a -= x;
        }
        z.eps_store().write_row_into(i, &mut row_scratch);
        for (b, &x) in z2.beta.iter_mut().zip(&row_scratch) {
            *b -= x;
        }
    }

    // Pivot: the eligible symbol with the largest |β1_k − β2_k|.
    let mut pivot = None;
    let mut best = 0.0;
    for k in protect..e_eps {
        let d = (z1.beta[k] - z2.beta[k]).abs();
        if d > best {
            best = d;
            pivot = Some(k);
        }
    }
    let Some(k) = pivot else {
        return z.clone();
    };
    if best <= COEFF_TOL {
        return z.clone();
    }
    // ε_k = [(c2 − c1) + (α2 − α1)·φ + Σ_{i≠k}(β2 − β1)ᵢ εᵢ] / (β1_k − β2_k)
    let denom = z1.beta[k] - z2.beta[k];
    let sub_c = (z2.c - z1.c) / denom;
    let sub_alpha: Vec<f64> = z1
        .alpha
        .iter()
        .zip(&z2.alpha)
        .map(|(&a1, &a2)| (a2 - a1) / denom)
        .collect();
    let mut sub_beta: Vec<f64> = z1
        .beta
        .iter()
        .zip(&z2.beta)
        .map(|(&b1, &b2)| (b2 - b1) / denom)
        .collect();
    sub_beta[k] = 0.0;

    // Step 1: refined x₀ with the free coefficient v = β'_k chosen by the
    // Appendix A.1 minimization. Writing q = (v − β2_k)/(β2_k − β1_k), the
    // Eq. 7–9 coefficients are c' = c2 + q (c2 − c1), α' = α2 + q (α2 − α1),
    // β'_I = β2_I + q (β2_I − β1_I): every coefficient is affine in v.
    let dq = 1.0 / (z2.beta[k] - z1.beta[k]); // dq = ∂q/∂v
    let mut terms: Vec<(f64, f64, bool)> = Vec::with_capacity(z.num_phi() + e_eps);
    for (t, (&a1, &a2)) in z1.alpha.iter().zip(&z2.alpha).enumerate() {
        let _ = t;
        let base = a2 + (a2 - a1) * (-z2.beta[k]) * dq;
        let slope = (a2 - a1) * dq;
        terms.push((base, slope, true));
    }
    for (t, (&b1, &b2)) in z1.beta.iter().zip(&z2.beta).enumerate() {
        if t == k {
            continue;
        }
        let base = b2 + (b2 - b1) * (-z2.beta[k]) * dq;
        let slope = (b2 - b1) * dq;
        terms.push((base, slope, false));
    }
    terms.push((0.0, 1.0, false)); // |β'_k| = |v|
    let v = minimize_abs_sum(&terms);
    let q = (v - z2.beta[k]) * dq;
    let refined_c = z2.c + q * (z2.c - z1.c);
    let refined_alpha: Vec<f64> = z1
        .alpha
        .iter()
        .zip(&z2.alpha)
        .map(|(&a1, &a2)| a2 + q * (a2 - a1))
        .collect();
    let mut refined_beta: Vec<f64> = z1
        .beta
        .iter()
        .zip(&z2.beta)
        .map(|(&b1, &b2)| b2 + q * (b2 - b1))
        .collect();
    refined_beta[k] = v;

    // Assemble: variable 0 replaced, variables ≥ 1 get ε_k substituted away
    // (Step 2).
    let mut center = z.center().to_vec();
    let mut phi = z.phi().clone();
    let mut eps = z.eps_dense_matrix();
    center[0] = refined_c;
    phi.row_mut(0).copy_from_slice(&refined_alpha);
    eps.row_mut(0).copy_from_slice(&refined_beta);
    for (i, ci) in center.iter_mut().enumerate().take(n).skip(1) {
        let coeff = eps.at(i, k);
        if coeff == 0.0 {
            continue;
        }
        *ci += coeff * sub_c;
        for (dst, &s) in phi.row_mut(i).iter_mut().zip(&sub_alpha) {
            *dst += coeff * s;
        }
        for (dst, &s) in eps.row_mut(i).iter_mut().zip(&sub_beta) {
            *dst += coeff * s;
        }
        eps.set(i, k, 0.0);
    }

    let mut out = Zonotope::from_parts(z.rows(), z.cols(), center, phi, eps, z.p());
    if tighten_eps {
        out = tighten_from_sum(&out, target, protect);
    }
    out
}

/// Step 3: uses the residual constraint `target − Σᵢ xᵢ = 0` to restrict the
/// range of tail ε symbols, re-centering each restricted symbol onto a fresh
/// `[−1, 1]` symbol occupying the same column.
fn tighten_from_sum(z: &Zonotope, target: f64, protect: usize) -> Zonotope {
    let n = z.n_vars();
    let e_eps = z.num_eps();
    // S = target − Σ xᵢ  =  c_S + α_S·φ + β_S·ε  =  0.
    let mut c_s = target;
    let mut alpha_s = vec![0.0; z.num_phi()];
    let mut beta_s = vec![0.0; e_eps];
    let mut row_scratch = vec![0.0; e_eps];
    for i in 0..n {
        c_s -= z.center()[i];
        for (a, &x) in alpha_s.iter_mut().zip(z.phi().row(i)) {
            *a -= x;
        }
        z.eps_store().write_row_into(i, &mut row_scratch);
        for (b, &x) in beta_s.iter_mut().zip(&row_scratch) {
            *b -= x;
        }
    }
    let alpha_norm = z.p().dual_norm(&alpha_s);
    let beta_total: f64 = deept_tensor::l1_norm(&beta_s);
    let mut center = z.center().to_vec();
    let mut eps = z.eps_dense_matrix();
    for (m, &bsm) in beta_s.iter().enumerate().take(e_eps).skip(protect) {
        let bm = bsm.abs();
        if bm <= COEFF_TOL {
            continue;
        }
        // ε_m = −(c_S + α_S·φ + β_S^I·ε^I)/β_S^m with the numerator bounded
        // by c_S ± (‖α_S‖_q + ‖β_S^I‖₁).
        let spread = alpha_norm + (beta_total - bm);
        let (mut a, mut b) = {
            let lo = (-(c_s + spread)) / bsm;
            let hi = (-(c_s - spread)) / bsm;
            (lo.min(hi), lo.max(hi))
        };
        a = a.max(-1.0);
        b = b.min(1.0);
        if a > b || (a <= -1.0 + COEFF_TOL && b >= 1.0 - COEFF_TOL) {
            continue; // empty (numerical) or no tightening
        }
        let mid = 0.5 * (a + b);
        let half = 0.5 * (b - a);
        for (i, ci) in center.iter_mut().enumerate().take(n) {
            let coeff = eps.at(i, m);
            if coeff == 0.0 {
                continue;
            }
            *ci += coeff * mid;
            eps.set(i, m, coeff * half);
        }
    }
    Zonotope::from_parts(z.rows(), z.cols(), center, eps_phi(z), eps, z.p())
}

fn eps_phi(z: &Zonotope) -> Matrix {
    z.phi().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PNorm;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A zonotope whose variables sum to `1` for every instantiation that
    /// satisfies the constraint used in the refinement tests.
    fn softmax_like_zono() -> Zonotope {
        // Three variables roughly forming a distribution; their sum is NOT
        // syntactically 1, mimicking post-softmax over-approximation.
        Zonotope::from_parts(
            3,
            1,
            vec![0.5, 0.3, 0.25],
            Matrix::from_rows(&[&[0.02], &[-0.01], &[0.0]]),
            Matrix::from_rows(&[&[0.05, 0.01, 0.0], &[0.0, 0.04, 0.01], &[0.01, 0.0, 0.03]]),
            PNorm::L2,
        )
    }

    #[test]
    fn minimize_abs_sum_simple() {
        // |v| + |v − 2| is minimized anywhere in [0, 2]; breakpoint search
        // returns one of the breakpoints.
        let v = minimize_abs_sum(&[(0.0, 1.0, false), (-2.0, 1.0, false)]);
        assert!((0.0..=2.0).contains(&v));
        // |v − 1| + |v − 1| + |v + 5|: weighted median at 1.
        let v = minimize_abs_sum(&[(-1.0, 1.0, false), (-1.0, 1.0, false), (5.0, 1.0, false)]);
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn minimize_abs_sum_avoids_phi_elimination() {
        // The unconstrained optimum (v = 1, median breakpoint) belongs to a φ
        // term; the refinement must pick the best non-φ breakpoint instead.
        let terms = [
            (-1.0, 1.0, true),
            (-1.0, 1.0, true),
            (-1.0, 1.0, true),
            (-0.5, 1.0, false),
            (3.0, 1.0, false),
        ];
        let v = minimize_abs_sum(&terms);
        assert!((v - 0.5).abs() < 1e-12 || (v + 3.0).abs() < 1e-12);
        assert!((v - 1.0).abs() > 1e-9);
    }

    #[test]
    fn refinement_preserves_constrained_semantics() {
        // For any noise instantiation satisfying the sum constraint, the
        // refined variables must take exactly the same values as the
        // originals.
        let z = softmax_like_zono();
        let refined = refine_sum(&z, 1.0, 0, false);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut tested = 0;
        for _ in 0..2000 {
            let (phi, mut eps) = z.sample_noise(&mut rng);
            // Solve for ε_k (the pivot is whichever symbol the refinement
            // used; brute-force: adjust the last symbol to satisfy the sum).
            // Σ xᵢ(φ, ε) = 1 ⇔ ε_m = (1 − rest)/coef.
            let m = 2;
            let coef: f64 = (0..3).map(|i| z.eps_at(i, m)).sum();
            if coef.abs() < 1e-9 {
                continue;
            }
            eps[m] = 0.0;
            let vals = z.evaluate(&phi, &eps);
            let rest: f64 = vals.iter().sum();
            let fix = (1.0 - rest) / coef;
            if fix.abs() > 1.0 {
                continue;
            }
            eps[m] = fix;
            let original = z.evaluate(&phi, &eps);
            assert!((original.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let new = refined.evaluate(&phi, &eps);
            for (a, b) in original.iter().zip(&new) {
                assert!((a - b).abs() < 1e-9, "refined value drifted: {a} vs {b}");
            }
            tested += 1;
        }
        assert!(tested > 100, "too few constrained samples ({tested})");
    }

    #[test]
    fn refinement_reduces_first_variable_width() {
        let z = softmax_like_zono();
        let refined = refine_sum(&z, 1.0, 0, false);
        let (lo, hi) = z.bounds();
        let (rlo, rhi) = refined.bounds();
        // The refined x₀ should not be wider; typically strictly tighter.
        assert!(rhi[0] - rlo[0] <= hi[0] - lo[0] + 1e-12);
    }

    #[test]
    fn refinement_respects_protect() {
        let z = softmax_like_zono();
        let refined = refine_sum(&z, 1.0, 3, true);
        // All symbols are protected: nothing may change.
        assert_eq!(&refined, &z);
    }

    #[test]
    fn tightening_shrinks_tail_symbol_influence() {
        // A blatant case: x₀ = ε₀, x₁ = 1 (sum must be 1 ⇒ ε₀ = 0).
        let z = Zonotope::from_parts(
            2,
            1,
            vec![0.0, 1.0],
            Matrix::zeros(2, 0),
            Matrix::from_rows(&[&[1.0], &[0.0]]),
            PNorm::L2,
        );
        let refined = refine_sum(&z, 1.0, 0, true);
        let (lo, hi) = refined.bounds();
        assert!(
            hi[0] - lo[0] < 1e-9,
            "x0 should collapse to 0, got [{},{}]",
            lo[0],
            hi[0]
        );
    }

    #[test]
    fn single_variable_is_returned_unchanged() {
        let z = Zonotope::from_parts(
            1,
            1,
            vec![1.0],
            Matrix::zeros(1, 0),
            Matrix::from_rows(&[&[0.5]]),
            PNorm::L2,
        );
        assert_eq!(refine_sum(&z, 1.0, 0, true), z);
    }
}
