//! ℓp norms and their duals (§3.3 of the paper).

use serde::{Deserialize, Serialize};

/// The ℓp norm bounding the `φ` noise symbols of a [`crate::Zonotope`].
///
/// The dual norm ℓq (with `1/p + 1/q = 1`) turns joint constraints on `φ`
/// into concrete interval bounds: by Lemma 1 of the paper,
/// `|α · φ| ≤ ‖α‖_q` whenever `‖φ‖_p ≤ 1`, and the bound is tight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PNorm {
    /// ℓ1; dual is ℓ∞.
    L1,
    /// ℓ2; self-dual.
    L2,
    /// ℓ∞; dual is ℓ1. A Multi-norm Zonotope with `p = ∞` is a classical
    /// zonotope (the `φ` symbols behave exactly like `ε` symbols).
    Linf,
}

impl PNorm {
    /// The numeric value of `p` (`f64::INFINITY` for ℓ∞).
    pub fn p(self) -> f64 {
        match self {
            PNorm::L1 => 1.0,
            PNorm::L2 => 2.0,
            PNorm::Linf => f64::INFINITY,
        }
    }

    /// The dual norm ℓq with `1/p + 1/q = 1`.
    pub fn dual(self) -> PNorm {
        match self {
            PNorm::L1 => PNorm::Linf,
            PNorm::L2 => PNorm::L2,
            PNorm::Linf => PNorm::L1,
        }
    }

    /// `‖v‖_p`.
    pub fn norm(self, v: &[f64]) -> f64 {
        match self {
            PNorm::L1 => deept_tensor::l1_norm(v),
            PNorm::L2 => deept_tensor::l2_norm(v),
            PNorm::Linf => deept_tensor::linf_norm(v),
        }
    }

    /// `‖v‖_q`, the tight bound of `sup { v·x : ‖x‖_p ≤ 1 }` (Lemma 1).
    pub fn dual_norm(self, v: &[f64]) -> f64 {
        self.dual().norm(v)
    }

    /// Parses `"1"`, `"2"` or `"inf"`.
    pub fn parse(s: &str) -> Option<PNorm> {
        match s {
            "1" | "l1" | "L1" => Some(PNorm::L1),
            "2" | "l2" | "L2" => Some(PNorm::L2),
            "inf" | "linf" | "Linf" | "oo" => Some(PNorm::Linf),
            _ => None,
        }
    }
}

impl std::fmt::Display for PNorm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PNorm::L1 => write!(f, "l1"),
            PNorm::L2 => write!(f, "l2"),
            PNorm::Linf => write!(f, "linf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duals() {
        assert_eq!(PNorm::L1.dual(), PNorm::Linf);
        assert_eq!(PNorm::L2.dual(), PNorm::L2);
        assert_eq!(PNorm::Linf.dual(), PNorm::L1);
    }

    #[test]
    fn dual_norm_bounds_inner_product() {
        // For a few random-ish vectors x with ‖x‖_p ≤ 1, check v·x ≤ ‖v‖_q.
        let v = [1.0, -2.0, 0.5];
        for p in [PNorm::L1, PNorm::L2, PNorm::Linf] {
            let bound = p.dual_norm(&v);
            let candidates: [[f64; 3]; 4] = [
                [1.0, 0.0, 0.0],
                [0.5, -0.5, 0.0],
                [0.3, 0.3, 0.3],
                [0.0, -1.0, 0.0],
            ];
            for x in candidates {
                let xn = p.norm(&x);
                if xn <= 1.0 + 1e-12 {
                    let ip: f64 = v.iter().zip(&x).map(|(a, b)| a * b).sum();
                    assert!(ip.abs() <= bound + 1e-12, "{p:?}: {ip} vs {bound}");
                }
            }
        }
    }

    #[test]
    fn dual_norm_is_tight_for_l2() {
        // The supremum of v·x over ‖x‖₂ ≤ 1 is ‖v‖₂, achieved at x = v/‖v‖₂.
        let v = [3.0, 4.0];
        let bound = PNorm::L2.dual_norm(&v);
        let n = deept_tensor::l2_norm(&v);
        let achieved: f64 = v.iter().map(|a| a * a / n).sum();
        assert!((achieved - bound).abs() < 1e-12);
    }

    #[test]
    fn parsing_and_display() {
        assert_eq!(PNorm::parse("2"), Some(PNorm::L2));
        assert_eq!(PNorm::parse("inf"), Some(PNorm::Linf));
        assert_eq!(PNorm::parse("bogus"), None);
        assert_eq!(PNorm::L1.to_string(), "l1");
    }
}
