//! Property tests for the histogram guarantees the rest of the stack leans
//! on: the documented relative quantile-error bound, order-independent
//! cross-thread shard merges, and byte-identical snapshot serde
//! round-trips.

use deept_metrics::{HistogramSnapshot, Registry, QUANTILE_RELATIVE_ERROR};
use proptest::collection::vec;
use proptest::prelude::*;

/// Variable-length vectors of positive normal samples spanning ~21 orders
/// of magnitude — the range the error bound is documented for
/// (sub-nanosecond latencies up to ~1e12).
fn samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    (1..max_len).prop_flat_map(|n| vec(1e-9f64..1e12, n))
}

fn empty_snapshot() -> HistogramSnapshot {
    HistogramSnapshot {
        count: 0,
        sum_ticks: 0,
        min_ticks: 0,
        max_ticks: 0,
        buckets: Vec::new(),
    }
}

fn record_all(reg: &Registry, name: &str, values: &[f64]) -> HistogramSnapshot {
    let h = reg.histogram(name, "prop");
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    /// Every quantile estimate is within the documented relative error of
    /// the exact order statistic at the same rank (`max(1, ceil(q·n))`).
    #[test]
    fn quantiles_respect_relative_error_bound(
        values in samples(200),
        qs in vec(0.0f64..=1.0, 8),
    ) {
        let reg = Registry::new();
        let snap = record_all(&reg, "h", &values);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in qs {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = snap.quantile(q).unwrap();
            let rel = (est - exact).abs() / exact;
            prop_assert!(
                rel <= QUANTILE_RELATIVE_ERROR * (1.0 + 1e-12),
                "q={q}: estimate {est} vs exact {exact} (rel err {rel})"
            );
        }
    }

    /// Splitting a sample stream over shards (threads) and merging in any
    /// order yields the same snapshot — byte-identical once serialized.
    #[test]
    fn shard_merges_are_order_independent(
        values in samples(150),
        splits in vec(0usize..4, 150),
    ) {
        // Partition samples into 4 parts using the `splits` stream.
        let mut parts: [Vec<f64>; 4] = Default::default();
        for (i, &v) in values.iter().enumerate() {
            parts[splits[i]].push(v);
        }
        let reg = Registry::new();
        let whole = record_all(&reg, "whole", &values);

        let part_snaps: Vec<HistogramSnapshot> = parts
            .iter()
            .enumerate()
            .map(|(i, part)| record_all(&reg, &format!("part{i}"), part))
            .collect();

        // Merge in forward and reverse order; both must equal the
        // single-stream snapshot exactly.
        let mut fwd = empty_snapshot();
        for s in &part_snaps {
            fwd.merge(s);
        }
        let mut rev = empty_snapshot();
        for s in part_snaps.iter().rev() {
            rev.merge(s);
        }
        prop_assert_eq!(&fwd, &whole);
        prop_assert_eq!(&rev, &whole);
        prop_assert_eq!(
            serde_json::to_string(&fwd).unwrap(),
            serde_json::to_string(&rev).unwrap()
        );
    }

    /// A registry snapshot (counters, gauges, labeled histograms) survives
    /// JSON serialize → deserialize → serialize with identical bytes.
    #[test]
    fn registry_snapshot_serde_round_trips_byte_identically(
        values in samples(80),
        counter_val in 0u64..u64::MAX,
        gauge_val in -1e12f64..1e12,
    ) {
        let reg = Registry::new();
        reg.counter("c_total", "counter").add(counter_val);
        reg.gauge("g", "gauge").set(gauge_val);
        let h = reg.histogram_with("h_seconds", &[("model", "m\"x")], "hist");
        for &v in &values {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: deept_metrics::RegistrySnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &snap);
        let json2 = serde_json::to_string(&back).unwrap();
        prop_assert_eq!(json2, json);
    }
}

/// Concurrent recording through one handle from many threads loses no
/// samples and matches a single-threaded reference after the shard merge.
#[test]
fn cross_thread_recording_matches_single_thread_reference() {
    let reg = std::sync::Arc::new(Registry::new());
    let h = reg.histogram("xthread", "cross-thread");
    let per_thread = 500usize;
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let h = h.clone();
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    h.observe(1e-3 * (1 + t * per_thread + i) as f64);
                }
            })
        })
        .collect();
    for th in threads {
        th.join().unwrap();
    }
    let reference = Registry::new();
    let r = reference.histogram("xthread", "reference");
    for t in 0..4 {
        for i in 0..per_thread {
            r.observe(1e-3 * (1 + t * per_thread + i) as f64);
        }
    }
    assert_eq!(h.snapshot(), r.snapshot());
}
