//! The metric registry: named counters, gauges and histograms.
//!
//! A [`Registry`] is instanceable — `deept-serve` gives every server its own
//! so concurrently running servers (e.g. under `cargo test`) never see each
//! other's counts — while hot-path library crates publish into the shared
//! process-wide [`crate::global`] registry, which is *gated*: its handles
//! become no-ops when `DEEPT_METRICS=off` (see [`crate::enabled`]).
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of the
//! underlying cell; hot paths should create them once (e.g. in a
//! `OnceLock`) and reuse them, since registration takes the registry lock.
//! Histograms stripe recordings over a small fixed set of mutex-protected
//! shards indexed by thread, merged only on snapshot — uncontended in the
//! common case and order-independent on merge.

use crate::hist::{HistCore, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Histogram stripe count: enough to keep a handful of worker threads from
/// colliding, small enough that snapshot merges stay trivial.
const HIST_SHARDS: usize = 8;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % HIST_SHARDS;
}

/// Identity of a metric: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

pub(crate) struct HistShards {
    shards: Vec<Mutex<HistCore>>,
}

impl HistShards {
    fn new() -> Self {
        HistShards {
            shards: (0..HIST_SHARDS)
                .map(|_| Mutex::new(HistCore::default()))
                .collect(),
        }
    }

    fn observe(&self, v: f64) {
        let stripe = STRIPE.with(|s| *s);
        lock(&self.shards[stripe]).record(v);
    }

    fn merged(&self) -> HistogramSnapshot {
        let mut whole = HistCore::default();
        for shard in &self.shards {
            whole.merge_from(&lock(shard));
        }
        whole.snapshot()
    }
}

#[derive(Default)]
struct RegState {
    help: BTreeMap<String, String>,
    counters: BTreeMap<MetricId, Arc<AtomicU64>>,
    gauges: BTreeMap<MetricId, Arc<AtomicU64>>,
    hists: BTreeMap<MetricId, Arc<HistShards>>,
}

/// A set of named metrics. See the module docs for the instanceable vs.
/// global/gated distinction.
pub struct Registry {
    gated: bool,
    state: Mutex<RegState>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An always-on registry (writes are never dropped).
    pub fn new() -> Self {
        Registry {
            gated: false,
            state: Mutex::new(RegState::default()),
        }
    }

    /// A registry whose handles drop writes while [`crate::enabled`] is
    /// false. Used by the process-wide [`crate::global`] registry so hot
    /// paths can be silenced with `DEEPT_METRICS=off`.
    pub fn gated() -> Self {
        Registry {
            gated: true,
            state: Mutex::new(RegState::default()),
        }
    }

    fn record_help(state: &mut RegState, name: &str, help: &str) {
        state
            .help
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
    }

    /// Gets or creates an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Gets or creates a counter with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        let id = MetricId::new(name, labels);
        let mut state = lock(&self.state);
        Self::record_help(&mut state, name, help);
        let cell = state.counters.entry(id).or_default().clone();
        Counter {
            cell,
            gated: self.gated,
        }
    }

    /// Gets or creates an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Gets or creates a gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        let id = MetricId::new(name, labels);
        let mut state = lock(&self.state);
        Self::record_help(&mut state, name, help);
        let cell = state.gauges.entry(id).or_default().clone();
        Gauge {
            cell,
            gated: self.gated,
        }
    }

    /// Gets or creates an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, &[], help)
    }

    /// Gets or creates a histogram with labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        let id = MetricId::new(name, labels);
        let mut state = lock(&self.state);
        Self::record_help(&mut state, name, help);
        let cell = state
            .hists
            .entry(id)
            .or_insert_with(|| Arc::new(HistShards::new()))
            .clone();
        Histogram {
            cell,
            gated: self.gated,
        }
    }

    /// A consistent-enough point-in-time view of every registered metric,
    /// with per-thread histogram shards flushed (merged) into one snapshot
    /// per histogram. Samples are sorted by name then labels.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let state = lock(&self.state);
        RegistrySnapshot {
            counters: state
                .counters
                .iter()
                .map(|(id, cell)| CounterSample {
                    name: id.name.clone(),
                    labels: id.labels.clone(),
                    value: cell.load(Ordering::Relaxed),
                })
                .collect(),
            gauges: state
                .gauges
                .iter()
                .map(|(id, cell)| GaugeSample {
                    name: id.name.clone(),
                    labels: id.labels.clone(),
                    value: f64::from_bits(cell.load(Ordering::Relaxed)),
                })
                .collect(),
            histograms: state
                .hists
                .iter()
                .map(|(id, cell)| HistogramSample {
                    name: id.name.clone(),
                    labels: id.labels.clone(),
                    hist: cell.merged(),
                })
                .collect(),
            help: state
                .help
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    gated: bool,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if self.gated && !crate::enabled() {
            return;
        }
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle: an instantaneous `f64` (stored as bits in an atomic).
///
/// [`Gauge::sub`] saturates at 0.0 — gauges here track depths and sizes, so
/// racing decrements must not wrap to garbage.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
    gated: bool,
}

impl Gauge {
    fn update(&self, f: impl Fn(f64) -> f64) {
        if self.gated && !crate::enabled() {
            return;
        }
        let _ = self
            .cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some(f(f64::from_bits(bits)).to_bits())
            });
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.update(|_| v);
    }

    /// Adds `v`.
    pub fn add(&self, v: f64) {
        self.update(|cur| cur + v);
    }

    /// Subtracts `v`, saturating at 0.0.
    pub fn sub(&self, v: f64) {
        self.update(|cur| (cur - v).max(0.0));
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// A histogram handle; see [`crate::hist`] for bucketing guarantees.
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistShards>,
    gated: bool,
}

impl Histogram {
    /// Records one sample (`NaN` is dropped).
    pub fn observe(&self, v: f64) {
        if self.gated && !crate::enabled() {
            return;
        }
        self.cell.observe(v);
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Merged snapshot of this histogram alone.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.merged()
    }
}

/// One counter's sampled value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Sampled value.
    pub value: u64,
}

/// One gauge's sampled value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Sampled value.
    pub value: f64,
}

/// One histogram's merged snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Merged per-thread shards.
    pub hist: HistogramSnapshot,
}

/// Every metric of a registry at one point in time. Serializable, mergeable
/// across registries (e.g. a server's own registry plus the process-global
/// one) and renderable as Prometheus text via
/// [`RegistrySnapshot::to_prometheus`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counter samples sorted by name then labels.
    pub counters: Vec<CounterSample>,
    /// Gauge samples sorted by name then labels.
    pub gauges: Vec<GaugeSample>,
    /// Histogram samples sorted by name then labels.
    pub histograms: Vec<HistogramSample>,
    /// `(name, help)` pairs sorted by name.
    pub help: Vec<(String, String)>,
}

impl RegistrySnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        RegistrySnapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            help: Vec::new(),
        }
    }

    /// Appends another registry's samples, keeping name/label sort order.
    /// Metric names are expected to be disjoint across registries; same-name
    /// samples from `other` sort after equal-keyed existing ones.
    pub fn merge(&mut self, other: RegistrySnapshot) {
        self.counters.extend(other.counters);
        self.counters
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self.gauges.extend(other.gauges);
        self.gauges
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self.histograms.extend(other.histograms);
        self.histograms
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self.help.extend(other.help);
        self.help.sort();
        self.help.dedup_by(|a, b| a.0 == b.0);
    }

    /// Returns the snapshot with `(key, value)` added to every sample's
    /// label set (replacing an existing `key` label), keeping per-name
    /// label sort order. This is how a shard router distinguishes the N
    /// per-shard copies of the same metric family before merging them into
    /// one scrape: `snap.with_label("shard", "0")`.
    #[must_use]
    pub fn with_label(mut self, key: &str, value: &str) -> Self {
        fn relabel(labels: &mut Vec<(String, String)>, key: &str, value: &str) {
            labels.retain(|(k, _)| k != key);
            labels.push((key.to_string(), value.to_string()));
            labels.sort();
        }
        for c in &mut self.counters {
            relabel(&mut c.labels, key, value);
        }
        for g in &mut self.gauges {
            relabel(&mut g.labels, key, value);
        }
        for h in &mut self.histograms {
            relabel(&mut h.labels, key, value);
        }
        self.counters
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self.gauges
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self.histograms
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self
    }

    /// Looks up a counter sample by name (first match, any labels).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge sample by name (first match, any labels).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram sample by name (first match, any labels).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_round_trip_through_snapshot() {
        let reg = Registry::new();
        let c = reg.counter("requests_total", "Requests.");
        c.inc();
        c.add(2);
        assert_eq!(c.value(), 3);

        let g = reg.gauge("depth", "Queue depth.");
        g.set(4.0);
        g.sub(1.0);
        g.add(0.5);
        assert_eq!(g.value(), 3.5);
        g.sub(100.0);
        assert_eq!(g.value(), 0.0);

        let h = reg.histogram("latency_seconds", "Latency.");
        h.observe(0.010);
        h.observe(0.020);

        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("requests_total"), Some(3));
        assert_eq!(snap.gauge_value("depth"), Some(0.0));
        let hist = snap.histogram("latency_seconds").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(snap.help.len(), 3);
    }

    #[test]
    fn same_name_and_labels_share_a_cell() {
        let reg = Registry::new();
        reg.counter_with("hits", &[("model", "a")], "Hits.").inc();
        reg.counter_with("hits", &[("model", "a")], "Hits.").inc();
        reg.counter_with("hits", &[("model", "b")], "Hits.").inc();
        let snap = reg.snapshot();
        let values: Vec<u64> = snap.counters.iter().map(|c| c.value).collect();
        assert_eq!(values, vec![2, 1]); // sorted by labels: model=a (2 incs), model=b (1).
    }

    #[test]
    fn cross_thread_histogram_recording_merges_all_shards() {
        let reg = std::sync::Arc::new(Registry::new());
        let h = reg.histogram("h", "h");
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for k in 0..25 {
                        h.observe(0.001 * (1 + i * 25 + k) as f64);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(reg.snapshot().histogram("h").unwrap().count, 100);
    }

    #[test]
    fn merge_combines_registries() {
        let a = Registry::new();
        a.counter("a_total", "A.").inc();
        let b = Registry::new();
        b.counter("b_total", "B.").add(5);
        let mut snap = a.snapshot();
        snap.merge(b.snapshot());
        assert_eq!(snap.counter_value("a_total"), Some(1));
        assert_eq!(snap.counter_value("b_total"), Some(5));
        assert_eq!(snap.help.len(), 2);
    }

    #[test]
    fn with_label_distinguishes_shards_before_merging() {
        // Two shards with the same metric families; relabelling lets one
        // scrape hold both without the samples colliding.
        let mk = |n: u64| {
            let reg = Registry::new();
            reg.counter("done_total", "Done.").add(n);
            reg.counter_with("hits", &[("model", "a")], "Hits.").inc();
            reg.histogram("lat", "Latency.").observe(0.5);
            reg.snapshot()
        };
        let mut snap = mk(1).with_label("shard", "0");
        snap.merge(mk(7).with_label("shard", "1"));
        assert_eq!(snap.counters.len(), 4);
        let shard_of = |c: &CounterSample| {
            c.labels
                .iter()
                .find(|(k, _)| k == "shard")
                .map(|(_, v)| v.clone())
        };
        let done: Vec<_> = snap
            .counters
            .iter()
            .filter(|c| c.name == "done_total")
            .collect();
        assert_eq!(done.len(), 2);
        assert_eq!(shard_of(done[0]), Some("0".into()));
        assert_eq!(done[0].value, 1);
        assert_eq!(shard_of(done[1]), Some("1".into()));
        assert_eq!(done[1].value, 7);
        // Pre-existing labels survive next to the shard label, sorted.
        let hits = snap.counters.iter().find(|c| c.name == "hits").unwrap();
        assert_eq!(hits.labels.len(), 2);
        assert_eq!(snap.histograms.len(), 2);
        // Relabelling an existing key replaces, not duplicates.
        let re = mk(1).with_label("shard", "0").with_label("shard", "9");
        assert_eq!(shard_of(&re.counters[0]), Some("9".into()));
    }
}
