//! Log-linear histograms with bounded relative quantile error.
//!
//! Values are bucketed straight from their IEEE-754 bit pattern: the bucket
//! index is the 11-bit biased exponent concatenated with the top
//! [`GRID_BITS`] mantissa bits, giving `2^GRID_BITS` geometrically spaced
//! sub-buckets per octave. Every positive normal value `v` lands in a bucket
//! whose width is `lo / 2^GRID_BITS`, so reporting the bucket midpoint is
//! off by at most `lo / 2^(GRID_BITS+1) ≤ v / 2^(GRID_BITS+1)` — the
//! documented relative quantile error [`QUANTILE_RELATIVE_ERROR`].
//!
//! Sums, minima and maxima are stored as integer [`ticks`](value_to_ticks)
//! (nanoseconds when the recorded unit is seconds). Integer accumulation
//! makes cross-shard merges associative and commutative, so merging
//! per-thread shards in any order produces the same snapshot — byte for
//! byte once serialized.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Mantissa bits kept per bucket: 32 sub-buckets per power of two.
pub const GRID_BITS: u32 = 5;

/// Sub-buckets per octave (`2^GRID_BITS`).
pub const GRID: u32 = 1 << GRID_BITS;

/// Worst-case relative error of [`HistogramSnapshot::quantile`] for samples
/// that are positive normal `f64`s: half a bucket width, `1 / 2^(GRID_BITS+1)`.
pub const QUANTILE_RELATIVE_ERROR: f64 = 1.0 / (2 * GRID) as f64;

/// Integer ticks per recorded unit: 1 tick = 1e-9 (a nanosecond when the
/// recorded unit is seconds).
pub const TICKS_PER_UNIT: f64 = 1e9;

/// Converts a recorded value to integer ticks, rounding to nearest and
/// saturating at the `u64` range. Non-positive and non-finite values clamp
/// to the representable edge (`NaN` is rejected before this point).
pub fn value_to_ticks(v: f64) -> u64 {
    let scaled = v * TICKS_PER_UNIT;
    if scaled <= 0.0 {
        0
    } else if scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        scaled.round() as u64
    }
}

/// Converts integer ticks back to the recorded unit.
pub fn ticks_to_value(t: u64) -> f64 {
    t as f64 / TICKS_PER_UNIT
}

/// Bucket index of a value. Non-positive values, subnormals and `NaN` land
/// in bucket 0 ("zero or below"); positive values clamp to the normal range
/// first, so the index is monotone in the value.
pub fn bucket_index(v: f64) -> u32 {
    if v.is_nan() || v < f64::MIN_POSITIVE {
        return 0;
    }
    let bits = v.clamp(f64::MIN_POSITIVE, f64::MAX).to_bits();
    let exp = (bits >> 52) as u32;
    let sub = ((bits >> 47) & (GRID as u64 - 1)) as u32;
    (exp << GRID_BITS) | sub
}

/// Inclusive lower bound of a bucket (0.0 for bucket 0).
pub fn bucket_lower(idx: u32) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    let exp = (idx >> GRID_BITS) as u64;
    let sub = (idx & (GRID - 1)) as u64;
    f64::from_bits((exp << 52) | (sub << 47))
}

/// Exclusive upper bound of a bucket (`+Inf` past the top normal octave).
pub fn bucket_upper(idx: u32) -> f64 {
    if idx == 0 {
        return f64::MIN_POSITIVE;
    }
    bucket_lower(idx + 1)
}

/// Representative value reported for samples in a bucket: the midpoint, or
/// the lower bound when the upper bound is unbounded, or 0.0 for bucket 0.
pub fn bucket_representative(idx: u32) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    let lo = bucket_lower(idx);
    let hi = bucket_upper(idx);
    if hi.is_finite() {
        lo / 2.0 + hi / 2.0
    } else {
        lo
    }
}

/// One shard's (or one merged histogram's) accumulation state.
#[derive(Debug, Default)]
pub(crate) struct HistCore {
    count: u64,
    sum_ticks: u64,
    min_ticks: u64,
    max_ticks: u64,
    buckets: BTreeMap<u32, u64>,
}

impl HistCore {
    /// Records one sample. `NaN` samples are dropped.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let t = value_to_ticks(v);
        if self.count == 0 {
            self.min_ticks = t;
            self.max_ticks = t;
        } else {
            self.min_ticks = self.min_ticks.min(t);
            self.max_ticks = self.max_ticks.max(t);
        }
        self.count += 1;
        self.sum_ticks = self.sum_ticks.saturating_add(t);
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
    }

    /// Folds another shard into this one. Integer state makes this
    /// commutative and associative, so shard order never matters.
    pub fn merge_from(&mut self, other: &HistCore) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min_ticks = other.min_ticks;
            self.max_ticks = other.max_ticks;
        } else {
            self.min_ticks = self.min_ticks.min(other.min_ticks);
            self.max_ticks = self.max_ticks.max(other.max_ticks);
        }
        self.count += other.count;
        self.sum_ticks = self.sum_ticks.saturating_add(other.sum_ticks);
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum_ticks: self.sum_ticks,
            min_ticks: self.min_ticks,
            max_ticks: self.max_ticks,
            buckets: self
                .buckets
                .iter()
                .map(|(&index, &count)| BucketCount { index, count })
                .collect(),
        }
    }
}

/// Occupancy of one log-linear bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Bucket index (see [`bucket_index`]).
    pub index: u32,
    /// Samples recorded in the bucket.
    pub count: u64,
}

/// A point-in-time, mergeable view of a histogram.
///
/// All fields are integers (`ticks` are 1e-9 units of the recorded value),
/// so merging is order-independent and JSON round-trips are byte-identical.
/// `min_ticks`/`max_ticks` are meaningful only when `count > 0`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples in ticks (saturating).
    pub sum_ticks: u64,
    /// Smallest sample in ticks.
    pub min_ticks: u64,
    /// Largest sample in ticks.
    pub max_ticks: u64,
    /// Occupied buckets in ascending index order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Sum of all samples in the recorded unit.
    pub fn sum(&self) -> f64 {
        ticks_to_value(self.sum_ticks)
    }

    /// Mean sample, if any samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum() / self.count as f64)
    }

    /// Smallest sample, if any samples were recorded.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then(|| ticks_to_value(self.min_ticks))
    }

    /// Largest sample, if any samples were recorded.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then(|| ticks_to_value(self.max_ticks))
    }

    /// Estimate of the `q`-quantile (`q` clamped to `[0, 1]`): the
    /// representative of the bucket holding the sample of rank
    /// `max(1, ceil(q·count))`. For positive normal samples the estimate is
    /// within [`QUANTILE_RELATIVE_ERROR`] of the exact ranked sample.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for b in &self.buckets {
            cum += b.count;
            if cum >= rank {
                return Some(bucket_representative(b.index));
            }
        }
        // Unreachable when bucket counts sum to `count`; fall back to max.
        Some(ticks_to_value(self.max_ticks))
    }

    /// Folds another snapshot into this one (order-independent).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min_ticks = other.min_ticks;
            self.max_ticks = other.max_ticks;
        } else {
            self.min_ticks = self.min_ticks.min(other.min_ticks);
            self.max_ticks = self.max_ticks.max(other.max_ticks);
        }
        self.count += other.count;
        self.sum_ticks = self.sum_ticks.saturating_add(other.sum_ticks);
        let mut merged: BTreeMap<u32, u64> =
            self.buckets.iter().map(|b| (b.index, b.count)).collect();
        for b in &other.buckets {
            *merged.entry(b.index).or_insert(0) += b.count;
        }
        self.buckets = merged
            .into_iter()
            .map(|(index, count)| BucketCount { index, count })
            .collect();
    }

    /// Difference against an earlier snapshot of the same histogram:
    /// bucket-wise and sum/count subtraction, for interval measurements
    /// between two scrapes. Min/max cannot be recovered for the interval and
    /// are taken from `self`.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: BTreeMap<u32, u64> =
            self.buckets.iter().map(|b| (b.index, b.count)).collect();
        for b in &earlier.buckets {
            let slot = buckets.entry(b.index).or_insert(0);
            *slot = slot.saturating_sub(b.count);
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum_ticks: self.sum_ticks.saturating_sub(earlier.sum_ticks),
            min_ticks: self.min_ticks,
            max_ticks: self.max_ticks,
            buckets: buckets
                .into_iter()
                .filter(|&(_, count)| count > 0)
                .map(|(index, count)| BucketCount { index, count })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_bracket() {
        let values = [
            1e-300, 1e-9, 0.001, 0.5, 0.999, 1.0, 1.5, 2.0, 3.0, 1e6, 1e300,
        ];
        let mut prev = 0;
        for &v in &values {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index not monotone at {v}");
            prev = idx;
            assert!(
                bucket_lower(idx) <= v && v < bucket_upper(idx),
                "bounds miss {v}"
            );
        }
    }

    #[test]
    fn special_values_land_in_bucket_zero_or_top() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 2.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), bucket_index(f64::MAX));
        assert_eq!(bucket_representative(0), 0.0);
        assert!(bucket_upper(bucket_index(f64::MAX)).is_infinite());
    }

    #[test]
    fn representative_is_within_documented_relative_error() {
        for &v in &[1e-6, 0.013, 0.5, 1.0, 7.3, 12345.0, 9.9e8] {
            let rep = bucket_representative(bucket_index(v));
            assert!(
                (rep - v).abs() <= v * QUANTILE_RELATIVE_ERROR,
                "rep {rep} off by more than {QUANTILE_RELATIVE_ERROR} at {v}"
            );
        }
    }

    #[test]
    fn core_records_and_snapshots() {
        let mut core = HistCore::default();
        for v in [0.001, 0.002, 0.003, 0.004] {
            core.record(v);
        }
        core.record(f64::NAN); // dropped
        let snap = core.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.min(), Some(0.001));
        assert_eq!(snap.max(), Some(0.004));
        assert!((snap.sum() - 0.01).abs() < 1e-9);
        assert!((snap.mean().unwrap() - 0.0025).abs() < 1e-9);
        let p50 = snap.quantile(0.5).unwrap();
        assert!((p50 - 0.002).abs() <= 0.002 * QUANTILE_RELATIVE_ERROR);
    }

    #[test]
    fn merge_matches_recording_into_one_core() {
        let mut a = HistCore::default();
        let mut b = HistCore::default();
        let mut whole = HistCore::default();
        for (i, v) in [0.5, 0.25, 3.0, 0.125, 8.0, 0.5].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
            whole.record(*v);
        }
        let mut ab = HistCore::default();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let mut ba = HistCore::default();
        ba.merge_from(&b);
        ba.merge_from(&a);
        assert_eq!(ab.snapshot(), whole.snapshot());
        assert_eq!(ba.snapshot(), whole.snapshot());
    }

    #[test]
    fn delta_since_recovers_interval_counts() {
        let mut core = HistCore::default();
        core.record(0.1);
        core.record(0.2);
        let before = core.snapshot();
        core.record(0.4);
        core.record(0.4);
        let delta = core.snapshot().delta_since(&before);
        assert_eq!(delta.count, 2);
        let p99 = delta.quantile(0.99).unwrap();
        assert!((p99 - 0.4).abs() <= 0.4 * QUANTILE_RELATIVE_ERROR);
    }

    #[test]
    fn empty_histogram_reports_none() {
        let snap = HistCore::default().snapshot();
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.mean(), None);
        assert_eq!(snap.min(), None);
        assert_eq!(snap.max(), None);
    }
}
