//! [`PhaseProfiler`]: a [`Probe`] that turns the span stream into cumulative
//! per-phase wall-clock totals and collapsed-stack (flamegraph-compatible)
//! text.
//!
//! The profiler reports `enabled() = false`, so instrumentation sites skip
//! every expensive statistic (zonotope widths, storage snapshots) and the
//! observed computation stays bitwise identical to an unprobed run — the
//! profiler only timestamps span entry/exit. Open spans are tracked per
//! thread (serve workers run concurrent requests through one shared
//! profiler), and each exit attributes *self time* (elapsed minus child
//! spans) to the collapsed call path, e.g.
//! `propagate;encoder_layer;attention 1234567`.

use deept_telemetry::{Probe, SpanKind};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::Instant;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Frame {
    group: &'static str,
    started: Instant,
    child_ns: u64,
}

/// Self-time and call count of one collapsed call path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStat {
    /// Nanoseconds spent in this path excluding child spans.
    pub self_ns: u64,
    /// Times the path was the innermost open span at exit.
    pub calls: u64,
}

/// Cumulative totals of one phase (span group).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Inclusive wall-clock nanoseconds (children included).
    pub total_ns: u64,
    /// Self-time nanoseconds (children excluded), summed over all paths
    /// ending in this phase.
    pub self_ns: u64,
    /// Completed spans of this phase.
    pub calls: u64,
}

#[derive(Default)]
struct ProfState {
    open: HashMap<ThreadId, Vec<Frame>>,
    paths: BTreeMap<String, PathStat>,
    phases: BTreeMap<&'static str, PhaseTotal>,
}

/// See the module docs.
#[derive(Default)]
pub struct PhaseProfiler {
    state: Mutex<ProfState>,
}

impl PhaseProfiler {
    /// A fresh profiler with no recorded spans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative totals per phase, sorted by phase name.
    pub fn phase_totals(&self) -> Vec<(String, PhaseTotal)> {
        let state = lock(&self.state);
        state
            .phases
            .iter()
            .map(|(&group, &stat)| (group.to_string(), stat))
            .collect()
    }

    /// Collapsed-stack text: one `path;to;frame self_ns` line per path,
    /// sorted by path. Feed directly to `flamegraph.pl` (the sample weight
    /// is nanoseconds of self time).
    pub fn collapsed(&self) -> String {
        let state = lock(&self.state);
        let mut out = String::new();
        for (path, stat) in &state.paths {
            out.push_str(path);
            out.push(' ');
            out.push_str(&stat.self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Drops all recorded totals (open spans on live threads are kept).
    pub fn reset(&self) {
        let mut state = lock(&self.state);
        state.paths.clear();
        state.phases.clear();
    }
}

impl Probe for PhaseProfiler {
    // `false`: sites must not compute expensive stats for the profiler, and
    // the bitwise-identical guarantee of unprobed runs must hold.
    fn enabled(&self) -> bool {
        false
    }

    fn span_enter(&self, kind: SpanKind) {
        let now = Instant::now();
        let mut state = lock(&self.state);
        state
            .open
            .entry(std::thread::current().id())
            .or_default()
            .push(Frame {
                group: kind.group(),
                started: now,
                child_ns: 0,
            });
    }

    fn span_exit(
        &self,
        kind: SpanKind,
        _stats: Option<deept_telemetry::ZonotopeStats>,
        _symbols_created: usize,
    ) {
        let mut state = lock(&self.state);
        let stack = match state.open.get_mut(&std::thread::current().id()) {
            Some(stack) => stack,
            None => return,
        };
        // Unbalanced exits (possible if a site returns early) are dropped.
        let frame = match stack.last() {
            Some(f) if f.group == kind.group() => stack.pop().unwrap(),
            _ => return,
        };
        let elapsed = frame.started.elapsed().as_nanos() as u64;
        let self_ns = elapsed.saturating_sub(frame.child_ns);
        let mut path = String::new();
        for f in stack.iter() {
            path.push_str(f.group);
            path.push(';');
        }
        path.push_str(frame.group);
        if let Some(parent) = stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(elapsed);
        }
        let p = state.paths.entry(path).or_default();
        p.self_ns = p.self_ns.saturating_add(self_ns);
        p.calls += 1;
        let g = state.phases.entry(frame.group).or_default();
        g.total_ns = g.total_ns.saturating_add(elapsed);
        g.self_ns = g.self_ns.saturating_add(self_ns);
        g.calls += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_build_collapsed_paths_with_self_time() {
        let prof = PhaseProfiler::new();
        prof.span_enter(SpanKind::Propagate);
        prof.span_enter(SpanKind::EncoderLayer(0));
        prof.span_enter(SpanKind::Attention);
        std::thread::sleep(std::time::Duration::from_millis(2));
        prof.span_exit(SpanKind::Attention, None, 0);
        prof.span_exit(SpanKind::EncoderLayer(0), None, 0);
        prof.span_exit(SpanKind::Propagate, None, 0);

        let collapsed = prof.collapsed();
        assert!(collapsed.contains("propagate;encoder_layer;attention "));
        assert!(collapsed.contains("propagate;encoder_layer "));
        assert!(collapsed.lines().any(|l| l.starts_with("propagate ")));

        let phases: std::collections::BTreeMap<_, _> = prof.phase_totals().into_iter().collect();
        let prop = phases["propagate"];
        let attn = phases["attention"];
        assert_eq!(prop.calls, 1);
        assert!(attn.total_ns >= 2_000_000, "attention span too short");
        // Inclusive propagate covers the attention leaf; self excludes it.
        assert!(prop.total_ns >= attn.total_ns);
        assert!(prop.self_ns <= prop.total_ns - attn.self_ns + 1);

        prof.reset();
        assert!(prof.collapsed().is_empty());
    }

    #[test]
    fn spans_on_different_threads_do_not_interleave() {
        let prof = std::sync::Arc::new(PhaseProfiler::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let prof = prof.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        prof.span_enter(SpanKind::Propagate);
                        prof.span_enter(SpanKind::EncoderLayer(i));
                        prof.span_exit(SpanKind::EncoderLayer(i), None, 0);
                        prof.span_exit(SpanKind::Propagate, None, 0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let phases: std::collections::BTreeMap<_, _> = prof.phase_totals().into_iter().collect();
        assert_eq!(phases["propagate"].calls, 200);
        assert_eq!(phases["encoder_layer"].calls, 200);
    }

    #[test]
    fn unbalanced_exit_is_ignored() {
        let prof = PhaseProfiler::new();
        prof.span_exit(SpanKind::Softmax, None, 0); // no matching enter
        prof.span_enter(SpanKind::Propagate);
        prof.span_exit(SpanKind::Softmax, None, 0); // group mismatch
        prof.span_exit(SpanKind::Propagate, None, 0);
        assert_eq!(prof.phase_totals().len(), 1);
    }
}
