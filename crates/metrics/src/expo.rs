//! Prometheus text exposition (format version 0.0.4) of a
//! [`RegistrySnapshot`].
//!
//! Hand-rolled on purpose: the format is `# HELP` / `# TYPE` comment lines
//! followed by `name{label="value"} sample` lines, with histograms expanded
//! into cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
//! Bucket upper bounds come straight from the log-linear grid
//! ([`crate::hist::bucket_upper`]), so `le` values are exact and monotone.

use crate::hist::{bucket_upper, HistogramSnapshot};
use crate::registry::RegistrySnapshot;
use std::fmt::Write as _;

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        v.to_string()
    }
}

/// Renders label pairs (plus an optional extra pair, used for `le`) as
/// `{k="v",...}`, or the empty string when there are no labels.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn header(out: &mut String, name: &str, kind: &str, help: Option<&str>, last: &mut String) {
    if last == name {
        return;
    }
    if let Some(help) = help {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    }
    let _ = writeln!(out, "# TYPE {name} {kind}");
    last.clear();
    last.push_str(name);
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    hist: &HistogramSnapshot,
) {
    let mut cum = 0u64;
    for b in &hist.buckets {
        cum += b.count;
        let le = fmt_value(bucket_upper(b.index));
        let block = label_block(labels, Some(("le", &le)));
        let _ = writeln!(out, "{name}_bucket{block} {cum}");
    }
    let block = label_block(labels, Some(("le", "+Inf")));
    let _ = writeln!(out, "{name}_bucket{block} {}", hist.count);
    let _ = writeln!(
        out,
        "{name}_sum{} {}",
        label_block(labels, None),
        fmt_value(hist.sum())
    );
    let _ = writeln!(
        out,
        "{name}_count{} {}",
        label_block(labels, None),
        hist.count
    );
}

impl RegistrySnapshot {
    /// Renders the snapshot in Prometheus text exposition format 0.0.4.
    pub fn to_prometheus(&self) -> String {
        let help: std::collections::BTreeMap<&str, &str> = self
            .help
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let mut out = String::new();
        let mut last = String::new();
        for c in &self.counters {
            header(
                &mut out,
                &c.name,
                "counter",
                help.get(c.name.as_str()).copied(),
                &mut last,
            );
            let _ = writeln!(
                out,
                "{}{} {}",
                c.name,
                label_block(&c.labels, None),
                c.value
            );
        }
        for g in &self.gauges {
            header(
                &mut out,
                &g.name,
                "gauge",
                help.get(g.name.as_str()).copied(),
                &mut last,
            );
            let _ = writeln!(
                out,
                "{}{} {}",
                g.name,
                label_block(&g.labels, None),
                fmt_value(g.value)
            );
        }
        for h in &self.histograms {
            header(
                &mut out,
                &h.name,
                "histogram",
                help.get(h.name.as_str()).copied(),
                &mut last,
            );
            render_histogram(&mut out, &h.name, &h.labels, &h.hist);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn exposition_contains_types_samples_and_cumulative_buckets() {
        let reg = Registry::new();
        reg.counter("deept_requests_total", "Total requests.")
            .add(7);
        reg.gauge("deept_queue_depth", "Jobs queued.").set(2.0);
        let h = reg.histogram("deept_request_seconds", "End-to-end latency.");
        h.observe(0.010);
        h.observe(0.020);
        h.observe(0.020);
        let text = reg.snapshot().to_prometheus();

        assert!(text.contains("# HELP deept_requests_total Total requests.\n"));
        assert!(text.contains("# TYPE deept_requests_total counter\n"));
        assert!(text.contains("deept_requests_total 7\n"));
        assert!(text.contains("# TYPE deept_queue_depth gauge\n"));
        assert!(text.contains("deept_queue_depth 2\n"));
        assert!(text.contains("# TYPE deept_request_seconds histogram\n"));
        assert!(text.contains("deept_request_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("deept_request_seconds_count 3\n"));

        // Buckets are cumulative and monotone.
        let mut prev = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("deept_request_seconds_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "non-monotone bucket line: {line}");
            prev = v;
        }
        assert_eq!(prev, 3);
    }

    #[test]
    fn labels_are_rendered_and_escaped() {
        let reg = Registry::new();
        reg.counter_with(
            "deept_model_requests_total",
            &[("model", "a\"b\\c")],
            "Per-model.",
        )
        .inc();
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("deept_model_requests_total{model=\"a\\\"b\\\\c\"} 1\n"));
    }
}
