//! **deept-metrics** — live metrics for DeepT-rs.
//!
//! A process-friendly registry of named [`Counter`]s, [`Gauge`]s and
//! log-linear-bucket [`Histogram`]s (bounded relative quantile error,
//! mergeable across threads via per-thread shards flushed on read), plus
//! [`PhaseProfiler`], a sampling self-profiler that turns the
//! [`deept_telemetry::Probe`] span stream into cumulative per-phase
//! wall-clock totals and collapsed-stack (flamegraph-compatible) text.
//!
//! Two kinds of registry:
//!
//! * **Per-instance** ([`Registry::new`]) — always on; `deept-serve` gives
//!   each server its own so request counters are exact per server.
//! * **Process-global** ([`global`]) — shared by hot-path library crates
//!   (`deept-tensor`, `deept-core`, `deept-verifier`); *gated* on
//!   [`enabled`], controlled by the `DEEPT_METRICS` environment variable
//!   (`off`/`0`/`false` disable it; anything else, including unset, enables
//!   it). Gated writes are a single relaxed atomic load when disabled.
//!
//! Snapshots ([`RegistrySnapshot`]) are plain serde structs with integer
//! histogram state, so they merge order-independently, round-trip through
//! JSON byte-identically, and render to Prometheus text exposition format
//! 0.0.4 via [`RegistrySnapshot::to_prometheus`].

mod expo;
pub mod hist;
mod profile;
mod registry;

pub use hist::{
    bucket_index, bucket_lower, bucket_representative, bucket_upper, ticks_to_value,
    value_to_ticks, BucketCount, HistogramSnapshot, GRID, GRID_BITS, QUANTILE_RELATIVE_ERROR,
};
pub use profile::{PathStat, PhaseProfiler, PhaseTotal};
pub use registry::{
    Counter, CounterSample, Gauge, GaugeSample, Histogram, HistogramSample, Registry,
    RegistrySnapshot,
};

use std::sync::atomic::{AtomicI8, Ordering};
use std::sync::OnceLock;

/// Tri-state runtime override set by [`set_enabled`]: -1 = follow the
/// environment, 0 = forced off, 1 = forced on.
static OVERRIDE: AtomicI8 = AtomicI8::new(-1);
static FROM_ENV: OnceLock<bool> = OnceLock::new();

/// Whether gated (process-global) metrics are currently recording.
///
/// Reads the `DEEPT_METRICS` environment variable once (default: enabled;
/// `off`, `0` or `false` disable), unless overridden by [`set_enabled`].
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => *FROM_ENV.get_or_init(|| {
            !matches!(
                std::env::var("DEEPT_METRICS").as_deref(),
                Ok("off") | Ok("0") | Ok("false")
            )
        }),
    }
}

/// Overrides the `DEEPT_METRICS` gate at runtime: `Some(on)` forces the
/// state, `None` returns control to the environment variable. Used by the
/// overhead bench and the metrics-identity regression test to flip the gate
/// within one process.
pub fn set_enabled(on: Option<bool>) {
    OVERRIDE.store(on.map_or(-1, i8::from), Ordering::Relaxed);
}

/// The process-wide gated registry that hot-path crates publish into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::gated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_override_controls_global_writes() {
        let c = global().counter("deept_metrics_selftest_total", "Gate test counter.");
        set_enabled(Some(false));
        c.inc();
        let off = c.value();
        set_enabled(Some(true));
        c.inc();
        let on = c.value();
        set_enabled(None);
        assert_eq!(off, 0, "gated counter must drop writes while disabled");
        assert_eq!(on, 1);
    }
}
