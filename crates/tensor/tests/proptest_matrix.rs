//! Property tests for the matrix substrate: algebraic identities that the
//! abstract domain silently relies on.

use deept_tensor::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("sized"))
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in matrix(3, 5)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(3, 4),
        b in matrix(4, 2),
        c in matrix(4, 2),
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(3, 4), b in matrix(2, 4)) {
        // a · bᵀ computed directly equals the explicit transpose product.
        let direct = a.matmul_transpose_b(&b);
        let explicit = a.matmul(&b.transpose());
        prop_assert_eq!(direct, explicit);
    }

    #[test]
    fn hstack_slice_round_trip(a in matrix(3, 2), b in matrix(3, 4)) {
        let h = a.hstack(&b);
        prop_assert_eq!(h.slice_cols(0, 2), a);
        prop_assert_eq!(h.slice_cols(2, 6), b);
    }

    #[test]
    fn vecmat_matches_matvec_of_transpose(a in matrix(3, 4), v in proptest::collection::vec(-5.0f64..5.0, 3)) {
        let lhs = a.vecmat(&v);
        let rhs = a.transpose().matvec(&v);
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn row_abs_sums_bound_row_sums(a in matrix(4, 4)) {
        for (abs, plain) in a.row_abs_sums().iter().zip(a.row_sums()) {
            prop_assert!(*abs + 1e-12 >= plain.abs());
        }
    }
}
