//! Property tests for the matrix substrate: algebraic identities that the
//! abstract domain silently relies on, and bitwise equivalence of the
//! blocked/parallel kernels with their naive references at any worker
//! count.

use deept_tensor::{parallel, Matrix};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("sized"))
}

/// Random (n×k, k×m, m×k, k×n) matrix quadruple with all dimensions free,
/// covering every operand layout of the three product kernels.
#[allow(clippy::type_complexity)]
fn kernel_operands() -> impl Strategy<Value = (Matrix, Matrix, Matrix, Matrix)> {
    (1usize..=7, 1usize..=9, 1usize..=7)
        .prop_flat_map(|(n, k, m)| (matrix(n, k), matrix(k, m), matrix(m, k), matrix(k, n)))
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in matrix(3, 5)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(3, 4),
        b in matrix(4, 2),
        c in matrix(4, 2),
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(3, 4), b in matrix(2, 4)) {
        // a · bᵀ computed directly equals the explicit transpose product.
        let direct = a.matmul_transpose_b(&b);
        let explicit = a.matmul(&b.transpose());
        prop_assert_eq!(direct, explicit);
    }

    #[test]
    fn hstack_slice_round_trip(a in matrix(3, 2), b in matrix(3, 4)) {
        let h = a.hstack(&b);
        prop_assert_eq!(h.slice_cols(0, 2), a);
        prop_assert_eq!(h.slice_cols(2, 6), b);
    }

    #[test]
    fn vecmat_matches_matvec_of_transpose(a in matrix(3, 4), v in proptest::collection::vec(-5.0f64..5.0, 3)) {
        let lhs = a.vecmat(&v);
        let rhs = a.transpose().matvec(&v);
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn row_abs_sums_bound_row_sums(a in matrix(4, 4)) {
        for (abs, plain) in a.row_abs_sums().iter().zip(a.row_sums()) {
            prop_assert!(*abs + 1e-12 >= plain.abs());
        }
    }

    #[test]
    fn blocked_kernels_match_naive_bitwise_at_any_worker_count(
        (a, b, bt, at) in kernel_operands(),
    ) {
        let _g = parallel::test_lock();
        let expect_mm = a.matmul_naive(&b);
        let expect_tb = a.matmul_transpose_b_naive(&bt);
        let expect_ta = at.transpose_a_matmul_naive(&b);
        let mut got = Vec::new();
        for mode in KERNEL_MODES {
            parallel::set_kernel_mode(Some(mode));
            for threads in [1usize, 2, 8] {
                parallel::set_thread_override(Some(threads));
                got.push((
                    mode,
                    threads,
                    a.matmul(&b),
                    a.matmul_transpose_b(&bt),
                    at.transpose_a_matmul(&b),
                ));
            }
        }
        parallel::set_kernel_mode(None);
        parallel::set_thread_override(None);
        for (mode, threads, mm, tb, ta) in got {
            prop_assert_eq!(&mm, &expect_mm, "matmul differs ({:?}, {} threads)", mode, threads);
            prop_assert_eq!(
                &tb, &expect_tb,
                "matmul_transpose_b differs ({:?}, {} threads)", mode, threads
            );
            prop_assert_eq!(
                &ta, &expect_ta,
                "transpose_a_matmul differs ({:?}, {} threads)", mode, threads
            );
        }
    }
}

const KERNEL_MODES: [parallel::KernelMode; 3] = [
    parallel::KernelMode::Naive,
    parallel::KernelMode::Blocked,
    parallel::KernelMode::Simd,
];

/// The proptest shapes stay below the KC=128/JC=64 blocking thresholds, so
/// this deterministic case crosses both panel boundaries (and the 4-lane
/// SIMD stripes, including ragged tails) to pin bitwise equality where the
/// kernels actually reorder their loops.
#[test]
fn large_kernels_bitwise_identical_across_modes() {
    let _g = parallel::test_lock();
    let gen = |rows: usize, cols: usize, salt: u64| {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(salt);
                ((x >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect();
        Matrix::from_vec(rows, cols, data).expect("sized")
    };
    // k = 261 crosses two KC=128 panels with a ragged tail; m = 70 crosses
    // a JC=64 panel; neither is a multiple of the 4-lane stripe.
    let a = gen(9, 261, 1);
    let b = gen(261, 70, 2);
    let bt = gen(70, 261, 3);
    let expect_mm = a.matmul_naive(&b);
    let expect_tb = a.matmul_transpose_b_naive(&bt);
    for mode in KERNEL_MODES {
        parallel::set_kernel_mode(Some(mode));
        for threads in [1usize, 3] {
            parallel::set_thread_override(Some(threads));
            assert_eq!(
                a.matmul(&b),
                expect_mm,
                "matmul ({mode:?}, {threads} threads)"
            );
            assert_eq!(
                a.matmul_transpose_b(&bt),
                expect_tb,
                "matmul_transpose_b ({mode:?}, {threads} threads)"
            );
        }
    }
    parallel::set_kernel_mode(None);
    parallel::set_thread_override(None);
}
