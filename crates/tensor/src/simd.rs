//! Runtime-dispatched SIMD inner kernels.
//!
//! Every function here comes in up to three flavours — AVX2 (x86_64), NEON
//! (aarch64) and a portable scalar fallback — selected once per process by
//! [`active_isa`] via `std::arch` feature detection. The cardinal rule is
//! **bitwise identity with the blocked scalar kernels**: each vector lane
//! replays exactly one scalar accumulator in exactly the scalar order, the
//! lane fold mirrors the scalar fold, and FMA is never used (its single
//! rounding would differ from the separate multiply-then-add the scalar
//! code performs). Under that discipline `DEEPT_KERNEL=simd` is a pure
//! throughput knob: same bits, fewer cycles.
//!
//! Two accumulation shapes appear:
//!
//! * **4-lane stripes** ([`dot`], [`l1_norm`], [`sumsq`]): lane `l` sums
//!   elements `4i + l`, folded `(l0 + l1) + (l2 + l3) + tail` — the shape
//!   [`crate::vector::dot`] has always pinned.
//! * **Sequential single accumulators** ([`axpy`], [`abs_accumulate`],
//!   [`dot4`]): each output element keeps one accumulator walked in
//!   ascending `k`; vectorization only batches *independent* outputs.
//!
//! Dispatches are counted into the global metrics registry
//! (`deept_simd_dispatch_total{isa=...}`) so `/metrics` and `--trace` can
//! prove which ISA actually ran — a silent scalar fallback in CI would
//! otherwise be invisible.

use std::sync::OnceLock;

/// Instruction set selected at runtime for the SIMD kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// x86_64 AVX2 (4×f64 lanes). FMA is deliberately not used even when
    /// available — see the module docs.
    Avx2,
    /// aarch64 NEON (2×f64 lanes, paired to emulate the 4-lane shapes).
    Neon,
    /// Portable scalar loops, bitwise-identical to the vector paths.
    Scalar,
}

impl Isa {
    /// Stable label used for metrics and trace output.
    pub fn label(self) -> &'static str {
        match self {
            Isa::Avx2 => "avx2",
            Isa::Neon => "neon",
            Isa::Scalar => "scalar",
        }
    }
}

fn detect() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Isa::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Isa::Neon;
        }
    }
    Isa::Scalar
}

/// The ISA the SIMD kernels will use, detected once per process.
pub fn active_isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(detect)
}

/// Records one SIMD-mode kernel dispatch under the active ISA label.
///
/// Called at coarse kernel entry points (a whole matmul, a whole ε-scan),
/// never per element, so the counter costs nothing measurable.
pub fn note_dispatch() {
    static COUNTER: OnceLock<deept_metrics::Counter> = OnceLock::new();
    COUNTER
        .get_or_init(|| {
            deept_metrics::global().counter_with(
                "deept_simd_dispatch_total",
                &[("isa", active_isa().label())],
                "SIMD-mode kernel dispatches by runtime-detected ISA.",
            )
        })
        .inc();
}

// ---------------------------------------------------------------------------
// Scalar reference bodies. These ARE the semantics: every vector flavour
// below must match them bitwise, and they double as the non-x86/ARM path.
// ---------------------------------------------------------------------------

fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    let mut lanes = [0.0f64; 4];
    for (xa, xb) in ca.zip(cb) {
        lanes[0] += xa[0] * xb[0];
        lanes[1] += xa[1] * xb[1];
        lanes[2] += xa[2] * xb[2];
        lanes[3] += xa[3] * xb[3];
    }
    let mut tail = 0.0;
    for (&x, &y) in ra.iter().zip(rb) {
        tail += x * y;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

fn axpy_scalar(dst: &mut [f64], a: f64, b: &[f64]) {
    for (o, &x) in dst.iter_mut().zip(b) {
        *o += a * x;
    }
}

fn axpy4_scalar(dst: &mut [f64], a: [f64; 4], b: [&[f64]; 4]) {
    // One pass, four chained mul-adds per element — bitwise identical to
    // four sequential `axpy_scalar` passes (the per-element fold order is
    // the same), but the destination is loaded and stored once.
    for (j, o) in dst.iter_mut().enumerate() {
        let mut acc = *o;
        acc += a[0] * b[0][j];
        acc += a[1] * b[1][j];
        acc += a[2] * b[2][j];
        acc += a[3] * b[3][j];
        *o = acc;
    }
}

fn wabs_axpy_scalar(dst: &mut [f64], w: f64, row: &[f64]) {
    for (o, &x) in dst.iter_mut().zip(row) {
        *o += w * x.abs();
    }
}

fn wabs_axpy4_scalar(dst: &mut [f64], w: [f64; 4], rows: [&[f64]; 4]) {
    for (j, o) in dst.iter_mut().enumerate() {
        let mut acc = *o;
        acc += w[0] * rows[0][j].abs();
        acc += w[1] * rows[1][j].abs();
        acc += w[2] * rows[2][j].abs();
        acc += w[3] * rows[3][j].abs();
        *o = acc;
    }
}

fn dot4_scalar(a: &[f64], pack: &[f64]) -> [f64; 4] {
    let mut acc = [0.0f64; 4];
    for (k, &av) in a.iter().enumerate() {
        let p = &pack[k * 4..k * 4 + 4];
        acc[0] += av * p[0];
        acc[1] += av * p[1];
        acc[2] += av * p[2];
        acc[3] += av * p[3];
    }
    acc
}

fn abs_accumulate_scalar(dst: &mut [f64], row: &[f64]) {
    for (o, &x) in dst.iter_mut().zip(row) {
        *o += x.abs();
    }
}

fn wrows4_scalar(dst4: &mut [f64], m: usize, wq: &[f64], b: &[f64], kdim: usize) {
    // Four output rows at stride `m`; element (l, j) accumulates
    // `Σ_k wq[4k + l] * b[k*m + j]` in ascending `k` — the naive chain.
    for l in 0..4 {
        for j in 0..m {
            let mut acc = dst4[l * m + j];
            for k in 0..kdim {
                acc += wq[k * 4 + l] * b[k * m + j];
            }
            dst4[l * m + j] = acc;
        }
    }
}

fn l1_rows4_scalar(acc: &mut [f64; 4], rows: [&[f64]; 4]) {
    // Four independent per-row chains: lane `l` continues `acc[l]` over
    // `rows[l]` in ascending column order — exactly the row-at-a-time
    // scalar scan, four rows in flight.
    for l in 0..4 {
        let mut a = acc[l];
        for &x in rows[l] {
            a += x.abs();
        }
        acc[l] = a;
    }
}

fn l1_norm_scalar(a: &[f64]) -> f64 {
    let c = a.chunks_exact(4);
    let r = c.remainder();
    let mut lanes = [0.0f64; 4];
    for x in c {
        lanes[0] += x[0].abs();
        lanes[1] += x[1].abs();
        lanes[2] += x[2].abs();
        lanes[3] += x[3].abs();
    }
    let mut tail = 0.0;
    for &x in r {
        tail += x.abs();
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

fn sumsq_scalar(a: &[f64]) -> f64 {
    let c = a.chunks_exact(4);
    let r = c.remainder();
    let mut lanes = [0.0f64; 4];
    for x in c {
        lanes[0] += x[0] * x[0];
        lanes[1] += x[1] * x[1];
        lanes[2] += x[2] * x[2];
        lanes[3] += x[3] * x[3];
    }
    let mut tail = 0.0;
    for &x in r {
        tail += x * x;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

// ---------------------------------------------------------------------------
// AVX2 (x86_64): 4×f64 ymm lanes map 1:1 onto the 4-lane stripes.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Folds a ymm of lane accumulators exactly like the scalar code:
    /// `(l0 + l1) + (l2 + l3)`.
    #[inline]
    unsafe fn fold_lanes(acc: __m256d) -> f64 {
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let n4 = n - n % 4;
        let mut acc = _mm256_setzero_pd();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < n4 {
            let va = _mm256_loadu_pd(pa.add(i));
            let vb = _mm256_loadu_pd(pb.add(i));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
            i += 4;
        }
        let mut tail = 0.0;
        while i < n {
            tail += *pa.add(i) * *pb.add(i);
            i += 1;
        }
        fold_lanes(acc) + tail
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(dst: &mut [f64], a: f64, b: &[f64]) {
        let n = dst.len().min(b.len());
        let n4 = n - n % 4;
        let va = _mm256_set1_pd(a);
        let (pd, pb) = (dst.as_mut_ptr(), b.as_ptr());
        let mut i = 0;
        while i < n4 {
            let vo = _mm256_loadu_pd(pd.add(i));
            let vb = _mm256_loadu_pd(pb.add(i));
            _mm256_storeu_pd(pd.add(i), _mm256_add_pd(vo, _mm256_mul_pd(va, vb)));
            i += 4;
        }
        while i < n {
            *pd.add(i) += a * *pb.add(i);
            i += 1;
        }
    }

    /// Four fused axpy passes: per element the four mul-adds round in the
    /// same ascending order as four sequential [`axpy`] calls, but the
    /// destination vector is loaded and stored once per quad.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy4(dst: &mut [f64], a: [f64; 4], b: [&[f64]; 4]) {
        let n = dst.len();
        let n4 = n - n % 4;
        let va0 = _mm256_set1_pd(a[0]);
        let va1 = _mm256_set1_pd(a[1]);
        let va2 = _mm256_set1_pd(a[2]);
        let va3 = _mm256_set1_pd(a[3]);
        let pd = dst.as_mut_ptr();
        let (p0, p1, p2, p3) = (b[0].as_ptr(), b[1].as_ptr(), b[2].as_ptr(), b[3].as_ptr());
        let mut i = 0;
        while i < n4 {
            let mut vo = _mm256_loadu_pd(pd.add(i));
            vo = _mm256_add_pd(vo, _mm256_mul_pd(va0, _mm256_loadu_pd(p0.add(i))));
            vo = _mm256_add_pd(vo, _mm256_mul_pd(va1, _mm256_loadu_pd(p1.add(i))));
            vo = _mm256_add_pd(vo, _mm256_mul_pd(va2, _mm256_loadu_pd(p2.add(i))));
            vo = _mm256_add_pd(vo, _mm256_mul_pd(va3, _mm256_loadu_pd(p3.add(i))));
            _mm256_storeu_pd(pd.add(i), vo);
            i += 4;
        }
        while i < n {
            let mut acc = *pd.add(i);
            acc += a[0] * *p0.add(i);
            acc += a[1] * *p1.add(i);
            acc += a[2] * *p2.add(i);
            acc += a[3] * *p3.add(i);
            *pd.add(i) = acc;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn wabs_axpy(dst: &mut [f64], w: f64, row: &[f64]) {
        let n = dst.len().min(row.len());
        let n4 = n - n % 4;
        let mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffffu64 as i64));
        let vw = _mm256_set1_pd(w);
        let (pd, pr) = (dst.as_mut_ptr(), row.as_ptr());
        let mut i = 0;
        while i < n4 {
            let vo = _mm256_loadu_pd(pd.add(i));
            let vr = _mm256_and_pd(_mm256_loadu_pd(pr.add(i)), mask);
            _mm256_storeu_pd(pd.add(i), _mm256_add_pd(vo, _mm256_mul_pd(vw, vr)));
            i += 4;
        }
        while i < n {
            *pd.add(i) += w * (*pr.add(i)).abs();
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn wabs_axpy4(dst: &mut [f64], w: [f64; 4], rows: [&[f64]; 4]) {
        let n = dst.len();
        let n4 = n - n % 4;
        let mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffffu64 as i64));
        let vw0 = _mm256_set1_pd(w[0]);
        let vw1 = _mm256_set1_pd(w[1]);
        let vw2 = _mm256_set1_pd(w[2]);
        let vw3 = _mm256_set1_pd(w[3]);
        let pd = dst.as_mut_ptr();
        let (p0, p1, p2, p3) = (
            rows[0].as_ptr(),
            rows[1].as_ptr(),
            rows[2].as_ptr(),
            rows[3].as_ptr(),
        );
        let mut i = 0;
        while i < n4 {
            let mut vo = _mm256_loadu_pd(pd.add(i));
            let r0 = _mm256_and_pd(_mm256_loadu_pd(p0.add(i)), mask);
            vo = _mm256_add_pd(vo, _mm256_mul_pd(vw0, r0));
            let r1 = _mm256_and_pd(_mm256_loadu_pd(p1.add(i)), mask);
            vo = _mm256_add_pd(vo, _mm256_mul_pd(vw1, r1));
            let r2 = _mm256_and_pd(_mm256_loadu_pd(p2.add(i)), mask);
            vo = _mm256_add_pd(vo, _mm256_mul_pd(vw2, r2));
            let r3 = _mm256_and_pd(_mm256_loadu_pd(p3.add(i)), mask);
            vo = _mm256_add_pd(vo, _mm256_mul_pd(vw3, r3));
            _mm256_storeu_pd(pd.add(i), vo);
            i += 4;
        }
        while i < n {
            let mut acc = *pd.add(i);
            acc += w[0] * (*p0.add(i)).abs();
            acc += w[1] * (*p1.add(i)).abs();
            acc += w[2] * (*p2.add(i)).abs();
            acc += w[3] * (*p3.add(i)).abs();
            *pd.add(i) = acc;
            i += 1;
        }
    }

    /// Four sequential-accumulator dot products at once: lane `l` of the
    /// accumulator replays the scalar `acc += a[k] * pack[4k + l]` chain.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot4(a: &[f64], pack: &[f64]) -> [f64; 4] {
        debug_assert!(pack.len() >= a.len() * 4);
        let mut acc = _mm256_setzero_pd();
        let pp = pack.as_ptr();
        for (k, &av) in a.iter().enumerate() {
            let va = _mm256_set1_pd(av);
            let vp = _mm256_loadu_pd(pp.add(k * 4));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vp));
        }
        let mut out = [0.0f64; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), acc);
        out
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn abs_accumulate(dst: &mut [f64], row: &[f64]) {
        let n = dst.len().min(row.len());
        let n4 = n - n % 4;
        // Clearing the sign bit is exactly `f64::abs` for every input,
        // including -0.0 and NaN payloads.
        let mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffffu64 as i64));
        let (pd, pr) = (dst.as_mut_ptr(), row.as_ptr());
        let mut i = 0;
        while i < n4 {
            let vo = _mm256_loadu_pd(pd.add(i));
            let vr = _mm256_and_pd(_mm256_loadu_pd(pr.add(i)), mask);
            _mm256_storeu_pd(pd.add(i), _mm256_add_pd(vo, vr));
            i += 4;
        }
        while i < n {
            *pd.add(i) += (*pr.add(i)).abs();
            i += 1;
        }
    }

    /// Register-tiled weighted-row accumulation: four output rows (stride
    /// `m`) advance over all `kdim` source rows with a 4×8 tile of
    /// accumulators held in ymm registers, so each output element is
    /// loaded and stored once per call instead of once per source row.
    /// Element (l, j) rounds `Σ_k wq[4k+l] * b[k*m+j]` in ascending `k` —
    /// bitwise the naive chain. The caller guarantees every weight is
    /// nonzero (the zero-skip fallback stays on the axpy path).
    #[target_feature(enable = "avx2")]
    pub unsafe fn wrows4(dst4: &mut [f64], m: usize, wq: &[f64], b: &[f64], kdim: usize) {
        debug_assert!(dst4.len() >= 3 * m + m);
        debug_assert!(wq.len() >= kdim * 4);
        debug_assert!(b.len() >= kdim * m);
        let j8 = m - m % 8;
        let pd = dst4.as_mut_ptr();
        let pb = b.as_ptr();
        let pw = wq.as_ptr();
        let mut j = 0;
        while j < j8 {
            let mut a00 = _mm256_loadu_pd(pd.add(j));
            let mut a01 = _mm256_loadu_pd(pd.add(j + 4));
            let mut a10 = _mm256_loadu_pd(pd.add(m + j));
            let mut a11 = _mm256_loadu_pd(pd.add(m + j + 4));
            let mut a20 = _mm256_loadu_pd(pd.add(2 * m + j));
            let mut a21 = _mm256_loadu_pd(pd.add(2 * m + j + 4));
            let mut a30 = _mm256_loadu_pd(pd.add(3 * m + j));
            let mut a31 = _mm256_loadu_pd(pd.add(3 * m + j + 4));
            for k in 0..kdim {
                let b0 = _mm256_loadu_pd(pb.add(k * m + j));
                let b1 = _mm256_loadu_pd(pb.add(k * m + j + 4));
                let w0 = _mm256_set1_pd(*pw.add(k * 4));
                a00 = _mm256_add_pd(a00, _mm256_mul_pd(w0, b0));
                a01 = _mm256_add_pd(a01, _mm256_mul_pd(w0, b1));
                let w1 = _mm256_set1_pd(*pw.add(k * 4 + 1));
                a10 = _mm256_add_pd(a10, _mm256_mul_pd(w1, b0));
                a11 = _mm256_add_pd(a11, _mm256_mul_pd(w1, b1));
                let w2 = _mm256_set1_pd(*pw.add(k * 4 + 2));
                a20 = _mm256_add_pd(a20, _mm256_mul_pd(w2, b0));
                a21 = _mm256_add_pd(a21, _mm256_mul_pd(w2, b1));
                let w3 = _mm256_set1_pd(*pw.add(k * 4 + 3));
                a30 = _mm256_add_pd(a30, _mm256_mul_pd(w3, b0));
                a31 = _mm256_add_pd(a31, _mm256_mul_pd(w3, b1));
            }
            _mm256_storeu_pd(pd.add(j), a00);
            _mm256_storeu_pd(pd.add(j + 4), a01);
            _mm256_storeu_pd(pd.add(m + j), a10);
            _mm256_storeu_pd(pd.add(m + j + 4), a11);
            _mm256_storeu_pd(pd.add(2 * m + j), a20);
            _mm256_storeu_pd(pd.add(2 * m + j + 4), a21);
            _mm256_storeu_pd(pd.add(3 * m + j), a30);
            _mm256_storeu_pd(pd.add(3 * m + j + 4), a31);
            j += 8;
        }
        for l in 0..4 {
            for jj in j8..m {
                let mut acc = *pd.add(l * m + jj);
                for k in 0..kdim {
                    acc += *pw.add(k * 4 + l) * *pb.add(k * m + jj);
                }
                *pd.add(l * m + jj) = acc;
            }
        }
    }

    /// Four independent row ℓ1 chains in lockstep: lane `l` continues
    /// `acc[l]` over `rows[l]` in ascending column order — bitwise the
    /// row-at-a-time scalar scan. 4×4 tiles are loaded row-wise and
    /// transposed in registers, so the latency-bound scalar chain becomes
    /// one vector add per four columns.
    #[target_feature(enable = "avx2")]
    pub unsafe fn l1_rows4(acc: &mut [f64; 4], rows: [&[f64]; 4]) {
        let n = rows[0].len();
        debug_assert!(rows.iter().all(|r| r.len() == n));
        let n4 = n - n % 4;
        let mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffffu64 as i64));
        let mut va = _mm256_loadu_pd(acc.as_ptr());
        let (p0, p1, p2, p3) = (
            rows[0].as_ptr(),
            rows[1].as_ptr(),
            rows[2].as_ptr(),
            rows[3].as_ptr(),
        );
        let mut j = 0;
        while j < n4 {
            let r0 = _mm256_loadu_pd(p0.add(j));
            let r1 = _mm256_loadu_pd(p1.add(j));
            let r2 = _mm256_loadu_pd(p2.add(j));
            let r3 = _mm256_loadu_pd(p3.add(j));
            // 4×4 transpose: cols[c][l] = rows[l][j + c].
            let t0 = _mm256_shuffle_pd(r0, r1, 0x0);
            let t1 = _mm256_shuffle_pd(r0, r1, 0xF);
            let t2 = _mm256_shuffle_pd(r2, r3, 0x0);
            let t3 = _mm256_shuffle_pd(r2, r3, 0xF);
            let c0 = _mm256_permute2f128_pd(t0, t2, 0x20);
            let c1 = _mm256_permute2f128_pd(t1, t3, 0x20);
            let c2 = _mm256_permute2f128_pd(t0, t2, 0x31);
            let c3 = _mm256_permute2f128_pd(t1, t3, 0x31);
            // Ascending-column adds keep each lane's chain order.
            va = _mm256_add_pd(va, _mm256_and_pd(c0, mask));
            va = _mm256_add_pd(va, _mm256_and_pd(c1, mask));
            va = _mm256_add_pd(va, _mm256_and_pd(c2, mask));
            va = _mm256_add_pd(va, _mm256_and_pd(c3, mask));
            j += 4;
        }
        _mm256_storeu_pd(acc.as_mut_ptr(), va);
        while j < n {
            acc[0] += (*p0.add(j)).abs();
            acc[1] += (*p1.add(j)).abs();
            acc[2] += (*p2.add(j)).abs();
            acc[3] += (*p3.add(j)).abs();
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn l1_norm(a: &[f64]) -> f64 {
        let n = a.len();
        let n4 = n - n % 4;
        let mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffffu64 as i64));
        let mut acc = _mm256_setzero_pd();
        let pa = a.as_ptr();
        let mut i = 0;
        while i < n4 {
            acc = _mm256_add_pd(acc, _mm256_and_pd(_mm256_loadu_pd(pa.add(i)), mask));
            i += 4;
        }
        let mut tail = 0.0;
        while i < n {
            tail += (*pa.add(i)).abs();
            i += 1;
        }
        fold_lanes(acc) + tail
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sumsq(a: &[f64]) -> f64 {
        let n = a.len();
        let n4 = n - n % 4;
        let mut acc = _mm256_setzero_pd();
        let pa = a.as_ptr();
        let mut i = 0;
        while i < n4 {
            let va = _mm256_loadu_pd(pa.add(i));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(va, va));
            i += 4;
        }
        let mut tail = 0.0;
        while i < n {
            let x = *pa.add(i);
            tail += x * x;
            i += 1;
        }
        fold_lanes(acc) + tail
    }
}

// ---------------------------------------------------------------------------
// NEON (aarch64): 2×f64 lanes, paired to reproduce the 4-lane stripes —
// accumulator pair (q0, q1) holds scalar lanes (0,1) and (2,3).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let n4 = n - n % 4;
        let mut acc01 = vdupq_n_f64(0.0);
        let mut acc23 = vdupq_n_f64(0.0);
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < n4 {
            acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(pa.add(i)), vld1q_f64(pb.add(i))));
            acc23 = vaddq_f64(
                acc23,
                vmulq_f64(vld1q_f64(pa.add(i + 2)), vld1q_f64(pb.add(i + 2))),
            );
            i += 4;
        }
        let mut tail = 0.0;
        while i < n {
            tail += *pa.add(i) * *pb.add(i);
            i += 1;
        }
        (vgetq_lane_f64::<0>(acc01) + vgetq_lane_f64::<1>(acc01))
            + (vgetq_lane_f64::<0>(acc23) + vgetq_lane_f64::<1>(acc23))
            + tail
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn axpy(dst: &mut [f64], a: f64, b: &[f64]) {
        let n = dst.len().min(b.len());
        let n2 = n - n % 2;
        let va = vdupq_n_f64(a);
        let (pd, pb) = (dst.as_mut_ptr(), b.as_ptr());
        let mut i = 0;
        while i < n2 {
            let vo = vld1q_f64(pd.add(i));
            let vb = vld1q_f64(pb.add(i));
            vst1q_f64(pd.add(i), vaddq_f64(vo, vmulq_f64(va, vb)));
            i += 2;
        }
        while i < n {
            *pd.add(i) += a * *pb.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn axpy4(dst: &mut [f64], a: [f64; 4], b: [&[f64]; 4]) {
        let n = dst.len();
        let n2 = n - n % 2;
        let va0 = vdupq_n_f64(a[0]);
        let va1 = vdupq_n_f64(a[1]);
        let va2 = vdupq_n_f64(a[2]);
        let va3 = vdupq_n_f64(a[3]);
        let pd = dst.as_mut_ptr();
        let (p0, p1, p2, p3) = (b[0].as_ptr(), b[1].as_ptr(), b[2].as_ptr(), b[3].as_ptr());
        let mut i = 0;
        while i < n2 {
            let mut vo = vld1q_f64(pd.add(i));
            vo = vaddq_f64(vo, vmulq_f64(va0, vld1q_f64(p0.add(i))));
            vo = vaddq_f64(vo, vmulq_f64(va1, vld1q_f64(p1.add(i))));
            vo = vaddq_f64(vo, vmulq_f64(va2, vld1q_f64(p2.add(i))));
            vo = vaddq_f64(vo, vmulq_f64(va3, vld1q_f64(p3.add(i))));
            vst1q_f64(pd.add(i), vo);
            i += 2;
        }
        while i < n {
            let mut acc = *pd.add(i);
            acc += a[0] * *p0.add(i);
            acc += a[1] * *p1.add(i);
            acc += a[2] * *p2.add(i);
            acc += a[3] * *p3.add(i);
            *pd.add(i) = acc;
            i += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn wabs_axpy(dst: &mut [f64], w: f64, row: &[f64]) {
        let n = dst.len().min(row.len());
        let n2 = n - n % 2;
        let vw = vdupq_n_f64(w);
        let (pd, pr) = (dst.as_mut_ptr(), row.as_ptr());
        let mut i = 0;
        while i < n2 {
            let vo = vld1q_f64(pd.add(i));
            let vr = vabsq_f64(vld1q_f64(pr.add(i)));
            vst1q_f64(pd.add(i), vaddq_f64(vo, vmulq_f64(vw, vr)));
            i += 2;
        }
        while i < n {
            *pd.add(i) += w * (*pr.add(i)).abs();
            i += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn wabs_axpy4(dst: &mut [f64], w: [f64; 4], rows: [&[f64]; 4]) {
        let n = dst.len();
        let n2 = n - n % 2;
        let vw0 = vdupq_n_f64(w[0]);
        let vw1 = vdupq_n_f64(w[1]);
        let vw2 = vdupq_n_f64(w[2]);
        let vw3 = vdupq_n_f64(w[3]);
        let pd = dst.as_mut_ptr();
        let (p0, p1, p2, p3) = (
            rows[0].as_ptr(),
            rows[1].as_ptr(),
            rows[2].as_ptr(),
            rows[3].as_ptr(),
        );
        let mut i = 0;
        while i < n2 {
            let mut vo = vld1q_f64(pd.add(i));
            vo = vaddq_f64(vo, vmulq_f64(vw0, vabsq_f64(vld1q_f64(p0.add(i)))));
            vo = vaddq_f64(vo, vmulq_f64(vw1, vabsq_f64(vld1q_f64(p1.add(i)))));
            vo = vaddq_f64(vo, vmulq_f64(vw2, vabsq_f64(vld1q_f64(p2.add(i)))));
            vo = vaddq_f64(vo, vmulq_f64(vw3, vabsq_f64(vld1q_f64(p3.add(i)))));
            vst1q_f64(pd.add(i), vo);
            i += 2;
        }
        while i < n {
            let mut acc = *pd.add(i);
            acc += w[0] * (*p0.add(i)).abs();
            acc += w[1] * (*p1.add(i)).abs();
            acc += w[2] * (*p2.add(i)).abs();
            acc += w[3] * (*p3.add(i)).abs();
            *pd.add(i) = acc;
            i += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn dot4(a: &[f64], pack: &[f64]) -> [f64; 4] {
        debug_assert!(pack.len() >= a.len() * 4);
        let mut acc01 = vdupq_n_f64(0.0);
        let mut acc23 = vdupq_n_f64(0.0);
        let pp = pack.as_ptr();
        for (k, &av) in a.iter().enumerate() {
            let va = vdupq_n_f64(av);
            acc01 = vaddq_f64(acc01, vmulq_f64(va, vld1q_f64(pp.add(k * 4))));
            acc23 = vaddq_f64(acc23, vmulq_f64(va, vld1q_f64(pp.add(k * 4 + 2))));
        }
        [
            vgetq_lane_f64::<0>(acc01),
            vgetq_lane_f64::<1>(acc01),
            vgetq_lane_f64::<0>(acc23),
            vgetq_lane_f64::<1>(acc23),
        ]
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn abs_accumulate(dst: &mut [f64], row: &[f64]) {
        let n = dst.len().min(row.len());
        let n2 = n - n % 2;
        let (pd, pr) = (dst.as_mut_ptr(), row.as_ptr());
        let mut i = 0;
        while i < n2 {
            let vo = vld1q_f64(pd.add(i));
            vst1q_f64(pd.add(i), vaddq_f64(vo, vabsq_f64(vld1q_f64(pr.add(i)))));
            i += 2;
        }
        while i < n {
            *pd.add(i) += (*pr.add(i)).abs();
            i += 1;
        }
    }

    /// Register-tiled weighted-row accumulation (see the AVX2 flavour):
    /// a 4×8 tile of accumulators in q registers, ascending-`k` chains.
    #[target_feature(enable = "neon")]
    pub unsafe fn wrows4(dst4: &mut [f64], m: usize, wq: &[f64], b: &[f64], kdim: usize) {
        debug_assert!(dst4.len() >= 3 * m + m);
        debug_assert!(wq.len() >= kdim * 4);
        debug_assert!(b.len() >= kdim * m);
        let j8 = m - m % 8;
        let pd = dst4.as_mut_ptr();
        let pb = b.as_ptr();
        let pw = wq.as_ptr();
        let mut j = 0;
        while j < j8 {
            let mut acc = [[vdupq_n_f64(0.0); 4]; 4];
            for (l, row) in acc.iter_mut().enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = vld1q_f64(pd.add(l * m + j + 2 * c));
                }
            }
            for k in 0..kdim {
                let bv = [
                    vld1q_f64(pb.add(k * m + j)),
                    vld1q_f64(pb.add(k * m + j + 2)),
                    vld1q_f64(pb.add(k * m + j + 4)),
                    vld1q_f64(pb.add(k * m + j + 6)),
                ];
                for (l, row) in acc.iter_mut().enumerate() {
                    let w = vdupq_n_f64(*pw.add(k * 4 + l));
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = vaddq_f64(*v, vmulq_f64(w, bv[c]));
                    }
                }
            }
            for (l, row) in acc.iter().enumerate() {
                for (c, v) in row.iter().enumerate() {
                    vst1q_f64(pd.add(l * m + j + 2 * c), *v);
                }
            }
            j += 8;
        }
        for l in 0..4 {
            for jj in j8..m {
                let mut acc = *pd.add(l * m + jj);
                for k in 0..kdim {
                    acc += *pw.add(k * 4 + l) * *pb.add(k * m + jj);
                }
                *pd.add(l * m + jj) = acc;
            }
        }
    }

    /// Four independent row ℓ1 chains in lockstep over 2-lane pairs:
    /// pair (q0, q1) carries rows (0,1) and (2,3); `vtrn` swaps 2×2 tiles
    /// into column vectors so each lane continues its own scalar chain.
    #[target_feature(enable = "neon")]
    pub unsafe fn l1_rows4(acc: &mut [f64; 4], rows: [&[f64]; 4]) {
        let n = rows[0].len();
        debug_assert!(rows.iter().all(|r| r.len() == n));
        let n2 = n - n % 2;
        let mut a01 = vld1q_f64(acc.as_ptr());
        let mut a23 = vld1q_f64(acc.as_ptr().add(2));
        let (p0, p1, p2, p3) = (
            rows[0].as_ptr(),
            rows[1].as_ptr(),
            rows[2].as_ptr(),
            rows[3].as_ptr(),
        );
        let mut j = 0;
        while j < n2 {
            let r0 = vld1q_f64(p0.add(j));
            let r1 = vld1q_f64(p1.add(j));
            a01 = vaddq_f64(a01, vabsq_f64(vtrn1q_f64(r0, r1)));
            a01 = vaddq_f64(a01, vabsq_f64(vtrn2q_f64(r0, r1)));
            let r2 = vld1q_f64(p2.add(j));
            let r3 = vld1q_f64(p3.add(j));
            a23 = vaddq_f64(a23, vabsq_f64(vtrn1q_f64(r2, r3)));
            a23 = vaddq_f64(a23, vabsq_f64(vtrn2q_f64(r2, r3)));
            j += 2;
        }
        vst1q_f64(acc.as_mut_ptr(), a01);
        vst1q_f64(acc.as_mut_ptr().add(2), a23);
        while j < n {
            acc[0] += (*p0.add(j)).abs();
            acc[1] += (*p1.add(j)).abs();
            acc[2] += (*p2.add(j)).abs();
            acc[3] += (*p3.add(j)).abs();
            j += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn l1_norm(a: &[f64]) -> f64 {
        let n = a.len();
        let n4 = n - n % 4;
        let mut acc01 = vdupq_n_f64(0.0);
        let mut acc23 = vdupq_n_f64(0.0);
        let pa = a.as_ptr();
        let mut i = 0;
        while i < n4 {
            acc01 = vaddq_f64(acc01, vabsq_f64(vld1q_f64(pa.add(i))));
            acc23 = vaddq_f64(acc23, vabsq_f64(vld1q_f64(pa.add(i + 2))));
            i += 4;
        }
        let mut tail = 0.0;
        while i < n {
            tail += (*pa.add(i)).abs();
            i += 1;
        }
        (vgetq_lane_f64::<0>(acc01) + vgetq_lane_f64::<1>(acc01))
            + (vgetq_lane_f64::<0>(acc23) + vgetq_lane_f64::<1>(acc23))
            + tail
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn sumsq(a: &[f64]) -> f64 {
        let n = a.len();
        let n4 = n - n % 4;
        let mut acc01 = vdupq_n_f64(0.0);
        let mut acc23 = vdupq_n_f64(0.0);
        let pa = a.as_ptr();
        let mut i = 0;
        while i < n4 {
            let v01 = vld1q_f64(pa.add(i));
            let v23 = vld1q_f64(pa.add(i + 2));
            acc01 = vaddq_f64(acc01, vmulq_f64(v01, v01));
            acc23 = vaddq_f64(acc23, vmulq_f64(v23, v23));
            i += 4;
        }
        let mut tail = 0.0;
        while i < n {
            let x = *pa.add(i);
            tail += x * x;
            i += 1;
        }
        (vgetq_lane_f64::<0>(acc01) + vgetq_lane_f64::<1>(acc01))
            + (vgetq_lane_f64::<0>(acc23) + vgetq_lane_f64::<1>(acc23))
            + tail
    }
}

// ---------------------------------------------------------------------------
// Public dispatchers. Safety: the `unsafe` targets are only reached after
// `active_isa()` has positively detected the matching CPU feature.
// ---------------------------------------------------------------------------

/// Below this length the vector setup plus the horizontal lane fold costs
/// more than it saves, so the reduction-style dispatchers take the scalar
/// stripe body directly. Safe by construction: the scalar body *is* the
/// pinned semantics, so the cutoff never changes a bit of output.
const SHORT_REDUCTION: usize = 16;

/// Dot product with the pinned 4-lane stripe fold of [`crate::vector::dot`].
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < SHORT_REDUCTION {
        return dot_scalar(a, b);
    }
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::dot(a, b) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::dot(a, b) },
        _ => dot_scalar(a, b),
    }
}

/// `dst[j] += a * b[j]` — one independent sequential accumulator per `j`.
#[inline]
pub fn axpy(dst: &mut [f64], a: f64, b: &[f64]) {
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::axpy(dst, a, b) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::axpy(dst, a, b) },
        _ => axpy_scalar(dst, a, b),
    }
}

/// Four [`axpy`] passes fused into one sweep of `dst`: per element the four
/// mul-adds round in the same ascending order as the sequential passes
/// (bitwise identical), but `dst` is loaded and stored once per quad
/// instead of four times — the register-blocked form of the `k`-ascending
/// accumulation the scalar kernels pin.
#[inline]
pub fn axpy4(dst: &mut [f64], a: [f64; 4], b: [&[f64]; 4]) {
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::axpy4(dst, a, b) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::axpy4(dst, a, b) },
        _ => axpy4_scalar(dst, a, b),
    }
}

/// `dst[j] += w * |row[j]|` — the Eq. 5 weighted-abs accumulation.
#[inline]
pub fn wabs_axpy(dst: &mut [f64], w: f64, row: &[f64]) {
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::wabs_axpy(dst, w, row) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::wabs_axpy(dst, w, row) },
        _ => wabs_axpy_scalar(dst, w, row),
    }
}

/// Four [`wabs_axpy`] passes fused into one sweep of `dst`, same bitwise
/// guarantee as [`axpy4`].
#[inline]
pub fn wabs_axpy4(dst: &mut [f64], w: [f64; 4], rows: [&[f64]; 4]) {
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::wabs_axpy4(dst, w, rows) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::wabs_axpy4(dst, w, rows) },
        _ => wabs_axpy4_scalar(dst, w, rows),
    }
}

/// Four sequential-accumulator dot products against an interleaved panel:
/// `out[l] = Σ_k a[k] * pack[4k + l]`, each lane in ascending `k` from a
/// zero accumulator — bitwise the scalar `acc += a * b` loop, four at once.
#[inline]
pub fn dot4(a: &[f64], pack: &[f64]) -> [f64; 4] {
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::dot4(a, pack) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::dot4(a, pack) },
        _ => dot4_scalar(a, pack),
    }
}

/// `dst[j] += |row[j]|` — the column-abs-sum inner sweep.
#[inline]
pub fn abs_accumulate(dst: &mut [f64], row: &[f64]) {
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::abs_accumulate(dst, row) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::abs_accumulate(dst, row) },
        _ => abs_accumulate_scalar(dst, row),
    }
}

/// Register-tiled accumulation of four output rows against a dense row
/// panel: `dst4` holds four consecutive rows at stride `m`, and element
/// `(l, j)` accumulates `Σ_k wq[4k + l] * b[k*m + j]` in ascending `k` —
/// bitwise the naive per-element chain, but with a 4×8 output tile pinned
/// in registers so each output element is touched once per call rather
/// than once per source row. Callers must pre-check that every weight in
/// `wq` is nonzero (zero weights take the skip-preserving axpy path).
#[inline]
pub fn wrows4(dst4: &mut [f64], m: usize, wq: &[f64], b: &[f64], kdim: usize) {
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::wrows4(dst4, m, wq, b, kdim) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::wrows4(dst4, m, wq, b, kdim) },
        _ => wrows4_scalar(dst4, m, wq, b, kdim),
    }
}

/// Continues four independent per-row ℓ1 chains in lockstep: lane `l`
/// extends `acc[l]` over `rows[l]` in ascending column order, bitwise the
/// row-at-a-time scalar scan. All four rows must share one length. The
/// win over four [`l1_norm`]-style scans: each scalar chain is
/// latency-bound (one dependent add per element), while the lockstep form
/// retires four chains per vector add.
#[inline]
pub fn l1_rows4(acc: &mut [f64; 4], rows: [&[f64]; 4]) {
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::l1_rows4(acc, rows) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::l1_rows4(acc, rows) },
        _ => l1_rows4_scalar(acc, rows),
    }
}

/// ℓ1 norm with the 4-lane stripe fold.
#[inline]
pub fn l1_norm(a: &[f64]) -> f64 {
    if a.len() < SHORT_REDUCTION {
        return l1_norm_scalar(a);
    }
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::l1_norm(a) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::l1_norm(a) },
        _ => l1_norm_scalar(a),
    }
}

/// Sum of squares with the 4-lane stripe fold (ℓ2 norm = `sumsq(..).sqrt()`).
#[inline]
pub fn sumsq(a: &[f64]) -> f64 {
    if a.len() < SHORT_REDUCTION {
        return sumsq_scalar(a);
    }
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::sumsq(a) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => unsafe { neon::sumsq(a) },
        _ => sumsq_scalar(a),
    }
}

/// Batches ascending-order `(weight, row)` axpy contributions into fused
/// [`axpy4`] quads, flushing stragglers through single [`axpy`] calls.
/// Contributions apply in push order, so the per-element accumulation is
/// bitwise that of sequential single-row passes. Every pushed row must be
/// at least as long as the destination.
pub struct AxpyBatch<'a> {
    w: [f64; 4],
    rows: [&'a [f64]; 4],
    len: usize,
}

impl<'a> AxpyBatch<'a> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        AxpyBatch {
            w: [0.0; 4],
            rows: [&[]; 4],
            len: 0,
        }
    }

    #[inline]
    pub fn push(&mut self, dst: &mut [f64], w: f64, row: &'a [f64]) {
        debug_assert!(row.len() >= dst.len());
        self.w[self.len] = w;
        self.rows[self.len] = row;
        self.len += 1;
        if self.len == 4 {
            axpy4(dst, self.w, self.rows);
            self.len = 0;
        }
    }

    #[inline]
    pub fn flush(&mut self, dst: &mut [f64]) {
        for l in 0..self.len {
            axpy(dst, self.w[l], self.rows[l]);
        }
        self.len = 0;
    }
}

/// [`AxpyBatch`] for the weighted-abs accumulation `dst += w * |row|`.
pub struct WabsAxpyBatch<'a> {
    w: [f64; 4],
    rows: [&'a [f64]; 4],
    len: usize,
}

impl<'a> WabsAxpyBatch<'a> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        WabsAxpyBatch {
            w: [0.0; 4],
            rows: [&[]; 4],
            len: 0,
        }
    }

    #[inline]
    pub fn push(&mut self, dst: &mut [f64], w: f64, row: &'a [f64]) {
        debug_assert!(row.len() >= dst.len());
        self.w[self.len] = w;
        self.rows[self.len] = row;
        self.len += 1;
        if self.len == 4 {
            wabs_axpy4(dst, self.w, self.rows);
            self.len = 0;
        }
    }

    #[inline]
    pub fn flush(&mut self, dst: &mut [f64]) {
        for l in 0..self.len {
            wabs_axpy(dst, self.w[l], self.rows[l]);
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_a(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.13 * (i as f64) - 3.1).collect()
    }

    fn vec_b(n: usize) -> Vec<f64> {
        (0..n).map(|i| 1.9 - 0.07 * (i as f64)).collect()
    }

    #[test]
    fn active_isa_is_stable_and_labeled() {
        let isa = active_isa();
        assert_eq!(isa, active_isa());
        assert!(["avx2", "neon", "scalar"].contains(&isa.label()));
        // On the x86_64 CI hosts AVX2 must be picked up — a scalar result
        // there means detection silently regressed.
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            assert_eq!(isa, Isa::Avx2);
        }
    }

    #[test]
    fn dot_matches_scalar_reference_bitwise() {
        for n in [0, 1, 3, 4, 5, 8, 11, 64, 257] {
            let (a, b) = (vec_a(n), vec_b(n));
            assert_eq!(dot(&a, &b).to_bits(), dot_scalar(&a, &b).to_bits(), "n={n}");
        }
    }

    #[test]
    fn axpy_matches_scalar_reference_bitwise() {
        for n in [0, 1, 3, 4, 7, 33, 130] {
            let b = vec_b(n);
            for a in [0.7, -1.3, 1e-9] {
                let mut d0 = vec_a(n);
                let mut d1 = d0.clone();
                axpy(&mut d0, a, &b);
                axpy_scalar(&mut d1, a, &b);
                let bits0: Vec<u64> = d0.iter().map(|x| x.to_bits()).collect();
                let bits1: Vec<u64> = d1.iter().map(|x| x.to_bits()).collect();
                assert_eq!(bits0, bits1, "n={n} a={a}");
            }
        }
    }

    #[test]
    fn axpy4_matches_four_sequential_axpy_passes_bitwise() {
        for n in [0, 1, 3, 4, 7, 33, 130] {
            let rows: Vec<Vec<f64>> = (0..4)
                .map(|r| vec_b(n).iter().map(|x| x + r as f64 * 0.31).collect())
                .collect();
            let a = [0.7, -1.3, 1e-9, 2.5];
            let mut fused = vec_a(n);
            let mut seq = fused.clone();
            axpy4(&mut fused, a, [&rows[0], &rows[1], &rows[2], &rows[3]]);
            for (r, &av) in rows.iter().zip(&a) {
                axpy_scalar(&mut seq, av, r);
            }
            let bits0: Vec<u64> = fused.iter().map(|x| x.to_bits()).collect();
            let bits1: Vec<u64> = seq.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits0, bits1, "n={n}");
        }
    }

    #[test]
    fn wabs_axpy_variants_match_sequential_scalar_bitwise() {
        for n in [0, 1, 2, 5, 8, 29, 101] {
            let rows: Vec<Vec<f64>> = (0..4)
                .map(|r| vec_a(n).iter().map(|x| -x + r as f64 * 0.17).collect())
                .collect();
            let w = [0.9, 1.7, -0.0, 3.2e-4];
            // Single-row form.
            let mut d0 = vec_b(n);
            let mut d1 = d0.clone();
            wabs_axpy(&mut d0, w[1], &rows[1]);
            wabs_axpy_scalar(&mut d1, w[1], &rows[1]);
            assert_eq!(d0, d1, "single n={n}");
            // Fused quad vs four sequential passes.
            let mut fused = vec_b(n);
            let mut seq = fused.clone();
            wabs_axpy4(&mut fused, w, [&rows[0], &rows[1], &rows[2], &rows[3]]);
            for (r, &wv) in rows.iter().zip(&w) {
                wabs_axpy_scalar(&mut seq, wv, r);
            }
            let bits0: Vec<u64> = fused.iter().map(|x| x.to_bits()).collect();
            let bits1: Vec<u64> = seq.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits0, bits1, "quad n={n}");
        }
    }

    #[test]
    fn dot4_matches_four_sequential_accumulators_bitwise() {
        for n in [0, 1, 5, 32, 129] {
            let a = vec_a(n);
            let pack: Vec<f64> = (0..n * 4).map(|i| 0.21 * (i as f64) - 11.0).collect();
            let got = dot4(&a, &pack);
            let want = dot4_scalar(&a, &pack);
            // Each lane must also equal a plain scalar `acc += a * b` loop.
            for l in 0..4 {
                let mut acc = 0.0;
                for (k, &av) in a.iter().enumerate() {
                    acc += av * pack[k * 4 + l];
                }
                assert_eq!(want[l].to_bits(), acc.to_bits(), "scalar lane {l} n={n}");
                assert_eq!(got[l].to_bits(), acc.to_bits(), "simd lane {l} n={n}");
            }
        }
    }

    #[test]
    fn abs_accumulate_matches_scalar_reference_bitwise() {
        for n in [0, 1, 2, 4, 9, 77] {
            let row: Vec<f64> = vec_a(n).iter().map(|x| -x).collect();
            let mut d0 = vec_b(n);
            let mut d1 = d0.clone();
            abs_accumulate(&mut d0, &row);
            abs_accumulate_scalar(&mut d1, &row);
            assert_eq!(d0, d1, "n={n}");
        }
    }

    #[test]
    fn wrows4_matches_naive_ascending_k_chains_bitwise() {
        for (m, kdim) in [(1, 1), (5, 3), (8, 4), (13, 7), (40, 9), (67, 16)] {
            let wq: Vec<f64> = (0..kdim * 4).map(|i| 0.17 * (i as f64) - 2.3).collect();
            let b: Vec<f64> = (0..kdim * m).map(|i| 1.1 - 0.031 * (i as f64)).collect();
            let mut got: Vec<f64> = (0..4 * m).map(|i| 0.01 * i as f64).collect();
            let want = {
                let mut w = got.clone();
                for l in 0..4 {
                    for j in 0..m {
                        let mut acc = w[l * m + j];
                        for k in 0..kdim {
                            acc += wq[k * 4 + l] * b[k * m + j];
                        }
                        w[l * m + j] = acc;
                    }
                }
                w
            };
            wrows4(&mut got, m, &wq, &b, kdim);
            let bits0: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
            let bits1: Vec<u64> = want.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits0, bits1, "m={m} kdim={kdim}");
        }
    }

    #[test]
    fn l1_rows4_continues_per_row_chains_bitwise() {
        for n in [0, 1, 2, 3, 4, 5, 8, 13, 64, 251] {
            let rows: Vec<Vec<f64>> = (0..4)
                .map(|r| {
                    (0..n)
                        .map(|i| 0.23 * (i as f64) - 7.0 + r as f64 * 1.3)
                        .collect()
                })
                .collect();
            let start = [0.5, -2.0, 0.0, 1e300];
            let mut got = start;
            l1_rows4(&mut got, [&rows[0], &rows[1], &rows[2], &rows[3]]);
            for l in 0..4 {
                // The pinned semantics: a plain sequential chain per row.
                let mut want = start[l];
                for &x in &rows[l] {
                    want += x.abs();
                }
                assert_eq!(got[l].to_bits(), want.to_bits(), "lane {l} n={n}");
            }
        }
    }

    #[test]
    fn norms_match_scalar_reference_bitwise() {
        for n in [0, 1, 3, 4, 6, 40, 255] {
            let a = vec_a(n);
            assert_eq!(
                l1_norm(&a).to_bits(),
                l1_norm_scalar(&a).to_bits(),
                "l1 n={n}"
            );
            assert_eq!(sumsq(&a).to_bits(), sumsq_scalar(&a).to_bits(), "sq n={n}");
        }
    }

    #[test]
    fn note_dispatch_counts_under_isa_label() {
        deept_metrics::set_enabled(Some(true));
        note_dispatch();
        note_dispatch();
        deept_metrics::set_enabled(None);
        let snap = deept_metrics::global().snapshot();
        let sample = snap
            .counters
            .iter()
            .find(|c| c.name == "deept_simd_dispatch_total")
            .expect("dispatch counter registered");
        assert_eq!(
            sample.labels,
            vec![("isa".to_string(), active_isa().label().to_string())]
        );
        assert!(sample.value >= 2);
    }
}
