//! A minimal scoped thread pool for deterministic data parallelism.
//!
//! Everything here is built on [`std::thread::scope`] — no queues, no
//! work stealing, no extra dependencies. Work is split into contiguous
//! chunks, one per worker, fixed before any thread starts: the assignment
//! of items to chunks depends only on the item count and the grain size,
//! never on thread scheduling. Combined with the two rules the kernels
//! follow —
//!
//! 1. workers write **disjoint** output rows, and
//! 2. every reduction is accumulated at a fixed per-item granularity and
//!    folded in ascending item order on the calling thread —
//!
//! results are bitwise identical for any worker count, including 1.
//!
//! The worker count comes from the `DEEPT_THREADS` environment variable
//! (read once), defaulting to [`std::thread::available_parallelism`];
//! tests can force a count in-process with [`set_thread_override`].
//!
//! The module also keeps global counters (invocations, tasks, busy
//! nanoseconds) that the telemetry layer snapshots around spans to report
//! per-stage parallelism, and the `DEEPT_KERNEL={naive,blocked,simd}`
//! ladder ([`KernelMode`]) that routes matrix products and the zonotope
//! dot-product transformer between their reference, cache-blocked, and
//! SIMD implementations (used by the differential tests and the
//! before/after benches). All three rungs produce bitwise-identical `f64`
//! results; `naive` is single-threaded, the other two are parallel.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENV_THREADS: OnceLock<usize> = OnceLock::new();
/// In-process override; 0 means "no override, use the environment".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Worker count used by the `par_*` functions.
///
/// Priority: [`set_thread_override`] > `DEEPT_THREADS` > available
/// parallelism. Always at least 1.
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    *ENV_THREADS.get_or_init(|| {
        std::env::var("DEEPT_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Forces the worker count in-process (`None` restores the environment
/// default). Intended for the determinism tests, which run the same
/// computation at 1/2/8 workers and assert bitwise-equal results.
pub fn set_thread_override(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Which implementation family the matrix kernels and the zonotope
/// dot-product transformer run.
///
/// The three rungs of the dispatch ladder are bitwise-compatible in `f64`:
/// `Blocked` pins the exact per-element accumulation order of `Naive`, and
/// `Simd` maps that order 1:1 onto vector lanes (no FMA, no reassociation),
/// so switching modes never changes a single output bit — only throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Single-threaded reference loops (the differential-test oracle).
    Naive,
    /// Cache-blocked, thread-parallel scalar kernels.
    Blocked,
    /// Blocked kernels with runtime-dispatched SIMD inner loops
    /// (AVX2 on x86_64, NEON on aarch64, scalar fallback elsewhere).
    Simd,
}

impl KernelMode {
    /// Stable label used for metrics, trace metadata and reports; matches
    /// the `DEEPT_KERNEL` spelling.
    pub fn label(self) -> &'static str {
        match self {
            KernelMode::Naive => "naive",
            KernelMode::Blocked => "blocked",
            KernelMode::Simd => "simd",
        }
    }
}

static KERNEL_MODE_ENV: OnceLock<KernelMode> = OnceLock::new();
/// 0 = follow the environment, 1 = naive, 2 = blocked, 3 = simd.
static KERNEL_MODE: AtomicUsize = AtomicUsize::new(0);

/// The kernel mode in effect: [`set_kernel_mode`] override first, else the
/// `DEEPT_KERNEL` environment variable (`naive` / `blocked` / anything else
/// or unset → `simd`, read once). The optimized paths check this once per
/// call.
pub fn kernel_mode() -> KernelMode {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Naive,
        2 => KernelMode::Blocked,
        3 => KernelMode::Simd,
        _ => *KERNEL_MODE_ENV.get_or_init(|| {
            match std::env::var("DEEPT_KERNEL").as_deref().map(str::trim) {
                Ok("naive") => KernelMode::Naive,
                Ok("blocked") => KernelMode::Blocked,
                _ => KernelMode::Simd,
            }
        }),
    }
}

/// Forces a kernel mode in-process, overriding `DEEPT_KERNEL`; `None`
/// restores the environment default. Used by the differential tests and
/// benches to measure every rung of the ladder in one run.
pub fn set_kernel_mode(mode: Option<KernelMode>) {
    let v = match mode {
        None => 0,
        Some(KernelMode::Naive) => 1,
        Some(KernelMode::Blocked) => 2,
        Some(KernelMode::Simd) => 3,
    };
    KERNEL_MODE.store(v, Ordering::Relaxed);
}

/// Whether kernels should run their naive reference implementations.
/// Equivalent to `kernel_mode() == KernelMode::Naive`.
pub fn force_naive() -> bool {
    kernel_mode() == KernelMode::Naive
}

/// Routes kernels to the naive reference path (`true`) or the optimized
/// path (`false`, i.e. [`KernelMode::Simd`], which is bitwise-identical to
/// `Blocked`) in-process. Thin wrapper kept for the differential benches.
pub fn set_force_naive(naive: bool) {
    set_kernel_mode(Some(if naive {
        KernelMode::Naive
    } else {
        KernelMode::Simd
    }));
}

static INVOCATIONS: AtomicU64 = AtomicU64::new(0);
static TASKS: AtomicU64 = AtomicU64::new(0);
static BUSY_NS: AtomicU64 = AtomicU64::new(0);

/// Monotonic counters describing all `par_*` work since process start.
///
/// The telemetry layer snapshots these at span boundaries; the difference
/// of two snapshots describes the parallel work inside the span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelSnapshot {
    /// `par_*` entry points reached (including single-task fallbacks).
    pub invocations: u64,
    /// Chunk tasks executed (1 per invocation when work ran sequentially).
    pub tasks: u64,
    /// Nanoseconds of worker busy time, summed across workers.
    pub busy_ns: u64,
}

impl ParallelSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &ParallelSnapshot) -> ParallelSnapshot {
        ParallelSnapshot {
            invocations: self.invocations - earlier.invocations,
            tasks: self.tasks - earlier.tasks,
            busy_ns: self.busy_ns - earlier.busy_ns,
        }
    }
}

/// Reads the current global counters.
pub fn snapshot() -> ParallelSnapshot {
    ParallelSnapshot {
        invocations: INVOCATIONS.load(Ordering::Relaxed),
        tasks: TASKS.load(Ordering::Relaxed),
        busy_ns: BUSY_NS.load(Ordering::Relaxed),
    }
}

fn record_busy(started: Instant) {
    BUSY_NS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
}

/// Splits `0..len` into `chunks` contiguous ranges of near-equal size
/// (earlier ranges get the remainder), in ascending order.
fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.clamp(1, len.max(1));
    let base = len / chunks;
    let rem = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let size = base + usize::from(c < rem);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// How many chunks to cut `len` items into so that no chunk is smaller
/// than `min_grain` (except when `len` itself is smaller).
fn chunk_count(len: usize, min_grain: usize) -> usize {
    num_threads().min(len / min_grain.max(1)).max(1)
}

/// Runs `f` over contiguous sub-ranges of `0..len` on up to
/// [`num_threads`] workers and returns the per-chunk results **in range
/// order**. Falls back to one inline call when a single worker is
/// configured or the work is below `min_grain` items.
///
/// The chunking depends only on `len`, `min_grain` and the worker count —
/// callers that fold the returned results in order at a fixed per-item
/// granularity get results independent of how chunks were scheduled.
pub fn par_chunks<R, F>(len: usize, min_grain: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    INVOCATIONS.fetch_add(1, Ordering::Relaxed);
    let chunks = chunk_count(len, min_grain);
    TASKS.fetch_add(chunks as u64, Ordering::Relaxed);
    if chunks == 1 {
        let t0 = Instant::now();
        let r = f(0..len);
        record_busy(t0);
        return vec![r];
    }
    let ranges = chunk_ranges(len, chunks);
    let mut out = Vec::with_capacity(ranges.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges[1..]
            .iter()
            .map(|r| {
                let r = r.clone();
                let f = &f;
                s.spawn(move || {
                    let t0 = Instant::now();
                    let res = f(r);
                    record_busy(t0);
                    res
                })
            })
            .collect();
        let t0 = Instant::now();
        out.push(f(ranges[0].clone()));
        record_busy(t0);
        for h in handles {
            match h.join() {
                Ok(r) => out.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// Applies `f` to every item of `items` in parallel, returning results in
/// item order.
pub fn par_map<T, R, F>(items: &[T], min_grain: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let nested = par_chunks(items.len(), min_grain, |r| {
        items[r].iter().map(&f).collect::<Vec<R>>()
    });
    nested.into_iter().flatten().collect()
}

/// Splits the row-major buffer `data` (rows of `cols` elements) into
/// contiguous row chunks and runs `f(row_range, chunk)` on up to
/// [`num_threads`] workers. Chunks are disjoint `&mut` slices, so workers
/// can never race on an element; `f` must not make one row's result depend
/// on another worker's rows.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `cols` (for `cols > 0`).
pub fn par_rows<F>(data: &mut [f64], cols: usize, min_rows: usize, f: F)
where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    if data.is_empty() || cols == 0 {
        return;
    }
    assert_eq!(data.len() % cols, 0, "par_rows: ragged row buffer");
    let rows = data.len() / cols;
    INVOCATIONS.fetch_add(1, Ordering::Relaxed);
    let chunks = chunk_count(rows, min_rows);
    TASKS.fetch_add(chunks as u64, Ordering::Relaxed);
    if chunks == 1 {
        let t0 = Instant::now();
        f(0..rows, data);
        record_busy(t0);
        return;
    }
    let ranges = chunk_ranges(rows, chunks);
    std::thread::scope(|s| {
        let mut rest = data;
        let mut first = None;
        let mut handles = Vec::with_capacity(ranges.len() - 1);
        for (c, r) in ranges.into_iter().enumerate() {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(r.len() * cols);
            rest = tail;
            if c == 0 {
                first = Some((r, head));
            } else {
                let f = &f;
                handles.push(s.spawn(move || {
                    let t0 = Instant::now();
                    f(r, head);
                    record_busy(t0);
                }));
            }
        }
        let (r0, head0) = first.expect("at least one chunk");
        let t0 = Instant::now();
        f(r0, head0);
        record_busy(t0);
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// Serializes tests that mutate the process-global thread override, kernel
/// routing or counters. Not part of the public API.
#[doc(hidden)]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_without_overlap() {
        for len in [0usize, 1, 2, 7, 16, 101] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let rs = chunk_ranges(len, chunks);
                let mut next = 0;
                for r in &rs {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len);
                // Sizes differ by at most one.
                let sizes: Vec<usize> = rs.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn par_chunks_returns_in_order_at_any_width() {
        let _g = test_lock();
        for threads in [1, 2, 8] {
            set_thread_override(Some(threads));
            let parts = par_chunks(100, 1, |r| r.clone());
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, (0..100).collect::<Vec<_>>());
        }
        set_thread_override(None);
    }

    #[test]
    fn par_map_preserves_order() {
        let _g = test_lock();
        set_thread_override(Some(4));
        let items: Vec<usize> = (0..57).collect();
        let out = par_map(&items, 1, |&x| x * 2);
        assert_eq!(out, (0..57).map(|x| x * 2).collect::<Vec<_>>());
        set_thread_override(None);
    }

    #[test]
    fn par_rows_writes_disjoint_rows() {
        let _g = test_lock();
        for threads in [1, 2, 8] {
            set_thread_override(Some(threads));
            let mut data = vec![0.0; 33 * 4];
            par_rows(&mut data, 4, 1, |range, chunk| {
                for (local, row) in range.enumerate() {
                    for c in 0..4 {
                        chunk[local * 4 + c] = (row * 4 + c) as f64;
                    }
                }
            });
            let expect: Vec<f64> = (0..33 * 4).map(|x| x as f64).collect();
            assert_eq!(data, expect);
        }
        set_thread_override(None);
    }

    #[test]
    fn small_work_runs_inline() {
        let _g = test_lock();
        set_thread_override(Some(8));
        let before = snapshot();
        let parts = par_chunks(3, 16, |r| r.len());
        assert_eq!(parts, vec![3]);
        let d = snapshot().since(&before);
        assert_eq!(d.invocations, 1);
        assert_eq!(d.tasks, 1);
        set_thread_override(None);
    }

    #[test]
    fn counters_accumulate() {
        let _g = test_lock();
        set_thread_override(Some(2));
        let before = snapshot();
        par_chunks(64, 1, |r| r.len());
        let d = snapshot().since(&before);
        assert_eq!(d.invocations, 1);
        assert_eq!(d.tasks, 2);
        set_thread_override(None);
    }

    #[test]
    fn force_naive_override_round_trips() {
        let _g = test_lock();
        set_force_naive(true);
        assert!(force_naive());
        set_force_naive(false);
        assert!(!force_naive());
        set_kernel_mode(None);
    }

    #[test]
    fn kernel_mode_override_round_trips() {
        let _g = test_lock();
        for mode in [KernelMode::Naive, KernelMode::Blocked, KernelMode::Simd] {
            set_kernel_mode(Some(mode));
            assert_eq!(kernel_mode(), mode);
        }
        set_kernel_mode(None);
    }
}
