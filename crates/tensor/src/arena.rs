//! A small per-thread scratch arena for `Vec<f64>` buffers.
//!
//! The abstract-propagation hot path builds and drops large coefficient
//! buffers (densified ε blocks, matmul scratch) at every transformer. The
//! arena recycles those allocations: [`take_zeroed`] hands out a zeroed
//! buffer, preferring a pooled allocation with enough capacity, and
//! [`give`] returns a buffer to the calling thread's pool.
//!
//! The pool is thread-local, so there is no synchronization on the
//! take/give path; only the hit/miss telemetry counters are (relaxed)
//! atomics, shared process-wide so [`crate::parallel`]-style snapshots can
//! report arena effectiveness per pipeline stage.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Cached handles into the process-global (gated) metrics registry. The
/// local `HITS`/`MISSES` atomics stay authoritative for the per-stage
/// snapshot API; these only feed the live scrape endpoint.
fn global_hits() -> &'static deept_metrics::Counter {
    static C: OnceLock<deept_metrics::Counter> = OnceLock::new();
    C.get_or_init(|| {
        deept_metrics::global().counter(
            "deept_arena_hits_total",
            "Scratch-arena requests served from the per-thread pool.",
        )
    })
}

fn global_misses() -> &'static deept_metrics::Counter {
    static C: OnceLock<deept_metrics::Counter> = OnceLock::new();
    C.get_or_init(|| {
        deept_metrics::global().counter(
            "deept_arena_misses_total",
            "Scratch-arena requests that fell back to fresh allocations.",
        )
    })
}

/// Buffers retained per thread. Beyond this, returned buffers are dropped —
/// the pool exists to serve the steady-state working set of one propagation,
/// not to hoard every transient.
const MAX_POOLED: usize = 16;

/// Buffers whose capacity exceeds the request by more than this factor are
/// not handed out, so one huge historical allocation cannot pin its memory
/// by being recycled for tiny requests forever.
const MAX_SLACK: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// A zeroed buffer of exactly `len` elements, recycled from the thread's
/// pool when a buffer with sufficient capacity is available.
pub fn take_zeroed(len: usize) -> Vec<f64> {
    let pooled = POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let fit = pool
            .iter()
            .position(|b| b.capacity() >= len && b.capacity() <= len.max(1) * MAX_SLACK);
        fit.map(|i| pool.swap_remove(i))
    });
    match pooled {
        Some(mut buf) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            global_hits().inc();
            buf.clear();
            buf.resize(len, 0.0);
            buf
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            global_misses().inc();
            vec![0.0; len]
        }
    }
}

/// Returns a buffer to the calling thread's pool for later reuse.
///
/// Zero-capacity buffers and overflow beyond the pool limit are simply
/// dropped.
pub fn give(mut buf: Vec<f64>) {
    if buf.capacity() == 0 {
        return;
    }
    buf.clear();
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
}

/// Process-wide arena counters at a point in time; see [`snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaSnapshot {
    /// Requests served from the pool.
    pub hits: u64,
    /// Requests that fell back to a fresh allocation.
    pub misses: u64,
}

impl ArenaSnapshot {
    /// Counter deltas accumulated since `earlier`.
    pub fn since(&self, earlier: &ArenaSnapshot) -> ArenaSnapshot {
        ArenaSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// Reads the process-wide hit/miss counters.
pub fn snapshot() -> ArenaSnapshot {
    ArenaSnapshot {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_hits_after_give() {
        let before = snapshot();
        let a = take_zeroed(128);
        assert_eq!(a.len(), 128);
        assert!(a.iter().all(|&x| x == 0.0));
        give(a);
        let mut b = take_zeroed(100); // fits in the recycled capacity
        assert_eq!(b.len(), 100);
        assert!(b.iter().all(|&x| x == 0.0));
        let delta = snapshot().since(&before);
        assert!(delta.hits >= 1, "recycled take must count a hit: {delta:?}");
        // Dirty data must never leak through a recycle.
        b.iter_mut().for_each(|x| *x = 7.0);
        give(b);
        let c = take_zeroed(50);
        assert!(c.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn oversized_buffers_are_not_recycled_for_tiny_requests() {
        give(Vec::with_capacity(1 << 16));
        let before = snapshot();
        let small = take_zeroed(4);
        assert!(small.capacity() < (1 << 16));
        let delta = snapshot().since(&before);
        assert!(delta.misses >= 1);
    }

    #[test]
    fn zero_len_take_and_empty_give_are_fine() {
        let z = take_zeroed(0);
        assert!(z.is_empty());
        give(Vec::new());
    }
}
