//! Row-major dense matrix.

use serde::{Deserialize, Serialize};

use crate::ShapeError;

/// `k`-block size of the cache-blocked product kernels: one panel of
/// `KC` rows of the right operand is streamed repeatedly while a worker
/// sweeps its output rows.
const KC: usize = 128;

/// `j`-block size of the transposed-B kernel: a panel of `JC` rows of the
/// transposed operand is reused across a worker's output rows.
const JC: usize = 64;

/// Minimum output rows per parallel chunk for a kernel whose per-row cost
/// is `row_flops` multiply-adds: keeps tiny products inline so thread
/// spawns never dominate.
fn par_min_rows(row_flops: usize) -> usize {
    const MIN_FLOPS_PER_TASK: usize = 1 << 16;
    (MIN_FLOPS_PER_TASK / row_flops.max(1)).max(1)
}

/// A dense, row-major `f64` matrix.
///
/// `Matrix` is the workhorse of the workspace: network weights, activations
/// and zonotope coefficient matrices are all `Matrix` values. It is a plain
/// data structure (hence [`serde::Serialize`]) with shape-checked operations
/// that panic on mismatch — abstract-interpretation code has statically known
/// shapes, so a mismatch is a programming error, not an input error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix with every entry equal to `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a generator invoked as `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix that owns `data` laid out row-major.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a single-row matrix from a vector.
    pub fn row_vector(data: Vec<f64>) -> Self {
        Self {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// Creates a single-column matrix from a vector.
    pub fn col_vector(data: Vec<f64>) -> Self {
        Self {
            rows: data.len(),
            cols: 1,
            data,
        }
    }

    /// Creates a diagonal matrix with `diag` on the main diagonal.
    pub fn diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable entry at `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Sets entry `(r, c)` to `v`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` copied into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.at(r, c)).collect()
    }

    /// The flat row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat row-major backing slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.cols.max(1))
    }

    /// Matrix product `self * other`.
    ///
    /// Cache-blocked over `k` (a panel of `other` rows stays hot while a
    /// worker sweeps its output rows) and parallelized over disjoint output
    /// rows. Per output element the accumulation still runs in ascending
    /// `k` order from a zero accumulator, so the result is bitwise
    /// identical to [`Matrix::matmul_naive`] at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mode = crate::parallel::kernel_mode();
        if mode == crate::parallel::KernelMode::Naive {
            return self.matmul_naive(other);
        }
        let simd = mode == crate::parallel::KernelMode::Simd;
        if simd {
            crate::simd::note_dispatch();
        }
        let (kdim, m) = (self.cols, other.cols);
        let mut out = Matrix::zeros(self.rows, m);
        let min_rows = par_min_rows(kdim * m);
        crate::parallel::par_rows(&mut out.data, m.max(1), min_rows, |range, chunk| {
            for k0 in (0..kdim).step_by(KC) {
                let k1 = (k0 + KC).min(kdim);
                for (local, i) in range.clone().enumerate() {
                    let arow = &self.data[i * kdim + k0..i * kdim + k1];
                    let orow = &mut chunk[local * m..(local + 1) * m];
                    if simd {
                        // Fuse quads of nonzero `k` contributions: same
                        // per-element ascending-`k` rounding, one quarter
                        // of the `orow` load/store traffic.
                        let mut batch = crate::simd::AxpyBatch::new();
                        for (kk, &a) in arow.iter().enumerate() {
                            if a == 0.0 {
                                continue;
                            }
                            let brow = &other.data[(k0 + kk) * m..(k0 + kk + 1) * m];
                            batch.push(orow, a, brow);
                        }
                        batch.flush(orow);
                    } else {
                        for (kk, &a) in arow.iter().enumerate() {
                            if a == 0.0 {
                                continue;
                            }
                            let brow = &other.data[(k0 + kk) * m..(k0 + kk + 1) * m];
                            for (o, &b) in orow.iter_mut().zip(brow) {
                                *o += a * b;
                            }
                        }
                    }
                }
            }
        });
        out
    }

    /// Reference `self * other` (single-threaded ikj triple loop). The
    /// optimized [`Matrix::matmul`] must match it bitwise; kept public for
    /// the differential tests and benches.
    #[doc(hidden)]
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// The rows of `other` already are the panels of `other^T`, so each
    /// output element is a contiguous-slice dot product; work is blocked
    /// over panels of `other` rows and parallelized over disjoint output
    /// rows. Each element keeps the naive single-accumulator ascending-`k`
    /// order (bitwise identical to [`Matrix::matmul_transpose_b_naive`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mode = crate::parallel::kernel_mode();
        if mode == crate::parallel::KernelMode::Naive {
            return self.matmul_transpose_b_naive(other);
        }
        let (kdim, n) = (self.cols, other.rows);
        let mut out = Matrix::zeros(self.rows, n);
        let min_rows = par_min_rows(kdim * n);
        if mode == crate::parallel::KernelMode::Simd {
            // Interleave quads of `other` rows into a `pack[4k + l]` panel
            // so four output columns advance in lockstep: each SIMD lane
            // replays one scalar `acc += a * b` chain in ascending `k`,
            // bitwise-identical to the blocked path below. The panel is
            // packed once per quad and reused across the worker's rows.
            crate::simd::note_dispatch();
            crate::parallel::par_rows(&mut out.data, n.max(1), min_rows, |range, chunk| {
                let mut pack = vec![0.0f64; kdim * 4];
                for j0 in (0..n).step_by(4) {
                    let j1 = (j0 + 4).min(n);
                    if j1 - j0 == 4 {
                        for l in 0..4 {
                            let brow = &other.data[(j0 + l) * kdim..(j0 + l + 1) * kdim];
                            for (k, &b) in brow.iter().enumerate() {
                                pack[k * 4 + l] = b;
                            }
                        }
                        for (local, i) in range.clone().enumerate() {
                            let arow = &self.data[i * kdim..(i + 1) * kdim];
                            let quad = crate::simd::dot4(arow, &pack);
                            chunk[local * n + j0..local * n + j1].copy_from_slice(&quad);
                        }
                    } else {
                        for (local, i) in range.clone().enumerate() {
                            let arow = &self.data[i * kdim..(i + 1) * kdim];
                            for j in j0..j1 {
                                let brow = &other.data[j * kdim..(j + 1) * kdim];
                                let mut acc = 0.0;
                                for (&a, &b) in arow.iter().zip(brow) {
                                    acc += a * b;
                                }
                                chunk[local * n + j] = acc;
                            }
                        }
                    }
                }
            });
            return out;
        }
        crate::parallel::par_rows(&mut out.data, n.max(1), min_rows, |range, chunk| {
            for j0 in (0..n).step_by(JC) {
                let j1 = (j0 + JC).min(n);
                for (local, i) in range.clone().enumerate() {
                    let arow = &self.data[i * kdim..(i + 1) * kdim];
                    for j in j0..j1 {
                        let brow = &other.data[j * kdim..(j + 1) * kdim];
                        let mut acc = 0.0;
                        for (&a, &b) in arow.iter().zip(brow) {
                            acc += a * b;
                        }
                        chunk[local * n + j] = acc;
                    }
                }
            }
        });
        out
    }

    /// Reference `self * other^T` (row-by-row scalar accumulators).
    #[doc(hidden)]
    pub fn matmul_transpose_b_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// Parallelized over disjoint output rows (columns of `self`); inside a
    /// worker the `k` loop stays outermost so both input rows stream
    /// contiguously. Per output element the accumulation order and the
    /// zero skip match [`Matrix::transpose_a_matmul_naive`] bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn transpose_a_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_a_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mode = crate::parallel::kernel_mode();
        if mode == crate::parallel::KernelMode::Naive {
            return self.transpose_a_matmul_naive(other);
        }
        let simd = mode == crate::parallel::KernelMode::Simd;
        if simd {
            crate::simd::note_dispatch();
        }
        let m = other.cols;
        let mut out = Matrix::zeros(self.cols, m);
        let min_rows = par_min_rows(self.rows * m);
        if simd {
            // Quads of output rows run the register-tiled microkernel: the
            // 4×8 output tile lives in registers across the whole `k` loop,
            // so each output element is touched once instead of once per
            // source row. Per element the adds still happen in ascending
            // `k` — bitwise the naive kij order. Rows whose weight column
            // contains a zero (the naive path skips those terms) and
            // leftover rows fall back to skip-preserving fused axpy quads.
            let kdim = self.rows;
            crate::parallel::par_rows(&mut out.data, m.max(1), min_rows, |range, chunk| {
                let mut wq = vec![0.0f64; kdim * 4];
                let per_row_fallback = |orow: &mut [f64], i: usize| {
                    let mut batch = crate::simd::AxpyBatch::new();
                    for k in 0..kdim {
                        let a = self.data[k * self.cols + i];
                        if a == 0.0 {
                            continue;
                        }
                        batch.push(orow, a, other.row(k));
                    }
                    batch.flush(orow);
                };
                let mut local = 0;
                let start = range.start;
                while local + 4 <= range.len() {
                    let i0 = start + local;
                    let mut all_nonzero = true;
                    for k in 0..kdim {
                        for l in 0..4 {
                            let a = self.data[k * self.cols + i0 + l];
                            all_nonzero &= a != 0.0;
                            wq[k * 4 + l] = a;
                        }
                    }
                    if all_nonzero {
                        let dst4 = &mut chunk[local * m..(local + 4) * m];
                        crate::simd::wrows4(dst4, m, &wq, &other.data, kdim);
                    } else {
                        for l in 0..4 {
                            let orow = &mut chunk[(local + l) * m..(local + l + 1) * m];
                            per_row_fallback(orow, i0 + l);
                        }
                    }
                    local += 4;
                }
                for l in local..range.len() {
                    let orow = &mut chunk[l * m..(l + 1) * m];
                    per_row_fallback(orow, start + l);
                }
            });
            return out;
        }
        crate::parallel::par_rows(&mut out.data, m.max(1), min_rows, |range, chunk| {
            for k in 0..self.rows {
                let arow = self.row(k);
                let brow = other.row(k);
                for (local, i) in range.clone().enumerate() {
                    let a = arow[i];
                    if a == 0.0 {
                        continue;
                    }
                    let orow = &mut chunk[local * m..(local + 1) * m];
                    for (o, &b) in orow.iter_mut().zip(brow) {
                        *o += a * b;
                    }
                }
            }
        });
        out
    }

    /// Reference `self^T * other` (single-threaded kij loop).
    #[doc(hidden)]
    pub fn transpose_a_matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transpose_a_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec shape mismatch");
        self.rows_iter()
            .map(|row| row.iter().zip(v).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Vector-matrix product `v^T * self`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != v.len()`.
    pub fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "vecmat shape mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &a) in v.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (o, &b) in out.iter_mut().zip(self.row(r)) {
                *o += a * b;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise combination of two equal-shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_with shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, other: &Matrix, scale: f64) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Copy scaled by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// In-place scaling by `s`.
    pub fn scale_assign(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Adds the row vector `bias` to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols`.
    pub fn add_row_broadcast(&self, bias: &[f64]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "broadcast shape mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *o += b;
            }
        }
        out
    }

    /// Multiplies every row element-wise by the row vector `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != self.cols`.
    pub fn mul_row_broadcast(&self, w: &[f64]) -> Matrix {
        assert_eq!(w.len(), self.cols, "broadcast shape mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(w) {
                *o *= b;
            }
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Per-row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        self.rows_iter().map(|r| r.iter().sum()).collect()
    }

    /// Per-row means.
    pub fn row_means(&self) -> Vec<f64> {
        let c = self.cols.max(1) as f64;
        self.row_sums().into_iter().map(|s| s / c).collect()
    }

    /// Per-column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        out
    }

    /// Per-row sum of absolute values (used by noise-reduction scores).
    pub fn row_abs_sums(&self) -> Vec<f64> {
        self.rows_iter()
            .map(|r| r.iter().map(|x| x.abs()).sum())
            .collect()
    }

    /// Per-column sum of absolute values.
    ///
    /// Each column is an independent sequential accumulator over ascending
    /// rows, so the SIMD sweep is bitwise-identical to the scalar one.
    pub fn col_abs_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        if crate::parallel::kernel_mode() == crate::parallel::KernelMode::Simd {
            crate::simd::note_dispatch();
            for row in self.rows_iter() {
                crate::simd::abs_accumulate(&mut out, row);
            }
        } else {
            for row in self.rows_iter() {
                for (o, &x) in out.iter_mut().zip(row) {
                    *o += x.abs();
                }
            }
        }
        out
    }

    /// Maximum absolute entry; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// Either operand may have zero columns. A zero-row operand is allowed
    /// only if both have the same (possibly zero) row count.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Grows the matrix in place to `new_cols` columns, zero-filling the new
    /// trailing columns of every row.
    ///
    /// Unlike `hstack` with a zero matrix this never allocates a second
    /// buffer: the backing `Vec` is resized (amortized growth) and rows are
    /// shifted into place back to front.
    ///
    /// # Panics
    ///
    /// Panics if `new_cols < self.cols()`.
    pub fn grow_cols(&mut self, new_cols: usize) {
        assert!(
            new_cols >= self.cols,
            "grow_cols would truncate ({} > {new_cols})",
            self.cols
        );
        if new_cols == self.cols || self.rows == 0 {
            self.cols = new_cols;
            self.data.resize(self.rows * new_cols, 0.0);
            return;
        }
        let old_cols = self.cols;
        self.data.resize(self.rows * new_cols, 0.0);
        // Move rows back to front so sources are never overwritten before
        // they are read, then zero the gap each row leaves behind.
        for r in (0..self.rows).rev() {
            let src = r * old_cols;
            let dst = r * new_cols;
            if r > 0 {
                self.data.copy_within(src..src + old_cols, dst);
            }
            self.data[dst + old_cols..dst + new_cols].fill(0.0);
        }
        self.cols = new_cols;
    }

    /// Vertical concatenation of `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack col mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Copy of the column range `[c0, c1)`.
    ///
    /// # Panics
    ///
    /// Panics if `c1 > self.cols` or `c0 > c1`.
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Matrix {
        assert!(c0 <= c1 && c1 <= self.cols, "slice_cols out of range");
        let cols = c1 - c0;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(&self.row(r)[c0..c1]);
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Copy of the row range `[r0, r1)`.
    ///
    /// # Panics
    ///
    /// Panics if `r1 > self.rows` or `r0 > r1`.
    pub fn slice_rows(&self, r0: usize, r1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "slice_rows out of range");
        Matrix {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Copy keeping only the columns listed in `idx` (in that order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_cols(&self, idx: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * idx.len());
        for r in 0..self.rows {
            let row = self.row(r);
            for &c in idx {
                data.push(row[c]);
            }
        }
        Matrix {
            rows: self.rows,
            cols: idx.len(),
            data,
        }
    }

    /// `true` if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self.at(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.at(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn grow_cols_matches_hstack_with_zeros() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let mut grown = m.clone();
        grown.grow_cols(5);
        assert_eq!(grown, m.hstack(&Matrix::zeros(2, 2)));
        // No-op growth and zero-row / zero-col edge cases.
        let mut same = m.clone();
        same.grow_cols(3);
        assert_eq!(same, m);
        let mut empty = Matrix::zeros(0, 2);
        empty.grow_cols(7);
        assert_eq!(empty.shape(), (0, 7));
        let mut nocols = Matrix::zeros(3, 0);
        nocols.grow_cols(2);
        assert_eq!(nocols, Matrix::zeros(3, 2));
    }

    #[test]
    #[should_panic(expected = "grow_cols would truncate")]
    fn grow_cols_rejects_shrinking() {
        let mut m = Matrix::zeros(2, 3);
        m.grow_cols(2);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_transpose_variants_agree_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 7 + c) as f64 * 0.3 - 1.0);
        let b = Matrix::from_fn(5, 4, |r, c| (r + 2 * c) as f64 * 0.1);
        assert_eq!(a.matmul_transpose_b(&b), a.matmul(&b.transpose()));
        let c = Matrix::from_fn(3, 5, |r, c| (r * c) as f64 - 0.5);
        assert_eq!(a.transpose_a_matmul(&c), a.transpose().matmul(&c));
    }

    #[test]
    fn products_agree_bitwise_across_kernel_modes() {
        use crate::parallel::{set_kernel_mode, test_lock, KernelMode};
        let _g = test_lock();
        // Shapes straddle the 4-wide quad boundary (j-remainders of 0..3)
        // and include zero entries to exercise the sparsity skip.
        let a = Matrix::from_fn(9, 13, |r, c| {
            if (r + c) % 5 == 0 {
                0.0
            } else {
                0.31 * (r as f64) - 0.07 * (c as f64) + 0.2
            }
        });
        let b = Matrix::from_fn(13, 11, |r, c| 0.05 * (r as f64 + 1.0) * (c as f64 - 4.0));
        let bt = Matrix::from_fn(11, 13, |r, c| 1.0 / (1.0 + r as f64 + 2.0 * c as f64));
        let c = Matrix::from_fn(9, 7, |r, c| (r * 3 + c) as f64 * 0.11 - 1.0);
        let bits = |m: &Matrix| -> Vec<u64> { m.as_slice().iter().map(|x| x.to_bits()).collect() };
        set_kernel_mode(Some(KernelMode::Naive));
        let base = (
            bits(&a.matmul(&b)),
            bits(&a.matmul_transpose_b(&bt)),
            bits(&a.transpose_a_matmul(&c)),
            a.col_abs_sums(),
        );
        for mode in [KernelMode::Blocked, KernelMode::Simd] {
            set_kernel_mode(Some(mode));
            assert_eq!(bits(&a.matmul(&b)), base.0, "matmul {mode:?}");
            assert_eq!(
                bits(&a.matmul_transpose_b(&bt)),
                base.1,
                "matmul_transpose_b {mode:?}"
            );
            assert_eq!(
                bits(&a.transpose_a_matmul(&c)),
                base.2,
                "transpose_a_matmul {mode:?}"
            );
            assert_eq!(a.col_abs_sums(), base.3, "col_abs_sums {mode:?}");
        }
        set_kernel_mode(None);
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]);
        assert_eq!(a.matvec(&[3.0, 4.0]), vec![3.0, 8.0, 7.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0, 1.0]), vec![2.0, 3.0]);
    }

    #[test]
    fn broadcast_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(
            a.add_row_broadcast(&[10.0, 20.0]),
            Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]])
        );
        assert_eq!(
            a.mul_row_broadcast(&[2.0, 0.5]),
            Matrix::from_rows(&[&[2.0, 1.0], &[6.0, 2.0]])
        );
    }

    #[test]
    fn stacking_and_slicing() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let h = a.hstack(&b);
        assert_eq!(h, Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
        assert_eq!(h.slice_cols(1, 2), b);
        let v = a.vstack(&b);
        assert_eq!(v.rows(), 4);
        assert_eq!(v.slice_rows(2, 4), b);
        assert_eq!(h.select_cols(&[1, 0]), b.hstack(&a));
    }

    #[test]
    fn hstack_with_empty_side() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let empty = Matrix::zeros(1, 0);
        assert_eq!(a.hstack(&empty), a);
        assert_eq!(empty.hstack(&a), a);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.row_sums(), vec![-1.0, 1.0]);
        assert_eq!(a.col_sums(), vec![-2.0, 2.0]);
        assert_eq!(a.row_abs_sums(), vec![3.0, 7.0]);
        assert_eq!(a.col_abs_sums(), vec![4.0, 6.0]);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.row_means(), vec![-0.5, 0.5]);
    }

    #[test]
    fn diag_and_identity() {
        let d = Matrix::diag(&[1.0, 2.0]);
        let v = d.matvec(&[3.0, 4.0]);
        assert_eq!(v, vec![3.0, 8.0]);
        assert_eq!(Matrix::identity(3).sum(), 3.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_non_finite());
        a.set(0, 1, f64::NAN);
        assert!(a.has_non_finite());
    }

    #[test]
    fn display_is_nonempty() {
        let s = format!("{}", Matrix::zeros(2, 2));
        assert!(s.contains("Matrix 2x2"));
    }
}
