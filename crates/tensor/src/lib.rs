//! Dense `f64` matrix and vector algebra.
//!
//! This crate is the numerical substrate of the DeepT-rs workspace. It
//! provides a row-major dense [`Matrix`] with the operations required by
//! both the concrete Transformer networks (`deept-nn`) and the Multi-norm
//! Zonotope abstract domain (`deept-core`): matrix products (including
//! transposed variants), element-wise maps, row/column views, norms and
//! stacking.
//!
//! Everything is `f64`: certification must over-approximate real arithmetic
//! and the extra mantissa bits of `f64` keep the (undocumented-in-the-paper)
//! floating-point slack negligible at the scales we evaluate.
//!
//! # Example
//!
//! ```
//! use deept_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! assert_eq!(a.row(1), &[3.0, 4.0]);
//! ```

pub mod arena;
mod matrix;
pub mod ops;
pub mod parallel;
pub mod simd;
pub mod vector;

pub use matrix::Matrix;
pub use vector::{dot, l1_norm, l2_norm, linf_norm, lp_norm, scale as vec_scale, vec_add, vec_sub};

/// Error produced by shape-checked fallible constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    msg: String,
}

impl ShapeError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shape mismatch: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}
