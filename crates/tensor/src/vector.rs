//! Free functions over `&[f64]` vectors.
//!
//! These are used pervasively by the abstract domain, where per-variable
//! coefficient rows are plain slices.

/// Dot product of two equal-length slices.
///
/// Accumulates in four independent lanes over `chunks_exact(4)` so the
/// loop has no cross-iteration dependence and vectorizes, then folds the
/// lanes pairwise and adds the tail. The summation order is fixed — same
/// input, same bits, on every call and worker count — which is what the
/// deterministic parallel reductions built on top of it rely on.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    if crate::parallel::kernel_mode() == crate::parallel::KernelMode::Simd {
        return crate::simd::dot(a, b);
    }
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    let mut lanes = [0.0f64; 4];
    for (xa, xb) in ca.zip(cb) {
        lanes[0] += xa[0] * xb[0];
        lanes[1] += xa[1] * xb[1];
        lanes[2] += xa[2] * xb[2];
        lanes[3] += xa[3] * xb[3];
    }
    let mut tail = 0.0;
    for (&x, &y) in ra.iter().zip(rb) {
        tail += x * y;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// ℓ1 norm (sum of absolute values).
///
/// Accumulated in the same four-lane stripes as [`dot`] (lane `l` sums
/// elements `4i + l`, folded `(l0 + l1) + (l2 + l3) + tail`) so the scalar
/// and SIMD kernel modes agree bitwise at every length.
pub fn l1_norm(a: &[f64]) -> f64 {
    if crate::parallel::kernel_mode() == crate::parallel::KernelMode::Simd {
        return crate::simd::l1_norm(a);
    }
    let c = a.chunks_exact(4);
    let r = c.remainder();
    let mut lanes = [0.0f64; 4];
    for x in c {
        lanes[0] += x[0].abs();
        lanes[1] += x[1].abs();
        lanes[2] += x[2].abs();
        lanes[3] += x[3].abs();
    }
    let mut tail = 0.0;
    for &x in r {
        tail += x.abs();
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// ℓ2 (Euclidean) norm, with the same four-lane stripe accumulation as
/// [`l1_norm`].
pub fn l2_norm(a: &[f64]) -> f64 {
    if crate::parallel::kernel_mode() == crate::parallel::KernelMode::Simd {
        return crate::simd::sumsq(a).sqrt();
    }
    let c = a.chunks_exact(4);
    let r = c.remainder();
    let mut lanes = [0.0f64; 4];
    for x in c {
        lanes[0] += x[0] * x[0];
        lanes[1] += x[1] * x[1];
        lanes[2] += x[2] * x[2];
        lanes[3] += x[3] * x[3];
    }
    let mut tail = 0.0;
    for &x in r {
        tail += x * x;
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail).sqrt()
}

/// ℓ∞ norm (maximum absolute value); `0.0` for an empty slice.
pub fn linf_norm(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// General ℓp norm for `p ≥ 1`; `p = f64::INFINITY` gives the max norm.
///
/// # Panics
///
/// Panics if `p < 1`.
pub fn lp_norm(a: &[f64], p: f64) -> f64 {
    assert!(p >= 1.0, "lp_norm requires p >= 1, got {p}");
    if p.is_infinite() {
        linf_norm(a)
    } else if p == 1.0 {
        l1_norm(a)
    } else if p == 2.0 {
        l2_norm(a)
    } else {
        a.iter().map(|x| x.abs().powf(p)).sum::<f64>().powf(1.0 / p)
    }
}

/// Element-wise sum.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn vec_add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vec_add length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Element-wise difference.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn vec_sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vec_sub length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Copy scaled by `s`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|&x| x * s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        let v = [3.0, -4.0];
        assert_eq!(l1_norm(&v), 7.0);
        assert_eq!(l2_norm(&v), 5.0);
        assert_eq!(linf_norm(&v), 4.0);
        assert_eq!(lp_norm(&v, 1.0), 7.0);
        assert_eq!(lp_norm(&v, 2.0), 5.0);
        assert_eq!(lp_norm(&v, f64::INFINITY), 4.0);
        // p = 3 checked against a hand computation.
        let p3 = (27.0f64 + 64.0).powf(1.0 / 3.0);
        assert!((lp_norm(&v, 3.0) - p3).abs() < 1e-12);
    }

    #[test]
    fn empty_norms_are_zero() {
        assert_eq!(l1_norm(&[]), 0.0);
        assert_eq!(l2_norm(&[]), 0.0);
        assert_eq!(linf_norm(&[]), 0.0);
    }

    #[test]
    fn dot_pins_four_lane_accumulation_order() {
        // 11 elements: two full 4-lanes plus a 3-element tail. The values
        // are chosen so regrouping changes the result in the last bits —
        // the assertion pins the exact lane-fold order `dot` promises.
        let a: Vec<f64> = (0..11).map(|i| 0.1 * (i as f64) + 0.3).collect();
        let b: Vec<f64> = (0..11).map(|i| 1.7 - 0.2 * (i as f64)).collect();
        let mut lanes = [0.0f64; 4];
        for c in 0..2 {
            for (l, lane) in lanes.iter_mut().enumerate() {
                let i = 4 * c + l;
                *lane += a[i] * b[i];
            }
        }
        let tail = (a[8] * b[8] + a[9] * b[9]) + a[10] * b[10];
        let expect = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail;
        assert_eq!(dot(&a, &b), expect);
        // And a strict-left-to-right reference differs only within 1e-12 —
        // the unrolling reorders, it does not change the math.
        let seq: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        assert!((dot(&a, &b) - seq).abs() < 1e-12);
    }

    #[test]
    fn dot_and_norms_agree_bitwise_across_kernel_modes() {
        use crate::parallel::{set_kernel_mode, test_lock, KernelMode};
        let _g = test_lock();
        let a: Vec<f64> = (0..37).map(|i| 0.17 * (i as f64) - 2.0).collect();
        let b: Vec<f64> = (0..37).map(|i| 1.3 - 0.05 * (i as f64)).collect();
        set_kernel_mode(Some(KernelMode::Blocked));
        let base = (dot(&a, &b), l1_norm(&a), l2_norm(&a));
        set_kernel_mode(Some(KernelMode::Simd));
        assert_eq!(dot(&a, &b).to_bits(), base.0.to_bits());
        assert_eq!(l1_norm(&a).to_bits(), base.1.to_bits());
        assert_eq!(l2_norm(&a).to_bits(), base.2.to_bits());
        set_kernel_mode(None);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(vec_add(&[1.0], &[2.0]), vec![3.0]);
        assert_eq!(vec_sub(&[1.0], &[2.0]), vec![-1.0]);
        assert_eq!(scale(&[1.0, -2.0], -2.0), vec![-2.0, 4.0]);
    }
}
